//! Memory-based messaging: address-valued signal delivery (§2.2, §4.1).
//!
//! Threads communicate through memory: the sender writes a message into a
//! shared region mapped in message mode and the write's address is
//! delivered to the receiving threads as an *address-valued signal*,
//! translated into each receiver's virtual address for the page. The Cache
//! Kernel is involved only in signal delivery, never in data transfer.
//!
//! Delivery first tries the per-processor reverse TLB (fast path); on a
//! miss it performs the two-stage physical-memory-map lookup — the
//! physical-to-virtual records for the page, then the signal records for
//! each — and refills the reverse TLB, re-checking the map version in the
//! §4.2 optimistic style before trusting the refill.

use crate::ck::CacheKernel;
use crate::events::KernelEvent;
use crate::objects::ThreadState;
use hw::{Mpm, Paddr, RtlbEntry, Vaddr};

/// Result of raising a signal on a physical address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalOutcome {
    /// Delivered via the reverse-TLB fast path.
    Fast(usize),
    /// Delivered via the two-stage lookup to `n` receivers.
    Slow(usize),
    /// No signal thread is registered on the page.
    NoReceiver,
}

impl SignalOutcome {
    /// Number of receivers the signal reached.
    pub fn receivers(self) -> usize {
        match self {
            SignalOutcome::Fast(n) | SignalOutcome::Slow(n) => n,
            SignalOutcome::NoReceiver => 0,
        }
    }
}

impl CacheKernel {
    /// Raise an address-valued signal on `paddr` from `cpu` (because a
    /// thread stored to a message-mode page there, or a device completed a
    /// transfer into the page).
    pub fn raise_signal(&mut self, mpm: &mut Mpm, cpu: usize, paddr: Paddr) -> SignalOutcome {
        // Read the two costs we may charge instead of cloning the whole
        // cost table: this is the hottest CK entry point.
        let signal_fast = mpm.config.cost.signal_fast;
        let signal_slow = mpm.config.cost.signal_slow;
        let pfn = paddr.pfn();

        // Fast path: the per-processor reverse TLB resolves the frame
        // directly to the receiving thread and virtual address. One arena
        // lookup both validates the entry and delivers the signal.
        if let Some(entry) = mpm.cpus[cpu].rtlb.lookup(pfn) {
            let slot = entry.thread as u16;
            let bound = self.config.signal_queue_bound;
            if let Some(t) = self.threads.get_slot_mut(slot) {
                let va = Vaddr(entry.vaddr.0 | paddr.offset());
                if bound != 0 && t.signal_queue.len() >= bound {
                    self.stats.signals_dropped += 1;
                } else {
                    t.signal_queue.push_back(va);
                }
                let wake = t.desc.state == ThreadState::WaitSignal;
                if wake {
                    t.desc.state = ThreadState::Ready;
                }
                mpm.clock.charge(signal_fast);
                mpm.cpus[cpu].consume(signal_fast);
                if wake {
                    self.enqueue_thread(slot);
                }
                if self.signal_events {
                    self.emit(KernelEvent::Signal {
                        paddr,
                        receivers: 1,
                        fast: true,
                    });
                } else {
                    self.stats.signals_fast += 1;
                }
                return SignalOutcome::Fast(1);
            }
            // Stale entry (thread unloaded since): drop it and fall back.
            mpm.cpus[cpu].rtlb.invalidate(pfn);
        }

        // Slow path: two-stage lookup with optimistic version check. The
        // receiver list lands in a CK-owned scratch buffer so a steady
        // stream of slow-path signals allocates nothing.
        mpm.clock.charge(signal_slow);
        mpm.cpus[cpu].consume(signal_slow);
        let mut receivers = core::mem::take(&mut self.signal_scratch);
        loop {
            receivers.clear();
            let version = self.physmap.version();
            self.physmap.visit_signals(paddr, |thread, asid, vaddr| {
                receivers.push((thread, asid, vaddr))
            });
            if self.physmap.version() == version {
                // Refill the reverse TLB only if the map stayed stable
                // under us (§4.2); a sole receiver keeps the entry useful.
                if receivers.len() == 1 {
                    let (thread, _asid, vaddr) = receivers[0];
                    mpm.cpus[cpu].rtlb.insert(pfn, RtlbEntry { vaddr, thread });
                }
                break;
            }
            // Map changed concurrently: retry the lookup.
        }
        let n = receivers.len();
        for &(thread, _asid, vaddr) in &receivers {
            let va = Vaddr(vaddr.0 | paddr.offset());
            self.deliver_signal(thread as u16, va);
        }
        receivers.clear();
        self.signal_scratch = receivers;
        if n == 0 {
            return SignalOutcome::NoReceiver;
        }
        if self.signal_events {
            self.emit(KernelEvent::Signal {
                paddr,
                receivers: n,
                fast: false,
            });
        } else {
            self.stats.signals_slow += 1;
        }
        SignalOutcome::Slow(n)
    }

    /// Queue a signal on a thread and wake it if it was waiting. "While
    /// the thread is running in its signal function, additional signals
    /// are queued within the Cache Kernel" — queuing is unconditional; the
    /// thread drains the queue one signal per handler activation.
    pub(crate) fn deliver_signal(&mut self, slot: u16, va: Vaddr) {
        {
            let bound = self.config.signal_queue_bound;
            let t = match self.threads.get_slot_mut(slot) {
                Some(t) => t,
                None => return,
            };
            if bound != 0 && t.signal_queue.len() >= bound {
                // A waiting thread always has an empty queue, so the
                // dropped signal is never the one that would wake it.
                self.stats.signals_dropped += 1;
                return;
            }
            t.signal_queue.push_back(va);
            if t.desc.state != ThreadState::WaitSignal {
                return;
            }
            t.desc.state = ThreadState::Ready;
        }
        self.enqueue_thread(slot);
    }

    /// Take the next pending signal for the thread in `slot`, if any
    /// (executive: the thread polled or is entering its signal function).
    pub fn take_signal(&mut self, slot: u16) -> Option<Vaddr> {
        let t = self.threads.get_slot_mut(slot)?;
        let va = t.signal_queue.pop_front();
        t.in_signal = va.is_some();
        va
    }

    /// The thread in `slot` finished its signal function.
    pub fn signal_return(&mut self, slot: u16) {
        if let Some(t) = self.threads.get_slot_mut(slot) {
            t.in_signal = false;
        }
    }

    /// Block the thread in `slot` until a signal arrives. Returns `true`
    /// if a signal was already pending (no block needed).
    pub fn wait_signal(&mut self, slot: u16) -> bool {
        let t = match self.threads.get_slot_mut(slot) {
            Some(t) => t,
            None => return false,
        };
        if !t.signal_queue.is_empty() {
            return true;
        }
        t.desc.state = ThreadState::WaitSignal;
        self.sched.remove(slot);
        false
    }

    /// Pending signal count for a thread (diagnostics).
    pub fn pending_signals(&self, slot: u16) -> usize {
        self.threads
            .get_slot(slot)
            .map(|t| t.signal_queue.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::{CacheKernel, CkConfig};
    use crate::objects::*;
    use hw::{MachineConfig, Pte};

    fn setup() -> (CacheKernel, Mpm, crate::ids::ObjId) {
        let mut ck = CacheKernel::new(CkConfig {
            kernel_slots: 4,
            space_slots: 8,
            thread_slots: 16,
            mapping_capacity: 64,
            ..CkConfig::default()
        });
        let mpm = Mpm::new(MachineConfig {
            phys_frames: 1024,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        (ck, mpm, srm)
    }

    #[test]
    fn slow_then_fast_delivery() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0xa000),
            Paddr(0x9000),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        // First delivery: slow path (reverse TLB cold), installs entry.
        let o1 = ck.raise_signal(&mut mpm, 0, Paddr(0x9040));
        assert_eq!(o1, SignalOutcome::Slow(1));
        // Second: fast path on the same CPU.
        let o2 = ck.raise_signal(&mut mpm, 0, Paddr(0x9080));
        assert_eq!(o2, SignalOutcome::Fast(1));
        // A different CPU has a cold reverse TLB: slow again.
        let o3 = ck.raise_signal(&mut mpm, 1, Paddr(0x90c0));
        assert_eq!(o3, SignalOutcome::Slow(1));
        // Signal addresses carry the receiver's virtual translation with
        // the byte offset preserved.
        assert_eq!(ck.take_signal(t.slot), Some(Vaddr(0xa040)));
        assert_eq!(ck.take_signal(t.slot), Some(Vaddr(0xa080)));
        assert_eq!(ck.take_signal(t.slot), Some(Vaddr(0xa0c0)));
        assert_eq!(ck.take_signal(t.slot), None);
        assert_eq!(ck.stats.signals_fast, 1);
        assert_eq!(ck.stats.signals_slow, 2);
    }

    #[test]
    fn no_receiver() {
        let (mut ck, mut mpm, _srm) = setup();
        assert_eq!(
            ck.raise_signal(&mut mpm, 0, Paddr(0x5000)),
            SignalOutcome::NoReceiver
        );
    }

    #[test]
    fn multicast_to_all_receivers() {
        // Fig. 3: one sender page signals multiple receiver spaces.
        let (mut ck, mut mpm, srm) = setup();
        let frame = Paddr(0x9000);
        let mut threads = Vec::new();
        for i in 0..3u32 {
            let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
            let t = ck
                .load_thread(srm, ThreadDesc::new(sp, i, 5), false, &mut mpm)
                .unwrap();
            ck.load_mapping(
                srm,
                sp,
                Vaddr(0xa000 + i * 0x1000),
                frame,
                Pte::MESSAGE,
                Some(t),
                None,
                &mut mpm,
            )
            .unwrap();
            threads.push((t, Vaddr(0xa000 + i * 0x1000)));
        }
        let o = ck.raise_signal(&mut mpm, 0, Paddr(0x9010));
        assert_eq!(o, SignalOutcome::Slow(3));
        for (t, base) in threads {
            assert_eq!(ck.take_signal(t.slot), Some(Vaddr(base.0 | 0x10)));
        }
        // Multi-receiver pages do not enter the reverse TLB (it resolves
        // to a single thread), so delivery stays on the slow path.
        assert_eq!(
            ck.raise_signal(&mut mpm, 0, Paddr(0x9010)),
            SignalOutcome::Slow(3)
        );
    }

    #[test]
    fn wakeup_on_signal() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0xa000),
            Paddr(0x9000),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        // The thread blocks waiting for a signal.
        assert!(!ck.wait_signal(t.slot));
        assert_eq!(ck.thread(t).unwrap().desc.state, ThreadState::WaitSignal);
        assert_eq!(ck.sched.ready_count(), 0);
        // A signal wakes and re-queues it.
        ck.raise_signal(&mut mpm, 0, Paddr(0x9000));
        assert_eq!(ck.thread(t).unwrap().desc.state, ThreadState::Ready);
        assert_eq!(ck.sched.ready_count(), 1);
        // wait_signal with a pending signal does not block.
        assert!(ck.wait_signal(t.slot));
    }

    #[test]
    fn stale_rtlb_entry_detected_after_thread_unload() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0xa000),
            Paddr(0x9000),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        ck.raise_signal(&mut mpm, 0, Paddr(0x9000)); // warm the rTLB
                                                     // Unloading the thread unloads the signal mapping and invalidates
                                                     // reverse-TLB entries; a new signal finds no receiver.
        ck.unload_thread(srm, t, &mut mpm).unwrap();
        assert_eq!(
            ck.raise_signal(&mut mpm, 0, Paddr(0x9000)),
            SignalOutcome::NoReceiver
        );
    }

    #[test]
    fn signals_queue_while_in_handler() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0xa000),
            Paddr(0x9000),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        ck.raise_signal(&mut mpm, 0, Paddr(0x9000));
        ck.raise_signal(&mut mpm, 0, Paddr(0x9004));
        ck.raise_signal(&mut mpm, 0, Paddr(0x9008));
        assert_eq!(ck.pending_signals(t.slot), 3);
        assert_eq!(ck.take_signal(t.slot), Some(Vaddr(0xa000)));
        assert!(ck.thread(t).unwrap().in_signal);
        ck.signal_return(t.slot);
        assert!(!ck.thread(t).unwrap().in_signal);
        assert_eq!(ck.pending_signals(t.slot), 2);
    }
}
