//! The Cache Kernel proper: the load/unload/writeback interface (§2).
//!
//! The Cache Kernel caches three types of objects — kernels, address
//! spaces and threads — plus per-page memory mappings, executing only the
//! performance-critical actions on them. Application kernels implement
//! everything else: they load objects to activate them, receive writebacks
//! when objects are displaced, and serve as the backing store for object
//! state.

use crate::account::KernelAccount;
use crate::cache::ObjCache;
use crate::error::{CkError, CkResult};
use crate::ids::{ObjId, ObjKind};
use crate::objects::*;
use crate::physmap::PhysMap;
use crate::sched::Scheduler;
use hw::{Asid, Mpm, Rights, Vpn};
use std::collections::{BTreeMap, VecDeque};

// These types began life in this module; most of the tree (and external
// crates) still name them through `ck::`.
pub use crate::counters::{CkStats, Counters, STAT_MAPPING};
pub use crate::events::{KernelEvent, MappingState, Writeback};

/// Boot-time configuration of a Cache Kernel instance. Defaults match the
/// prototype of Table 1: 16 kernels, 64 address spaces, 256 threads and
/// 65 536 memory-mapping descriptors.
#[derive(Clone, Debug)]
pub struct CkConfig {
    /// Kernel-object cache slots.
    pub kernel_slots: usize,
    /// Address-space cache slots.
    pub space_slots: usize,
    /// Thread cache slots.
    pub thread_slots: usize,
    /// Memory-mapping descriptor capacity.
    pub mapping_capacity: usize,
    /// Scheduler time slice, in executor steps.
    pub slice: u32,
    /// Accounting period, in cycles (§4.3 quota enforcement granularity).
    pub accounting_period: u64,
    /// Per-application-kernel writeback queue bound (0 = unbounded).
    /// At the bound, further writebacks addressed to the kernel spill to
    /// the first kernel and the slow kernel's own loads are shed with
    /// [`CkError::Again`](crate::error::CkError).
    pub wb_queue_bound: usize,
    /// Event queue bound (0 = unbounded). At the bound, accounting ticks
    /// are dropped with a counter; load-bearing events always enter.
    pub event_queue_bound: usize,
    /// Thrash-detector window, in per-class loads (0 = detector off): a
    /// displacement→reload interval at or below this counts as a fast
    /// reload.
    pub thrash_window: u64,
    /// Consecutive fast reloads before `ThrashDetected` fires.
    pub thrash_threshold: u32,
    /// Penalty duration after the detector fires, in per-class loads:
    /// the offender's objects get no second chance from the clock hand.
    pub thrash_penalty: u64,
    /// Cache-occupancy watermark (percent) above which the share cap is
    /// enforced.
    pub watermark_pct: u8,
    /// Per-kernel share cap (percent of a cache's slots; 100 = off):
    /// past the watermark, a kernel already holding this share of a
    /// cache has further loads of that class shed.
    pub share_cap_pct: u8,
    /// Base suggested backoff carried in `Again`, in cycles.
    pub shed_backoff: u32,
    /// Per-thread signal queue bound (0 = unbounded, the default).
    /// "Additional signals are queued within the Cache Kernel" (§2.2)
    /// with no stated limit, but an unresponsive receiver can then pin
    /// unbounded kernel memory. At the bound further signals to that
    /// thread are dropped and counted in
    /// [`Counters::signals_dropped`](crate::Counters); wakeups are
    /// unaffected (a waiting thread always has an empty queue, so the
    /// waking signal is never the one dropped).
    pub signal_queue_bound: usize,
    /// Number of CPU shards in the machine this Cache Kernel is one
    /// shard of (0 or 1 = not sharded). When ≥ 2, compound shootdown
    /// rounds are also exported as [`ShardMsg::Shootdown`] broadcasts so
    /// the other shards' TLBs see the same consistency action — the
    /// cross-CPU round as an explicit message instead of shared
    /// mutation.
    ///
    /// [`ShardMsg::Shootdown`]: crate::shardmsg::ShardMsg
    pub shard_fanout: usize,
    /// Capability enforcement at the application-kernel boundary
    /// (default off, and provably inert then: every rights failure keeps
    /// its legacy error shape and no new counter or event moves). When
    /// on, out-of-grant maps, forged writeback targets, bystander signal
    /// registrations and grant-escalation attempts are denied with
    /// [`CkError::CapDenied`](crate::error::CkError), counted in
    /// `cap_denied` and traced as `CapViolation` events; a grant
    /// *reduction* additionally tears down the kernel's now-out-of-grant
    /// mappings in one batched shootdown round. The first kernel is
    /// exempt throughout.
    pub caps_enforce: bool,
    /// MProtect-style metadata-only descriptor mode (default off): the
    /// Cache Kernel tracks residency and consistency for pages whose
    /// contents it cannot read. Mapping writebacks carry an opaque
    /// payload handle ([`caps::opaque_payload`](crate::caps)) instead of
    /// implying readable page data, counted in `metadata_writebacks`;
    /// reclaim and recovery already operate purely on descriptor
    /// metadata, so no other path changes.
    pub metadata_only: bool,
}

impl Default for CkConfig {
    fn default() -> Self {
        CkConfig {
            kernel_slots: 16,
            space_slots: 64,
            thread_slots: 256,
            mapping_capacity: 65_536,
            slice: 50,
            accounting_period: 100_000,
            wb_queue_bound: 0,
            event_queue_bound: 65_536,
            thrash_window: 0,
            thrash_threshold: 4,
            thrash_penalty: 64,
            watermark_pct: 100,
            share_cap_pct: 100,
            shed_backoff: 500,
            signal_queue_bound: 0,
            shard_fanout: 0,
            caps_enforce: false,
            metadata_only: false,
        }
    }
}

/// One Cache Kernel instance (one per MPM).
pub struct CacheKernel {
    pub(crate) kernels: ObjCache<KernelObj>,
    pub(crate) spaces: ObjCache<SpaceObj>,
    pub(crate) threads: ObjCache<ThreadObj>,
    /// The physical memory map of dependency records.
    pub physmap: PhysMap,
    /// Ready queues.
    pub sched: Scheduler,
    pub(crate) accounts: BTreeMap<u16, KernelAccount>,
    /// FIFO-with-second-chance reclaim order for mappings.
    pub(crate) mapping_fifo: VecDeque<(u16, u32, Vpn)>,
    /// The ordered event pipeline drained by the executive.
    pub(crate) events: VecDeque<KernelEvent>,
    pub(crate) first_kernel: Option<ObjId>,
    /// Set by [`CacheKernel::load_mapping_and_resume`]: the pending fault
    /// return has already been paid for by the combined call.
    pub(crate) resume_armed: bool,
    /// Whether signal deliveries enter the event pipeline (default on).
    /// Signal wakeups are synchronous in the messaging layer; the queued
    /// event carries the fact into the ordered pipeline for tracing and
    /// delivery accounting. A harness that attaches no executive (so
    /// nothing ever pumps the queue) can turn this off, tracepoint-style,
    /// to measure bare delivery cost; counters tick either way.
    pub signal_events: bool,
    /// Whether batched shootdown rounds enter the event pipeline (default
    /// on). Same tracepoint-style gate as `signal_events`: each batch
    /// flush becomes one traced event carrying its page count; counters
    /// tick either way.
    pub shootdown_events: bool,
    /// Reusable shootdown batch for compound teardown operations.
    pub(crate) batch_scratch: crate::shootdown::ShootdownBatch,
    /// Reusable signal batch for coalesced per-round delivery.
    pub(crate) sigbatch_scratch: crate::sigbatch::SignalBatch,
    /// Reusable receiver buffer for slow-path signal delivery
    /// (`(thread_slot, asid, vaddr)`; keeps the hot path allocation-free).
    pub(crate) signal_scratch: Vec<(u32, u32, hw::Vaddr)>,
    /// Reusable sibling buffer for the multi-mapping consistency flush.
    pub(crate) p2v_scratch: Vec<crate::physmap::P2v>,
    /// Reusable VPN buffer for range unloads.
    pub(crate) vpn_scratch: Vec<Vpn>,
    /// Kernels declared dead (slot → the id that died there). While a
    /// slot is in this map its writebacks are redirected to the first
    /// kernel and its objects await [`recover_kernel`].
    ///
    /// [`recover_kernel`]: CacheKernel::recover_kernel
    pub(crate) dead_kernels: BTreeMap<u16, ObjId>,
    /// Last cycle each registered kernel was seen alive on the writeback
    /// channel (clock-tick delivery), keyed by slot.
    pub(crate) heartbeats: BTreeMap<u16, u64>,
    /// Restart notices queued by the SRM for the executive: the named
    /// kernel was reloaded under a fresh identifier and needs its
    /// application-kernel instance re-registered.
    pub(crate) restart_notices: VecDeque<(String, ObjId)>,
    /// Per-kernel overload bookkeeping: resident counts, pending
    /// writebacks, thrash-detector state (side table so victim-selection
    /// closures borrow it disjointly from the caches).
    pub(crate) overload: crate::overload::OverloadState,
    /// Messages bound for other shards of a sharded machine, queued by
    /// the kernel's lower layers (shootdown broadcast) and by
    /// application kernels through [`Env::ck`](crate::appkernel::Env).
    /// The machine layer drains this after every quantum and routes the
    /// messages onto the inter-executive rings; outside a sharded
    /// machine (`shard_fanout` < 2 and no driver pushing) it stays
    /// empty and costs nothing.
    pub shard_exports: Vec<crate::shardmsg::ShardExport>,
    /// Configuration.
    pub config: CkConfig,
    /// Operation counters.
    pub stats: CkStats,
}

impl CacheKernel {
    /// A Cache Kernel with the given cache geometry.
    pub fn new(config: CkConfig) -> Self {
        CacheKernel {
            kernels: ObjCache::new(ObjKind::Kernel, config.kernel_slots),
            spaces: ObjCache::new(ObjKind::AddrSpace, config.space_slots),
            threads: ObjCache::new(ObjKind::Thread, config.thread_slots),
            physmap: PhysMap::new(config.mapping_capacity),
            sched: Scheduler::new(config.slice),
            accounts: BTreeMap::new(),
            mapping_fifo: VecDeque::new(),
            events: VecDeque::with_capacity(64),
            first_kernel: None,
            resume_armed: false,
            signal_events: true,
            shootdown_events: true,
            batch_scratch: crate::shootdown::ShootdownBatch::default(),
            sigbatch_scratch: crate::sigbatch::SignalBatch::default(),
            signal_scratch: Vec::new(),
            p2v_scratch: Vec::new(),
            vpn_scratch: Vec::new(),
            dead_kernels: BTreeMap::new(),
            heartbeats: BTreeMap::new(),
            restart_notices: VecDeque::new(),
            overload: crate::overload::OverloadState::default(),
            shard_exports: Vec::new(),
            config,
            stats: CkStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Boot and the first kernel
    // ------------------------------------------------------------------

    /// Load the first kernel (the SRM) at boot: it owns itself, is locked,
    /// and by convention is granted whatever `desc.memory_access` says
    /// (normally everything).
    pub fn boot(&mut self, desc: KernelDesc) -> ObjId {
        assert!(self.first_kernel.is_none(), "already booted");
        let id = self
            .kernels
            .insert(KernelObj {
                desc,
                owner: ObjId::new(ObjKind::Kernel, 0, 0), // patched below
                locked: true,
                referenced: true,
                demoted: false,
                locked_spaces: 0,
                locked_threads: 0,
                locked_mappings: 0,
            })
            .expect("empty kernel cache at boot");
        self.kernels.get_mut(id).unwrap().owner = id;
        self.first_kernel = Some(id);
        self.accounts.insert(id.slot, KernelAccount::default());
        self.stats.loads[CkStats::idx(ObjKind::Kernel)] += 1;
        self.note_loaded(id, CkStats::idx(ObjKind::Kernel));
        id
    }

    /// The first kernel's identifier.
    pub fn first_kernel(&self) -> ObjId {
        self.first_kernel.expect("not booted")
    }

    pub(crate) fn require_first(&self, caller: ObjId) -> CkResult<()> {
        if Some(caller) != self.first_kernel {
            return Err(CkError::FirstKernelOnly);
        }
        Ok(())
    }

    /// Read-only view of a loaded kernel object (fails on a stale id).
    pub fn kernel(&self, id: ObjId) -> CkResult<&KernelObj> {
        self.kernels.get(id).ok_or(CkError::StaleId(id))
    }

    pub(crate) fn kernel_mut(&mut self, id: ObjId) -> CkResult<&mut KernelObj> {
        self.kernels.get_mut(id).ok_or(CkError::StaleId(id))
    }

    /// Charge simulated time for a Cache Kernel call: the trap into
    /// supervisor mode plus `work` cycles of internal processing. The
    /// Table 2 costs emerge from these charges plus the structural work
    /// (descriptor copies, lookups, shootdowns) each path adds.
    pub(crate) fn charge_op(&self, mpm: &mut Mpm, work: u64) {
        let c = mpm.config.cost.trap + work;
        mpm.clock.charge(c);
    }

    /// Cycles to copy `bytes` of descriptor state line by line.
    pub(crate) fn copy_cost(mpm: &Mpm, bytes: usize) -> u64 {
        mpm.config.cost.copy_line * (bytes as u64).div_ceil(hw::CACHE_LINE_SIZE as u64)
    }

    /// Cycles for a TLB/rTLB shootdown across the MPM's processors.
    pub(crate) fn shootdown_cost(mpm: &Mpm) -> u64 {
        mpm.config.cost.ipi * (mpm.cpus.len() as u64).saturating_sub(1)
    }

    /// Read-only view of a loaded space object (fails on a stale id).
    pub fn space(&self, id: ObjId) -> CkResult<&SpaceObj> {
        self.spaces.get(id).ok_or(CkError::StaleId(id))
    }

    pub(crate) fn space_mut(&mut self, id: ObjId) -> CkResult<&mut SpaceObj> {
        self.spaces.get_mut(id).ok_or(CkError::StaleId(id))
    }

    /// Read-only view of a loaded thread object (fails on a stale id).
    pub fn thread(&self, id: ObjId) -> CkResult<&ThreadObj> {
        self.threads.get(id).ok_or(CkError::StaleId(id))
    }

    pub(crate) fn thread_mut(&mut self, id: ObjId) -> CkResult<&mut ThreadObj> {
        self.threads.get_mut(id).ok_or(CkError::StaleId(id))
    }

    /// The address-space tag used in TLBs and the physical memory map for
    /// a loaded space: its cache slot.
    pub fn asid_of(id: ObjId) -> Asid {
        debug_assert_eq!(id.kind, ObjKind::AddrSpace);
        id.slot
    }

    // ------------------------------------------------------------------
    // Kernel objects (§2.4)
    // ------------------------------------------------------------------

    /// Load a new application kernel object. Restricted to the first
    /// kernel, which owns and manages all kernel objects.
    pub fn load_kernel(
        &mut self,
        caller: ObjId,
        desc: KernelDesc,
        mpm: &mut Mpm,
    ) -> CkResult<ObjId> {
        self.require_first(caller)?;
        self.charge_op(
            mpm,
            Self::copy_cost(mpm, core::mem::size_of::<KernelDesc>()),
        );
        if self.kernels.is_full() {
            let victim = self.kernel_victim().ok_or(CkError::CacheFull)?;
            self.writeback_kernel(victim, mpm)?;
        }
        let id = self
            .kernels
            .insert(KernelObj {
                desc,
                owner: caller,
                locked: false,
                referenced: true,
                demoted: false,
                locked_spaces: 0,
                locked_threads: 0,
                locked_mappings: 0,
            })
            .ok_or(CkError::CacheFull)?;
        self.accounts.insert(id.slot, KernelAccount::default());
        self.stats.loads[CkStats::idx(ObjKind::Kernel)] += 1;
        self.note_loaded(caller, CkStats::idx(ObjKind::Kernel));
        Ok(id)
    }

    /// Explicitly unload a kernel object, unloading all of its address
    /// spaces, threads and mappings first ("an expensive operation", §2.4).
    /// Dependent objects are written back to the unloaded kernel over the
    /// writeback channel; the kernel descriptor itself is returned.
    pub fn unload_kernel(
        &mut self,
        caller: ObjId,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<Box<KernelDesc>> {
        self.require_first(caller)?;
        if Some(id) == self.first_kernel {
            return Err(CkError::Invalid);
        }
        self.kernel(id)?;
        self.charge_op(mpm, 0);
        let desc = self.do_unload_kernel(id, mpm)?;
        self.stats.unloads[CkStats::idx(ObjKind::Kernel)] += 1;
        Ok(desc)
    }

    /// The three special query/modify operations on kernel objects (§2.4,
    /// §7): added "as optimizations of this basic mechanism" of unloading,
    /// modifying and reloading.
    ///
    /// 1. Change the page-group rights of a kernel (SRM only; with
    ///    capability enforcement on, a non-first caller's attempt is
    ///    traced and denied as a grant-escalation violation rather than
    ///    the bare [`CkError::FirstKernelOnly`]). Under `caps_enforce`,
    ///    a rights *reduction* also tears down the kernel's mappings
    ///    that the narrowed grant no longer covers, in one batched
    ///    shootdown round — a down-scoped kernel cannot keep touching
    ///    pages through stale PTEs.
    pub fn modify_kernel_grant(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        group_first: u32,
        group_count: u32,
        rights: Rights,
        mpm: &mut Mpm,
    ) -> CkResult<()> {
        if Some(caller) != self.first_kernel {
            let anchor = hw::Paddr(group_first.saturating_mul(hw::PAGE_GROUP_SIZE));
            return Err(self.cap_escalation_denied(caller, anchor));
        }
        let k = self.kernel_mut(kernel)?;
        let mut narrowed = false;
        for g in group_first..group_first.saturating_add(group_count) {
            if g >= hw::PAGE_GROUPS_TOTAL {
                return Err(CkError::Invalid);
            }
            let old = k.desc.memory_access.get(g);
            k.desc.memory_access.set(g, rights);
            if (old.allows(hw::Access::Read) && !rights.allows(hw::Access::Read))
                || (old.allows(hw::Access::Write) && !rights.allows(hw::Access::Write))
            {
                narrowed = true;
            }
        }
        if narrowed && self.config.caps_enforce && Some(kernel) != self.first_kernel {
            self.revoke_out_of_grant_mappings(kernel, group_first, group_count, mpm);
        }
        Ok(())
    }

    /// 2. Change a kernel's processor quota (SRM only).
    pub fn set_kernel_cpu_quota(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        quota_pct: [u8; MAX_CPUS],
    ) -> CkResult<()> {
        self.require_first(caller)?;
        self.kernel_mut(kernel)?.desc.cpu_quota_pct = quota_pct;
        Ok(())
    }

    /// 3. Change the maximum priority a kernel may use (SRM only).
    pub fn set_kernel_max_priority(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        max_priority: Priority,
    ) -> CkResult<()> {
        self.require_first(caller)?;
        if max_priority > MAX_PRIORITY {
            return Err(CkError::Invalid);
        }
        self.kernel_mut(kernel)?.desc.max_priority = max_priority;
        Ok(())
    }

    /// 4. Change a kernel's reserved descriptor slots (SRM only).
    ///
    /// Below these counts the kernel's loaded objects cannot be displaced
    /// by *other* kernels' loads (the greedy load is shed with
    /// [`CkError::Again`](crate::error::CkError) instead). The sum of all
    /// kernels' reservations must fit each cache — otherwise every
    /// overloaded load could be shed forever.
    pub fn set_kernel_reservation(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        reserved: ReservedSlots,
    ) -> CkResult<()> {
        self.require_first(caller)?;
        self.kernel(kernel)?;
        let (mut spaces, mut threads, mut mappings) = (0usize, 0usize, 0usize);
        for (id, _) in self.kernels.iter() {
            let r = if id == kernel {
                reserved
            } else {
                self.overload.reserved(id.slot)
            };
            spaces += usize::from(r.spaces);
            threads += usize::from(r.threads);
            mappings += usize::from(r.mappings);
        }
        if spaces > self.spaces.capacity()
            || threads > self.threads.capacity()
            || mappings > self.physmap.capacity()
        {
            return Err(CkError::Invalid);
        }
        self.overload.set_reserved(kernel.slot, reserved);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Address-space objects (§2.1)
    // ------------------------------------------------------------------

    /// Load an address space for the calling kernel, with minimal state
    /// (currently just the lock bit). Returns the new identifier.
    pub fn load_space(&mut self, caller: ObjId, desc: SpaceDesc, mpm: &mut Mpm) -> CkResult<ObjId> {
        let k = self.kernel(caller)?;
        if desc.locked && k.locked_spaces >= k.desc.locked_quota.spaces {
            return Err(CkError::LockQuota);
        }
        let class = CkStats::idx(ObjKind::AddrSpace);
        self.admit_load(caller, class, self.spaces.len(), self.spaces.capacity())?;
        // Root page table (512 B) plus the root object.
        self.charge_op(
            mpm,
            Self::copy_cost(mpm, hw::pagetable::UPPER_TABLE_BYTES + 64),
        );
        if self.spaces.is_full() {
            let victim = self.space_victim(caller)?;
            self.writeback_space(victim, mpm)?;
        }
        let id = self
            .spaces
            .insert(SpaceObj {
                owner: caller,
                locked: desc.locked,
                referenced: true,
                pt: hw::PageTable::new(),
            })
            .ok_or(CkError::CacheFull)?;
        if desc.locked {
            self.kernel_mut(caller)?.locked_spaces += 1;
        }
        self.stats.loads[class] += 1;
        self.note_loaded(caller, class);
        Ok(id)
    }

    /// Explicitly unload an address space. Its threads and mappings are
    /// written back first (over the channel); the space itself just
    /// disappears — it carried no other state.
    pub fn unload_space(&mut self, caller: ObjId, id: ObjId, mpm: &mut Mpm) -> CkResult<()> {
        let s = self.space(id)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        // The ASID flush rides the teardown's single batched shootdown
        // round, charged at the batch flush.
        self.charge_op(mpm, 0);
        self.do_unload_space(id, mpm, false)?;
        self.stats.unloads[CkStats::idx(ObjKind::AddrSpace)] += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Thread objects (§2.3)
    // ------------------------------------------------------------------

    /// Load a thread. Its address space must be currently loaded; if the
    /// space identifier is stale (e.g. the space was written back
    /// concurrently), the load fails with [`CkError::StaleId`] and the
    /// application kernel retries after reloading the space.
    pub fn load_thread(
        &mut self,
        caller: ObjId,
        desc: ThreadDesc,
        locked: bool,
        mpm: &mut Mpm,
    ) -> CkResult<ObjId> {
        let k = self.kernel(caller)?;
        if desc.priority > k.desc.max_priority {
            return Err(CkError::PriorityTooHigh(desc.priority));
        }
        if locked && k.locked_threads >= k.desc.locked_quota.threads {
            return Err(CkError::LockQuota);
        }
        let space = self.space(desc.space)?;
        if space.owner != caller {
            return Err(CkError::NotOwner(desc.space));
        }
        let class = CkStats::idx(ObjKind::Thread);
        self.admit_load(caller, class, self.threads.len(), self.threads.capacity())?;
        // Copy the register context in and queue the thread.
        self.charge_op(
            mpm,
            Self::copy_cost(mpm, core::mem::size_of::<ThreadDesc>())
                + 2 * mpm.config.cost.hash_probe,
        );
        if self.threads.is_full() {
            let victim = self.thread_victim(caller)?;
            self.writeback_thread(victim, mpm)?;
        }
        let state = desc.state;
        let priority = desc.priority;
        let id = self
            .threads
            .insert(ThreadObj {
                desc,
                owner: caller,
                locked,
                referenced: true,
                signal_queue: VecDeque::new(),
                in_signal: false,
            })
            .ok_or(CkError::CacheFull)?;
        if locked {
            self.kernel_mut(caller)?.locked_threads += 1;
        }
        let _ = priority;
        if state == ThreadState::Ready {
            self.enqueue_thread(id.slot);
        }
        self.stats.loads[class] += 1;
        self.note_loaded(caller, class);
        Ok(id)
    }

    /// Explicitly unload a thread, returning its current state (this is
    /// how an application kernel deschedules, examines or migrates one).
    pub fn unload_thread(
        &mut self,
        caller: ObjId,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<Box<ThreadDesc>> {
        let t = self.thread(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        self.charge_op(mpm, 0);
        let desc = self.do_unload_thread(id, mpm)?;
        self.stats.unloads[CkStats::idx(ObjKind::Thread)] += 1;
        Ok(desc)
    }

    /// The priority-modification optimization call (§2.3): adjust a loaded
    /// thread's priority without unloading and reloading it.
    pub fn set_priority(&mut self, caller: ObjId, id: ObjId, priority: Priority) -> CkResult<()> {
        let max = self.kernel(caller)?.desc.max_priority;
        if priority > max {
            return Err(CkError::PriorityTooHigh(priority));
        }
        let t = self.thread_mut(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        t.desc.priority = priority;
        self.sched.requeue(id.slot, priority);
        Ok(())
    }

    /// Force a loaded thread to block (descheduling without unload).
    pub fn suspend_thread(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        let t = self.thread_mut(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        t.desc.state = ThreadState::Suspended;
        self.sched.remove(id.slot);
        Ok(())
    }

    /// Resume a suspended or signal-waiting thread.
    pub fn resume_thread(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        let t = self.thread_mut(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        if matches!(
            t.desc.state,
            ThreadState::Suspended | ThreadState::WaitSignal
        ) {
            t.desc.state = ThreadState::Ready;
            self.enqueue_thread(id.slot);
        }
        Ok(())
    }

    // Page mappings (§2.1/§2.2) live in `mapping.rs`; locking in
    // `lock.rs`; quota accounting (§4.3) in `account.rs`.

    // ------------------------------------------------------------------
    // Introspection for the harness
    // ------------------------------------------------------------------

    /// (loaded, capacity) per object kind plus mappings.
    pub fn occupancy(&self) -> [(usize, usize); 4] {
        [
            (self.kernels.len(), self.kernels.capacity()),
            (self.spaces.len(), self.spaces.capacity()),
            (self.threads.len(), self.threads.capacity()),
            (self.physmap.len(), self.physmap.capacity()),
        ]
    }

    /// Owner kernel of a thread slot (executive dispatch).
    pub fn thread_owner(&self, slot: u16) -> Option<ObjId> {
        self.threads.get_slot(slot).map(|t| t.owner)
    }

    /// Current id of a thread slot.
    pub fn thread_id(&self, slot: u16) -> Option<ObjId> {
        self.threads.id_of_slot(slot)
    }

    /// Current id of a space slot.
    pub fn space_id(&self, slot: u16) -> Option<ObjId> {
        self.spaces.id_of_slot(slot)
    }

    /// The hardware page tables of a loaded space. The MMU walks these on
    /// a TLB miss; the executive (and tests standing in for it) pass them
    /// to [`hw::Mpm::translate`].
    pub fn page_table_mut(&mut self, space: ObjId) -> Option<&mut hw::PageTable> {
        self.spaces.get_mut(space).map(|s| &mut s.pt)
    }

    /// Read-only view of a loaded space's page tables.
    pub fn page_table(&self, space: ObjId) -> Option<&hw::PageTable> {
        self.spaces.get(space).map(|s| &s.pt)
    }
}

#[cfg(test)]
#[path = "ck_tests.rs"]
mod tests;
