//! The Cache Kernel proper: the load/unload/writeback interface (§2).
//!
//! The Cache Kernel caches three types of objects — kernels, address
//! spaces and threads — plus per-page memory mappings, executing only the
//! performance-critical actions on them. Application kernels implement
//! everything else: they load objects to activate them, receive writebacks
//! when objects are displaced, and serve as the backing store for object
//! state.

use crate::account::KernelAccount;
use crate::cache::ObjCache;
use crate::error::{CkError, CkResult};
use crate::ids::{ObjId, ObjKind};
use crate::objects::*;
use crate::physmap::PhysMap;
use crate::sched::Scheduler;
use hw::{Access, Asid, Mpm, Paddr, Pte, Rights, Vaddr, Vpn};
use std::collections::{HashMap, VecDeque};

/// Boot-time configuration of a Cache Kernel instance. Defaults match the
/// prototype of Table 1: 16 kernels, 64 address spaces, 256 threads and
/// 65 536 memory-mapping descriptors.
#[derive(Clone, Debug)]
pub struct CkConfig {
    /// Kernel-object cache slots.
    pub kernel_slots: usize,
    /// Address-space cache slots.
    pub space_slots: usize,
    /// Thread cache slots.
    pub thread_slots: usize,
    /// Memory-mapping descriptor capacity.
    pub mapping_capacity: usize,
    /// Scheduler time slice, in executor steps.
    pub slice: u32,
    /// Accounting period, in cycles (§4.3 quota enforcement granularity).
    pub accounting_period: u64,
}

impl Default for CkConfig {
    fn default() -> Self {
        CkConfig {
            kernel_slots: 16,
            space_slots: 64,
            thread_slots: 256,
            mapping_capacity: 65_536,
            slice: 50,
            accounting_period: 100_000,
        }
    }
}

/// Operation counters, read by the evaluation harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct CkStats {
    /// Object loads by kind: kernels, spaces, threads, mappings.
    pub loads: [u64; 4],
    /// Explicit unloads by kind.
    pub unloads: [u64; 4],
    /// Reclamation-driven writebacks by kind (replacement interference).
    pub writebacks: [u64; 4],
    /// Signals delivered via the reverse-TLB fast path.
    pub signals_fast: u64,
    /// Signals delivered via the two-stage lookup.
    pub signals_slow: u64,
    /// Faults forwarded to application kernels.
    pub faults_forwarded: u64,
    /// Traps forwarded to application kernels.
    pub traps_forwarded: u64,
    /// Mappings flushed for multi-mapping consistency.
    pub consistency_flushes: u64,
}

impl CkStats {
    fn idx(kind: ObjKind) -> usize {
        match kind {
            ObjKind::Kernel => 0,
            ObjKind::AddrSpace => 1,
            ObjKind::Thread => 2,
        }
    }
}

/// Index of the mapping "kind" in the stats arrays.
pub const STAT_MAPPING: usize = 3;

/// State written back to an application kernel when an object is displaced
/// (or unloaded as a dependent of a displaced object). Delivered over the
/// writeback channel by the executive.
#[derive(Clone, Debug)]
pub enum Writeback {
    /// A page mapping, with its final flag bits — the application kernel
    /// uses the modified bit to decide whether to clean the page (§2.1).
    Mapping {
        /// Kernel to deliver to.
        owner: ObjId,
        /// Address space the mapping belonged to.
        space: ObjId,
        /// Virtual page base.
        vaddr: Vaddr,
        /// Physical page base.
        paddr: Paddr,
        /// Final PTE flag bits (REFERENCED/MODIFIED/WRITABLE/…).
        flags: u32,
    },
    /// A thread's full state.
    Thread {
        /// Kernel to deliver to.
        owner: ObjId,
        /// The (now stale) identifier it was loaded under.
        id: ObjId,
        /// The descriptor state.
        desc: Box<ThreadDesc>,
    },
    /// An address space (its mappings and threads have already been
    /// written back, per the §4.2 ordering).
    Space {
        /// Kernel to deliver to.
        owner: ObjId,
        /// The (now stale) identifier.
        id: ObjId,
    },
    /// An application kernel object (delivered to the first kernel).
    Kernel {
        /// Kernel to deliver to (the SRM).
        owner: ObjId,
        /// The (now stale) identifier.
        id: ObjId,
        /// The descriptor state.
        desc: Box<KernelDesc>,
    },
}

impl Writeback {
    /// The kernel this writeback is addressed to.
    pub fn owner(&self) -> ObjId {
        match self {
            Writeback::Mapping { owner, .. }
            | Writeback::Thread { owner, .. }
            | Writeback::Space { owner, .. }
            | Writeback::Kernel { owner, .. } => *owner,
        }
    }
}

/// A mapping unload result returned from explicit unload calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MappingState {
    /// Virtual page base.
    pub vaddr: Vaddr,
    /// Physical page base.
    pub paddr: Paddr,
    /// Final PTE flags including referenced/modified.
    pub flags: u32,
}

/// One Cache Kernel instance (one per MPM).
pub struct CacheKernel {
    pub(crate) kernels: ObjCache<KernelObj>,
    pub(crate) spaces: ObjCache<SpaceObj>,
    pub(crate) threads: ObjCache<ThreadObj>,
    /// The physical memory map of dependency records.
    pub physmap: PhysMap,
    /// Ready queues.
    pub sched: Scheduler,
    pub(crate) accounts: HashMap<u16, KernelAccount>,
    /// FIFO-with-second-chance reclaim order for mappings.
    pub(crate) mapping_fifo: VecDeque<(u16, u32, Vpn)>,
    pub(crate) writebacks: VecDeque<Writeback>,
    first_kernel: Option<ObjId>,
    /// Set by [`CacheKernel::load_mapping_and_resume`]: the pending fault
    /// return has already been paid for by the combined call.
    pub(crate) resume_armed: bool,
    /// Configuration.
    pub config: CkConfig,
    /// Operation counters.
    pub stats: CkStats,
}

impl CacheKernel {
    /// A Cache Kernel with the given cache geometry.
    pub fn new(config: CkConfig) -> Self {
        CacheKernel {
            kernels: ObjCache::new(ObjKind::Kernel, config.kernel_slots),
            spaces: ObjCache::new(ObjKind::AddrSpace, config.space_slots),
            threads: ObjCache::new(ObjKind::Thread, config.thread_slots),
            physmap: PhysMap::new(config.mapping_capacity),
            sched: Scheduler::new(config.slice),
            accounts: HashMap::new(),
            mapping_fifo: VecDeque::new(),
            writebacks: VecDeque::new(),
            first_kernel: None,
            resume_armed: false,
            config,
            stats: CkStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Boot and the first kernel
    // ------------------------------------------------------------------

    /// Load the first kernel (the SRM) at boot: it owns itself, is locked,
    /// and by convention is granted whatever `desc.memory_access` says
    /// (normally everything).
    pub fn boot(&mut self, desc: KernelDesc) -> ObjId {
        assert!(self.first_kernel.is_none(), "already booted");
        let id = self
            .kernels
            .insert(KernelObj {
                desc,
                owner: ObjId::new(ObjKind::Kernel, 0, 0), // patched below
                locked: true,
                referenced: true,
                demoted: false,
                locked_spaces: 0,
                locked_threads: 0,
                locked_mappings: 0,
            })
            .expect("empty kernel cache at boot");
        self.kernels.get_mut(id).unwrap().owner = id;
        self.first_kernel = Some(id);
        self.accounts.insert(id.slot, KernelAccount::default());
        self.stats.loads[CkStats::idx(ObjKind::Kernel)] += 1;
        id
    }

    /// The first kernel's identifier.
    pub fn first_kernel(&self) -> ObjId {
        self.first_kernel.expect("not booted")
    }

    fn require_first(&self, caller: ObjId) -> CkResult<()> {
        if Some(caller) != self.first_kernel {
            return Err(CkError::FirstKernelOnly);
        }
        Ok(())
    }

    /// Read-only view of a loaded kernel object (fails on a stale id).
    pub fn kernel(&self, id: ObjId) -> CkResult<&KernelObj> {
        self.kernels.get(id).ok_or(CkError::StaleId(id))
    }

    pub(crate) fn kernel_mut(&mut self, id: ObjId) -> CkResult<&mut KernelObj> {
        self.kernels.get_mut(id).ok_or(CkError::StaleId(id))
    }

    /// Charge simulated time for a Cache Kernel call: the trap into
    /// supervisor mode plus `work` cycles of internal processing. The
    /// Table 2 costs emerge from these charges plus the structural work
    /// (descriptor copies, lookups, shootdowns) each path adds.
    pub(crate) fn charge_op(&self, mpm: &mut Mpm, work: u64) {
        let c = mpm.config.cost.trap + work;
        mpm.clock.charge(c);
    }

    /// Cycles to copy `bytes` of descriptor state line by line.
    pub(crate) fn copy_cost(mpm: &Mpm, bytes: usize) -> u64 {
        mpm.config.cost.copy_line * (bytes as u64).div_ceil(hw::CACHE_LINE_SIZE as u64)
    }

    /// Cycles for a TLB/rTLB shootdown across the MPM's processors.
    pub(crate) fn shootdown_cost(mpm: &Mpm) -> u64 {
        mpm.config.cost.ipi * (mpm.cpus.len() as u64).saturating_sub(1)
    }

    /// Read-only view of a loaded space object (fails on a stale id).
    pub fn space(&self, id: ObjId) -> CkResult<&SpaceObj> {
        self.spaces.get(id).ok_or(CkError::StaleId(id))
    }

    pub(crate) fn space_mut(&mut self, id: ObjId) -> CkResult<&mut SpaceObj> {
        self.spaces.get_mut(id).ok_or(CkError::StaleId(id))
    }

    /// Read-only view of a loaded thread object (fails on a stale id).
    pub fn thread(&self, id: ObjId) -> CkResult<&ThreadObj> {
        self.threads.get(id).ok_or(CkError::StaleId(id))
    }

    pub(crate) fn thread_mut(&mut self, id: ObjId) -> CkResult<&mut ThreadObj> {
        self.threads.get_mut(id).ok_or(CkError::StaleId(id))
    }

    /// The address-space tag used in TLBs and the physical memory map for
    /// a loaded space: its cache slot.
    pub fn asid_of(id: ObjId) -> Asid {
        debug_assert_eq!(id.kind, ObjKind::AddrSpace);
        id.slot
    }

    // ------------------------------------------------------------------
    // Kernel objects (§2.4)
    // ------------------------------------------------------------------

    /// Load a new application kernel object. Restricted to the first
    /// kernel, which owns and manages all kernel objects.
    pub fn load_kernel(
        &mut self,
        caller: ObjId,
        desc: KernelDesc,
        mpm: &mut Mpm,
    ) -> CkResult<ObjId> {
        self.require_first(caller)?;
        self.charge_op(
            mpm,
            Self::copy_cost(mpm, core::mem::size_of::<KernelDesc>()),
        );
        if self.kernels.is_full() {
            let victim = self.kernel_victim().ok_or(CkError::CacheFull)?;
            self.writeback_kernel(victim, mpm)?;
        }
        let id = self
            .kernels
            .insert(KernelObj {
                desc,
                owner: caller,
                locked: false,
                referenced: true,
                demoted: false,
                locked_spaces: 0,
                locked_threads: 0,
                locked_mappings: 0,
            })
            .ok_or(CkError::CacheFull)?;
        self.accounts.insert(id.slot, KernelAccount::default());
        self.stats.loads[CkStats::idx(ObjKind::Kernel)] += 1;
        Ok(id)
    }

    /// Explicitly unload a kernel object, unloading all of its address
    /// spaces, threads and mappings first ("an expensive operation", §2.4).
    /// Dependent objects are written back to the unloaded kernel over the
    /// writeback channel; the kernel descriptor itself is returned.
    pub fn unload_kernel(
        &mut self,
        caller: ObjId,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<Box<KernelDesc>> {
        self.require_first(caller)?;
        if Some(id) == self.first_kernel {
            return Err(CkError::Invalid);
        }
        self.kernel(id)?;
        self.charge_op(mpm, 0);
        let desc = self.do_unload_kernel(id, mpm);
        self.stats.unloads[CkStats::idx(ObjKind::Kernel)] += 1;
        Ok(desc)
    }

    /// The three special query/modify operations on kernel objects (§2.4,
    /// §7): added "as optimizations of this basic mechanism" of unloading,
    /// modifying and reloading.
    ///
    /// 1. Change the page-group rights of a kernel (SRM only).
    pub fn modify_kernel_grant(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        group_first: u32,
        group_count: u32,
        rights: Rights,
    ) -> CkResult<()> {
        self.require_first(caller)?;
        let k = self.kernel_mut(kernel)?;
        for g in group_first..group_first.saturating_add(group_count) {
            if g >= hw::PAGE_GROUPS_TOTAL {
                return Err(CkError::Invalid);
            }
            k.desc.memory_access.set(g, rights);
        }
        Ok(())
    }

    /// 2. Change a kernel's processor quota (SRM only).
    pub fn set_kernel_cpu_quota(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        quota_pct: [u8; MAX_CPUS],
    ) -> CkResult<()> {
        self.require_first(caller)?;
        self.kernel_mut(kernel)?.desc.cpu_quota_pct = quota_pct;
        Ok(())
    }

    /// 3. Change the maximum priority a kernel may use (SRM only).
    pub fn set_kernel_max_priority(
        &mut self,
        caller: ObjId,
        kernel: ObjId,
        max_priority: Priority,
    ) -> CkResult<()> {
        self.require_first(caller)?;
        if max_priority > MAX_PRIORITY {
            return Err(CkError::Invalid);
        }
        self.kernel_mut(kernel)?.desc.max_priority = max_priority;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Address-space objects (§2.1)
    // ------------------------------------------------------------------

    /// Load an address space for the calling kernel, with minimal state
    /// (currently just the lock bit). Returns the new identifier.
    pub fn load_space(&mut self, caller: ObjId, desc: SpaceDesc, mpm: &mut Mpm) -> CkResult<ObjId> {
        let k = self.kernel(caller)?;
        if desc.locked && k.locked_spaces >= k.desc.locked_quota.spaces {
            return Err(CkError::LockQuota);
        }
        // Root page table (512 B) plus the root object.
        self.charge_op(
            mpm,
            Self::copy_cost(mpm, hw::pagetable::UPPER_TABLE_BYTES + 64),
        );
        if self.spaces.is_full() {
            let victim = self.space_victim().ok_or(CkError::CacheFull)?;
            self.writeback_space(victim, mpm);
        }
        let id = self
            .spaces
            .insert(SpaceObj {
                owner: caller,
                locked: desc.locked,
                referenced: true,
                pt: hw::PageTable::new(),
            })
            .ok_or(CkError::CacheFull)?;
        if desc.locked {
            self.kernel_mut(caller)?.locked_spaces += 1;
        }
        self.stats.loads[CkStats::idx(ObjKind::AddrSpace)] += 1;
        Ok(id)
    }

    /// Explicitly unload an address space. Its threads and mappings are
    /// written back first (over the channel); the space itself just
    /// disappears — it carried no other state.
    pub fn unload_space(&mut self, caller: ObjId, id: ObjId, mpm: &mut Mpm) -> CkResult<()> {
        let s = self.space(id)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        // Address-space unload broadcasts an ASID flush.
        self.charge_op(mpm, Self::shootdown_cost(mpm));
        self.do_unload_space(id, mpm, false);
        self.stats.unloads[CkStats::idx(ObjKind::AddrSpace)] += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Thread objects (§2.3)
    // ------------------------------------------------------------------

    /// Load a thread. Its address space must be currently loaded; if the
    /// space identifier is stale (e.g. the space was written back
    /// concurrently), the load fails with [`CkError::StaleId`] and the
    /// application kernel retries after reloading the space.
    pub fn load_thread(
        &mut self,
        caller: ObjId,
        desc: ThreadDesc,
        locked: bool,
        mpm: &mut Mpm,
    ) -> CkResult<ObjId> {
        let k = self.kernel(caller)?;
        if desc.priority > k.desc.max_priority {
            return Err(CkError::PriorityTooHigh(desc.priority));
        }
        if locked && k.locked_threads >= k.desc.locked_quota.threads {
            return Err(CkError::LockQuota);
        }
        let space = self.space(desc.space)?;
        if space.owner != caller {
            return Err(CkError::NotOwner(desc.space));
        }
        // Copy the register context in and queue the thread.
        self.charge_op(
            mpm,
            Self::copy_cost(mpm, core::mem::size_of::<ThreadDesc>())
                + 2 * mpm.config.cost.hash_probe,
        );
        if self.threads.is_full() {
            let victim = self.thread_victim().ok_or(CkError::CacheFull)?;
            self.writeback_thread(victim, mpm);
        }
        let state = desc.state;
        let priority = desc.priority;
        let id = self
            .threads
            .insert(ThreadObj {
                desc,
                owner: caller,
                locked,
                referenced: true,
                signal_queue: VecDeque::new(),
                in_signal: false,
            })
            .ok_or(CkError::CacheFull)?;
        if locked {
            self.kernel_mut(caller)?.locked_threads += 1;
        }
        let _ = priority;
        if state == ThreadState::Ready {
            self.enqueue_thread(id.slot);
        }
        self.stats.loads[CkStats::idx(ObjKind::Thread)] += 1;
        Ok(id)
    }

    /// Explicitly unload a thread, returning its current state (this is
    /// how an application kernel deschedules, examines or migrates one).
    pub fn unload_thread(
        &mut self,
        caller: ObjId,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<Box<ThreadDesc>> {
        let t = self.thread(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        self.charge_op(mpm, 0);
        let desc = self.do_unload_thread(id, mpm);
        self.stats.unloads[CkStats::idx(ObjKind::Thread)] += 1;
        Ok(desc)
    }

    /// The priority-modification optimization call (§2.3): adjust a loaded
    /// thread's priority without unloading and reloading it.
    pub fn set_priority(&mut self, caller: ObjId, id: ObjId, priority: Priority) -> CkResult<()> {
        let max = self.kernel(caller)?.desc.max_priority;
        if priority > max {
            return Err(CkError::PriorityTooHigh(priority));
        }
        let t = self.thread_mut(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        t.desc.priority = priority;
        self.sched.requeue(id.slot, priority);
        Ok(())
    }

    /// Force a loaded thread to block (descheduling without unload).
    pub fn suspend_thread(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        let t = self.thread_mut(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        t.desc.state = ThreadState::Suspended;
        self.sched.remove(id.slot);
        Ok(())
    }

    /// Resume a suspended or signal-waiting thread.
    pub fn resume_thread(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        let t = self.thread_mut(id)?;
        if t.owner != caller {
            return Err(CkError::NotOwner(id));
        }
        if matches!(
            t.desc.state,
            ThreadState::Suspended | ThreadState::WaitSignal
        ) {
            t.desc.state = ThreadState::Ready;
            self.enqueue_thread(id.slot);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page mappings (§2.1, §2.2)
    // ------------------------------------------------------------------

    /// Load a page mapping into `space`. `flags` are [`Pte`] flag bits;
    /// `signal_thread` registers the page for memory-based messaging;
    /// `cow_source` records a deferred-copy source frame. The physical
    /// address and requested access are checked against the calling
    /// kernel's memory access array.
    #[allow(clippy::too_many_arguments)]
    pub fn load_mapping(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        paddr: Paddr,
        flags: u32,
        signal_thread: Option<ObjId>,
        cow_source: Option<Paddr>,
        mpm: &mut Mpm,
    ) -> CkResult<()> {
        let k = self.kernel(caller)?;
        // Rights: writable (even deferred) mappings need ReadWrite.
        let needed = if flags & Pte::WRITABLE != 0 {
            Access::Write
        } else {
            Access::Read
        };
        if !k.desc.memory_access.rights_for(paddr).allows(needed) {
            return Err(CkError::NoAccess(paddr));
        }
        if let Some(src) = cow_source {
            if !k.desc.memory_access.rights_for(src).allows(Access::Read) {
                return Err(CkError::NoAccess(src));
            }
        }
        if flags & Pte::LOCKED != 0 && k.locked_mappings >= k.desc.locked_quota.mappings {
            return Err(CkError::LockQuota);
        }
        {
            let s = self.space(space)?;
            if s.owner != caller {
                return Err(CkError::NotOwner(space));
            }
        }
        let sig_slot = match signal_thread {
            Some(tid) => {
                let t = self.thread(tid)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(tid));
                }
                Some(tid.slot)
            }
            None => None,
        };

        // One trap, a couple of probes, one 16-byte record.
        self.charge_op(
            mpm,
            3 * mpm.config.cost.hash_probe + mpm.config.cost.copy_line,
        );

        // Replace any existing mapping at this page first.
        let asid = Self::asid_of(space);
        let vpn = vaddr.vpn();
        if self.space(space)?.pt.lookup(vpn).is_valid() {
            self.do_unload_mapping(space, vpn, mpm, true);
        }

        // Make room in the mapping descriptor pool: "loading of a new page
        // descriptor may cause another page descriptor to be written back
        // … to make space" (§2.1).
        while self.physmap.len() >= self.physmap.capacity() {
            if !self.reclaim_one_mapping(mpm) {
                return Err(CkError::CacheFull);
            }
        }

        let handle = self
            .physmap
            .insert_p2v(paddr, vaddr, asid as u32)
            .ok_or(CkError::CacheFull)?;
        if let Some(slot) = sig_slot {
            self.physmap.attach_signal(handle, slot as u32);
        }
        if let Some(src) = cow_source {
            self.physmap.attach_cow(handle, src);
        }
        let pte = Pte::new(paddr.pfn(), flags & !(Pte::REFERENCED | Pte::MODIFIED));
        let space_gen = space.gen;
        self.space_mut(space)?.pt.insert(vpn, pte);
        self.space_mut(space)?.referenced = true;
        if flags & Pte::LOCKED != 0 {
            self.kernel_mut(caller)?.locked_mappings += 1;
        }
        self.mapping_fifo.push_back((space.slot, space_gen, vpn));
        self.stats.loads[STAT_MAPPING] += 1;
        Ok(())
    }

    /// Explicitly unload the mappings covering `vaddr..vaddr+len`,
    /// returning their final states (with referenced/modified bits). Used
    /// by application kernels when reclaiming page frames (§2.1).
    pub fn unload_mapping_range(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        len: u32,
        mpm: &mut Mpm,
    ) -> CkResult<Vec<MappingState>> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        self.charge_op(mpm, 0);
        let first = vaddr.vpn().0;
        let last = Vaddr(
            vaddr
                .0
                .checked_add(len.saturating_sub(1))
                .ok_or(CkError::Invalid)?,
        )
        .vpn()
        .0;
        let mut out = Vec::new();
        for vpn in first..=last {
            if let Some(state) = self.do_unload_mapping(space, Vpn(vpn), mpm, false) {
                out.push(state);
                self.stats.unloads[STAT_MAPPING] += 1;
            }
        }
        Ok(out)
    }

    /// Query a mapping (query operations are deliberately few; this one
    /// supports fault handlers inspecting current state).
    pub fn query_mapping(
        &self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
    ) -> CkResult<MappingState> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        let pte = s.pt.lookup(vaddr.vpn());
        if !pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        Ok(MappingState {
            vaddr: vaddr.page_base(),
            paddr: pte.pfn().base(),
            flags: pte.flags(),
        })
    }

    /// The recorded copy-on-write source frame of a mapping, if any
    /// (§4.1: COW sources are dependency records in the physical memory
    /// map). Application kernels resolve a COW fault by copying from this
    /// frame into a private one.
    pub fn cow_source(&self, caller: ObjId, space: ObjId, vaddr: Vaddr) -> CkResult<Option<Paddr>> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        let pte = s.pt.lookup(vaddr.vpn());
        if !pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        let asid = Self::asid_of(space) as u32;
        Ok(self
            .physmap
            .find_p2v_exact(pte.pfn().base(), asid, vaddr.page_base())
            .and_then(|h| self.physmap.cow_source_of(h)))
    }

    // ------------------------------------------------------------------
    // Locking (§2)
    // ------------------------------------------------------------------

    /// Lock an object against reclamation, subject to the kernel's
    /// locked-object quota.
    pub fn lock(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        match id.kind {
            ObjKind::Kernel => {
                self.require_first(caller)?;
                self.kernel_mut(id)?.locked = true;
            }
            ObjKind::AddrSpace => {
                let s = self.space(id)?;
                if s.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if !s.locked {
                    let k = self.kernel(caller)?;
                    if k.locked_spaces >= k.desc.locked_quota.spaces {
                        return Err(CkError::LockQuota);
                    }
                    self.space_mut(id)?.locked = true;
                    self.kernel_mut(caller)?.locked_spaces += 1;
                }
            }
            ObjKind::Thread => {
                let t = self.thread(id)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if !t.locked {
                    let k = self.kernel(caller)?;
                    if k.locked_threads >= k.desc.locked_quota.threads {
                        return Err(CkError::LockQuota);
                    }
                    self.thread_mut(id)?.locked = true;
                    self.kernel_mut(caller)?.locked_threads += 1;
                }
            }
        }
        Ok(())
    }

    /// Unlock an object.
    pub fn unlock(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        match id.kind {
            ObjKind::Kernel => {
                self.require_first(caller)?;
                if Some(id) == self.first_kernel {
                    return Err(CkError::Invalid);
                }
                self.kernel_mut(id)?.locked = false;
            }
            ObjKind::AddrSpace => {
                let s = self.space(id)?;
                if s.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if s.locked {
                    self.space_mut(id)?.locked = false;
                    self.kernel_mut(caller)?.locked_spaces -= 1;
                }
            }
            ObjKind::Thread => {
                let t = self.thread(id)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if t.locked {
                    self.thread_mut(id)?.locked = false;
                    self.kernel_mut(caller)?.locked_threads -= 1;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writeback channel
    // ------------------------------------------------------------------

    /// Drain the queued writebacks (the executive delivers these to the
    /// owning application kernels over the writeback channel).
    pub fn take_writebacks(&mut self) -> Vec<Writeback> {
        self.writebacks.drain(..).collect()
    }

    /// Number of queued writebacks.
    pub fn pending_writebacks(&self) -> usize {
        self.writebacks.len()
    }

    // ------------------------------------------------------------------
    // Accounting and quota enforcement (§4.3)
    // ------------------------------------------------------------------

    /// Effective scheduling priority of a thread slot: its descriptor
    /// priority, or idle if its kernel is currently demoted for exceeding
    /// its processor quota.
    pub fn effective_priority(&self, slot: u16) -> Priority {
        let t = match self.threads.get_slot(slot) {
            Some(t) => t,
            None => return IDLE_PRIORITY,
        };
        if self
            .kernels
            .get(t.owner)
            .map(|k| k.demoted)
            .unwrap_or(false)
        {
            IDLE_PRIORITY
        } else {
            t.desc.priority
        }
    }

    /// Enqueue a thread at its effective priority (executive helper).
    pub fn enqueue_thread(&mut self, slot: u16) {
        if self.sched.contains(slot) {
            return;
        }
        let p = self.effective_priority(slot);
        if self.threads.get_slot(slot).is_some() {
            self.sched.enqueue(slot, p);
        }
    }

    /// Record graduated CPU consumption for a thread's kernel (§4.3: a
    /// premium above normal priority, a discount below).
    pub fn account_consumption(&mut self, thread_slot: u16, cpu: usize, cycles: u64) {
        let (owner_slot, priority) = match self.threads.get_slot(thread_slot) {
            Some(t) => (t.owner.slot, t.desc.priority),
            None => return,
        };
        let charged = crate::account::graduated_charge(cycles, priority);
        self.accounts
            .entry(owner_slot)
            .or_default()
            .charge(cpu.min(MAX_CPUS - 1), charged);
    }

    /// Close an accounting period: update every kernel's decayed usage
    /// against its quota and apply/lift demotions. Returns the kernels
    /// whose demotion state changed.
    pub fn end_accounting_period(&mut self, period_cycles: u64) -> Vec<(ObjId, bool)> {
        let mut changed = Vec::new();
        let slots: Vec<u16> = self.accounts.keys().copied().collect();
        for slot in slots {
            let id = match self.kernels.id_of_slot(slot) {
                Some(id) => id,
                None => continue,
            };
            let quota = self.kernels.get(id).unwrap().desc.cpu_quota_pct;
            let transitions = self
                .accounts
                .get_mut(&slot)
                .unwrap()
                .end_period(period_cycles, &quota);
            if transitions.is_empty() {
                continue;
            }
            // Any CPU over quota demotes the kernel's threads (we enforce
            // at kernel granularity; the account tracks per-CPU usage).
            let demoted = (0..MAX_CPUS).any(|c| self.accounts[&slot].is_demoted(c));
            let k = self.kernels.get_mut(id).unwrap();
            if k.demoted != demoted {
                k.demoted = demoted;
                changed.push((id, demoted));
                self.apply_demotion(id);
            }
        }
        changed
    }

    /// Re-queue every ready thread of `kernel` at its (new) effective
    /// priority after a demotion change.
    fn apply_demotion(&mut self, kernel: ObjId) {
        let slots: Vec<u16> = self
            .threads
            .iter()
            .filter(|(_, t)| t.owner == kernel)
            .map(|(id, _)| id.slot)
            .collect();
        for slot in slots {
            let p = self.effective_priority(slot);
            self.sched.requeue(slot, p);
        }
    }

    /// Decayed CPU usage of a kernel on `cpu` as a percentage (reports).
    pub fn kernel_usage_pct(&self, kernel: ObjId, cpu: usize, period_cycles: u64) -> f64 {
        self.accounts
            .get(&kernel.slot)
            .map(|a| a.usage_pct(cpu, period_cycles))
            .unwrap_or(0.0)
    }

    /// Whether a kernel is currently demoted.
    pub fn kernel_demoted(&self, kernel: ObjId) -> bool {
        self.kernels.get(kernel).map(|k| k.demoted).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Introspection for the harness
    // ------------------------------------------------------------------

    /// (loaded, capacity) per object kind plus mappings.
    pub fn occupancy(&self) -> [(usize, usize); 4] {
        [
            (self.kernels.len(), self.kernels.capacity()),
            (self.spaces.len(), self.spaces.capacity()),
            (self.threads.len(), self.threads.capacity()),
            (self.physmap.len(), self.physmap.capacity()),
        ]
    }

    /// Owner kernel of a thread slot (executive dispatch).
    pub fn thread_owner(&self, slot: u16) -> Option<ObjId> {
        self.threads.get_slot(slot).map(|t| t.owner)
    }

    /// Current id of a thread slot.
    pub fn thread_id(&self, slot: u16) -> Option<ObjId> {
        self.threads.id_of_slot(slot)
    }

    /// Current id of a space slot.
    pub fn space_id(&self, slot: u16) -> Option<ObjId> {
        self.spaces.id_of_slot(slot)
    }

    /// The hardware page tables of a loaded space. The MMU walks these on
    /// a TLB miss; the executive (and tests standing in for it) pass them
    /// to [`hw::Mpm::translate`].
    pub fn page_table_mut(&mut self, space: ObjId) -> Option<&mut hw::PageTable> {
        self.spaces.get_mut(space).map(|s| &mut s.pt)
    }

    /// Read-only view of a loaded space's page tables.
    pub fn page_table(&self, space: ObjId) -> Option<&hw::PageTable> {
        self.spaces.get(space).map(|s| &s.pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw::MachineConfig;

    pub(crate) fn setup() -> (CacheKernel, Mpm, ObjId) {
        let mut ck = CacheKernel::new(CkConfig {
            kernel_slots: 4,
            space_slots: 4,
            thread_slots: 8,
            mapping_capacity: 32,
            ..CkConfig::default()
        });
        let mpm = Mpm::new(MachineConfig {
            phys_frames: 1024,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        (ck, mpm, srm)
    }

    fn grant_all() -> KernelDesc {
        KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        }
    }

    #[test]
    fn boot_loads_locked_first_kernel() {
        let (ck, _mpm, srm) = setup();
        assert_eq!(ck.first_kernel(), srm);
        assert!(ck.kernel(srm).unwrap().locked);
        assert_eq!(ck.kernel(srm).unwrap().owner, srm);
    }

    #[test]
    fn only_first_kernel_loads_kernels() {
        let (mut ck, mut mpm, srm) = setup();
        let k2 = ck.load_kernel(srm, grant_all(), &mut mpm).unwrap();
        assert_eq!(
            ck.load_kernel(k2, KernelDesc::default(), &mut mpm),
            Err(CkError::FirstKernelOnly)
        );
    }

    #[test]
    fn space_and_thread_lifecycle() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
            .unwrap();
        assert_eq!(ck.sched.ready_count(), 1);
        let desc = ck.unload_thread(srm, t, &mut mpm).unwrap();
        assert_eq!(desc.regs.pc, 1);
        assert_eq!(ck.sched.ready_count(), 0);
        assert_eq!(ck.thread(t).err(), Some(CkError::StaleId(t)));
        ck.unload_space(srm, sp, &mut mpm).unwrap();
        assert_eq!(ck.space(sp).err(), Some(CkError::StaleId(sp)));
    }

    #[test]
    fn thread_load_with_stale_space_fails() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        ck.unload_space(srm, sp, &mut mpm).unwrap();
        let err = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
            .unwrap_err();
        assert_eq!(err, CkError::StaleId(sp));
        // Retry after reloading the space, per the §2 protocol.
        let sp2 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        assert!(ck
            .load_thread(srm, ThreadDesc::new(sp2, 1, 10), false, &mut mpm)
            .is_ok());
    }

    #[test]
    fn mapping_rights_enforced() {
        let (mut ck, mut mpm, srm) = setup();
        let mut desc = KernelDesc::default(); // no access at all
        desc.memory_access.set(0, Rights::Read);
        let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        // Read-only mapping into group 0: allowed.
        ck.load_mapping(
            k,
            sp,
            Vaddr(0x1000),
            Paddr(0x3000),
            Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        // Writable mapping into group 0: denied (only Read rights).
        assert_eq!(
            ck.load_mapping(
                k,
                sp,
                Vaddr(0x2000),
                Paddr(0x4000),
                Pte::WRITABLE,
                None,
                None,
                &mut mpm
            ),
            Err(CkError::NoAccess(Paddr(0x4000)))
        );
        // Any mapping outside group 0: denied.
        assert_eq!(
            ck.load_mapping(
                k,
                sp,
                Vaddr(0x2000),
                Paddr(hw::PAGE_GROUP_SIZE),
                0,
                None,
                None,
                &mut mpm
            ),
            Err(CkError::NoAccess(Paddr(hw::PAGE_GROUP_SIZE)))
        );
    }

    #[test]
    fn mapping_query_and_unload() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x5000),
            Paddr(0x9000),
            Pte::WRITABLE | Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        let q = ck.query_mapping(srm, sp, Vaddr(0x5123)).unwrap();
        assert_eq!(q.paddr, Paddr(0x9000));
        let states = ck
            .unload_mapping_range(srm, sp, Vaddr(0x5000), 0x1000, &mut mpm)
            .unwrap();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].paddr, Paddr(0x9000));
        assert_eq!(
            ck.query_mapping(srm, sp, Vaddr(0x5000)),
            Err(CkError::NoMapping)
        );
        assert!(ck.physmap.is_empty());
    }

    #[test]
    fn priority_cap_enforced() {
        let (mut ck, mut mpm, srm) = setup();
        let mut desc = grant_all();
        desc.max_priority = 10;
        let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        assert_eq!(
            ck.load_thread(k, ThreadDesc::new(sp, 1, 11), false, &mut mpm),
            Err(CkError::PriorityTooHigh(11))
        );
        let t = ck
            .load_thread(k, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
            .unwrap();
        assert_eq!(ck.set_priority(k, t, 11), Err(CkError::PriorityTooHigh(11)));
        ck.set_priority(k, t, 3).unwrap();
        assert_eq!(ck.thread(t).unwrap().desc.priority, 3);
    }

    #[test]
    fn lock_quota_enforced() {
        let (mut ck, mut mpm, srm) = setup();
        let mut desc = grant_all();
        desc.locked_quota = LockedQuota {
            spaces: 1,
            threads: 1,
            mappings: 1,
        };
        let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
        let s1 = ck
            .load_space(k, SpaceDesc { locked: true }, &mut mpm)
            .unwrap();
        assert_eq!(
            ck.load_space(k, SpaceDesc { locked: true }, &mut mpm),
            Err(CkError::LockQuota)
        );
        ck.unlock(k, s1).unwrap();
        assert!(ck
            .load_space(k, SpaceDesc { locked: true }, &mut mpm)
            .is_ok());
        // Locked-mapping quota.
        ck.load_mapping(
            k,
            s1,
            Vaddr(0x1000),
            Paddr(0x2000),
            Pte::LOCKED,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        assert_eq!(
            ck.load_mapping(
                k,
                s1,
                Vaddr(0x3000),
                Paddr(0x4000),
                Pte::LOCKED,
                None,
                None,
                &mut mpm
            ),
            Err(CkError::LockQuota)
        );
    }

    #[test]
    fn ownership_checks() {
        let (mut ck, mut mpm, srm) = setup();
        let k = ck.load_kernel(srm, grant_all(), &mut mpm).unwrap();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        // k cannot load a thread into srm's space.
        assert_eq!(
            ck.load_thread(k, ThreadDesc::new(sp, 1, 5), false, &mut mpm),
            Err(CkError::NotOwner(sp))
        );
        // k cannot unload srm's space or map into it.
        assert_eq!(ck.unload_space(k, sp, &mut mpm), Err(CkError::NotOwner(sp)));
        assert_eq!(
            ck.load_mapping(k, sp, Vaddr(0), Paddr(0), 0, None, None, &mut mpm),
            Err(CkError::NotOwner(sp))
        );
    }

    #[test]
    fn replacing_mapping_at_same_page() {
        let (mut ck, mut mpm, srm) = setup();
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x1000),
            Paddr(0x2000),
            0,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x1000),
            Paddr(0x7000),
            0,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        let q = ck.query_mapping(srm, sp, Vaddr(0x1000)).unwrap();
        assert_eq!(q.paddr, Paddr(0x7000));
        // The old mapping was written back, not leaked.
        assert_eq!(ck.physmap.len(), 1);
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 1);
        match &wbs[0] {
            Writeback::Mapping { paddr, .. } => assert_eq!(*paddr, Paddr(0x2000)),
            other => panic!("unexpected writeback {other:?}"),
        }
    }
}
