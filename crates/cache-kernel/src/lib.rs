//! The V++ Cache Kernel: a caching model of operating system kernel
//! functionality.
//!
//! Reproduction of Cheriton & Duda, *A Caching Model of Operating System
//! Kernel Functionality* (OSDI 1994). The Cache Kernel caches the active
//! operating-system objects — application **kernels**, **address spaces**
//! and **threads**, plus per-page **memory mappings** — exactly as a
//! hardware cache holds memory data. User-mode application kernels load
//! and unload these objects, receive writebacks when objects are
//! displaced, and implement all policy: paging, scheduling disciplines,
//! swapping, recovery. All inter-process communication is memory-based
//! messaging: address-valued signals raised by stores to message-mode
//! pages.
//!
//! Crate layout mirrors the paper:
//!
//! * [`ck`] — the load/unload/writeback interface (§2) and resource
//!   accounting (§4.3);
//! * [`physmap`] — the 16-byte dependency records of the physical memory
//!   map (§4.1);
//! * [`reclaim`] — dependency-ordered object replacement (§4.2, Fig. 6);
//! * [`msg`] — memory-based messaging and signal delivery (§2.2);
//! * [`fault`] — fault/trap forwarding and the optimized
//!   load-mapping-and-resume call (Fig. 2);
//! * [`sched`], [`account`] — fixed-priority time-sliced scheduling and
//!   graduated CPU charging;
//! * [`exec`] — the per-MPM executive driving simulated CPUs, and
//!   [`exec::Cluster`] for multi-MPM configurations;
//! * [`program`], [`appkernel`] — the simulated user-code and
//!   application-kernel interfaces.
//!
//! # Example
//!
//! Boot a Cache Kernel, load the three object types, watch an identifier
//! go stale on unload:
//!
//! ```
//! use cache_kernel::{CacheKernel, CkConfig, KernelDesc, MemoryAccessArray,
//!                    SpaceDesc, ThreadDesc};
//! use hw::{MachineConfig, Mpm, Paddr, Pte, Vaddr};
//!
//! let mut ck = CacheKernel::new(CkConfig::default());
//! let mut mpm = Mpm::new(MachineConfig { phys_frames: 1024, ..Default::default() });
//! let first = ck.boot(KernelDesc {
//!     memory_access: MemoryAccessArray::all(),
//!     ..KernelDesc::default()
//! });
//!
//! let space = ck.load_space(first, SpaceDesc::default(), &mut mpm)?;
//! let thread = ck.load_thread(first, ThreadDesc::new(space, 1, 10), false, &mut mpm)?;
//! ck.load_mapping(first, space, Vaddr(0x1000), Paddr(0x8000),
//!                 Pte::WRITABLE | Pte::CACHEABLE, None, None, &mut mpm)?;
//!
//! // Unloading returns the cached state; the identifier is now stale.
//! let desc = ck.unload_thread(first, thread, &mut mpm)?;
//! assert_eq!(desc.regs.pc, 1);
//! assert!(ck.thread(thread).is_err());
//! # Ok::<(), cache_kernel::CkError>(())
//! ```

pub mod account;
pub mod appkernel;
pub mod cache;
pub mod caps;
pub mod ck;
pub mod counters;
pub mod drivers;
pub mod error;
pub mod events;
pub mod exec;
pub mod fault;
pub mod ids;
pub mod invariants;
pub mod lock;
pub mod mapping;
pub mod msg;
pub mod objects;
pub mod overload;
pub mod physmap;
pub mod program;
pub mod reclaim;
pub mod recover;
pub mod sched;
pub mod shardmsg;
pub mod shootdown;
pub mod sigbatch;

#[cfg(test)]
pub(crate) mod test_support;

pub use appkernel::{AppKernel, Env, NullKernel};
pub use caps::{opaque_payload, CapOp};
pub use ck::{CacheKernel, CkConfig, CkStats, MappingState, Writeback, STAT_MAPPING};
pub use counters::Counters;
pub use drivers::EtherDriver;
pub use error::{CkError, CkResult};
pub use events::{ClusterEvent, DeviceSource, KernelEvent};
pub use exec::{Cluster, Executive, Machine, RunMode, ShardConfig};
pub use fault::{FaultDisposition, TrapDisposition};
pub use ids::{ObjId, ObjKind};
pub use mapping::TransferOutcome;
pub use msg::SignalOutcome;
pub use objects::{
    KernelDesc, LockedQuota, MemoryAccessArray, Priority, ReservedSlots, SpaceDesc, ThreadDesc,
    ThreadState, IDLE_PRIORITY, MAX_CPUS, MAX_PRIORITY, PRIORITY_LEVELS,
};
pub use overload::{KernelOverload, OverloadState, ThrashState};
pub use physmap::{DepRecord, P2v, PhysMap, RecHandle, CTX_COW, CTX_SIGNAL};
pub use program::{CodeStore, FnProgram, ForkableFn, ProgId, Program, Script, Step, ThreadCtx};
pub use recover::RecoveryReport;
pub use sched::{Pick, Scheduler};
pub use shardmsg::{Job, RemoteShootdown, ShardDst, ShardExport, ShardMsg, WbShipment};
pub use shootdown::ShootdownBatch;
pub use sigbatch::SignalBatch;
