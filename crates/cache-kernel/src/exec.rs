//! The executive: the per-MPM simulation loop.
//!
//! Stands in for the hardware's instruction stream: it dispatches loaded
//! threads onto simulated CPUs at fixed priority with round-robin time
//! slicing, executes their [`Program`] steps against the machine (with
//! real TLB misses, page faults and message-mode signals), forwards
//! faults/traps/exceptions to the owning application kernels per Fig. 2,
//! delivers writebacks over the writeback channel, polls devices, and
//! closes accounting periods for §4.3 quota enforcement.
//!
//! A [`Cluster`] connects several executives through the fabric for
//! multi-MPM configurations (Fig. 4/5).

use crate::appkernel::{AppKernel, Env};
use crate::ck::CacheKernel;
use crate::error::CkResult;
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::ids::ObjId;
use crate::objects::{Priority, ThreadDesc, ThreadState};
use crate::program::{CodeStore, Program, Step};
use hw::{Access, Fabric, Fault, FaultKind, Mpm, Packet, Pte, Vaddr};
use std::collections::HashMap;

/// Outcome of executing one program step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// Keep running within the slice.
    Continue,
    /// The thread stopped (blocked, yielded, exited, or was unloaded).
    Stopped,
}

/// How many times a single access is retried through fault handling
/// before the thread is killed (guards against handlers that never
/// actually resolve the fault).
const MAX_FAULT_RETRIES: usize = 4;

/// One MPM's executive.
pub struct Executive {
    /// The node's Cache Kernel.
    pub ck: CacheKernel,
    /// The node's hardware.
    pub mpm: Mpm,
    /// Program store.
    pub code: CodeStore,
    kernels: HashMap<u16, Box<dyn AppKernel>>,
    /// Network channel → owning kernel slot (stand-in for the SRM channel
    /// manager's registry).
    pub channel_owners: HashMap<u32, u16>,
    /// Packets awaiting the fabric.
    pub outbox: Vec<Packet>,
    /// Optional Ethernet driver (the DMA-to-messaging adaptation).
    pub ether_driver: Option<crate::drivers::EtherDriver>,
    /// Channels routed through the Ethernet interface instead of the
    /// fiber channel.
    pub ether_channels: std::collections::HashSet<u32>,
    last_period_end: u64,
    /// Quanta executed (diagnostics).
    pub quanta_run: u64,
}

impl Executive {
    /// An executive over a booted Cache Kernel and machine.
    pub fn new(ck: CacheKernel, mpm: Mpm) -> Self {
        Executive {
            ck,
            mpm,
            code: CodeStore::new(),
            kernels: HashMap::new(),
            channel_owners: HashMap::new(),
            outbox: Vec::new(),
            ether_driver: None,
            ether_channels: std::collections::HashSet::new(),
            last_period_end: 0,
            quanta_run: 0,
        }
    }

    /// Node index.
    pub fn node(&self) -> usize {
        self.mpm.node()
    }

    /// Register the application-kernel object behind a loaded kernel id.
    pub fn register_kernel(&mut self, id: ObjId, mut k: Box<dyn AppKernel>) {
        {
            let mut env = Env {
                ck: &mut self.ck,
                mpm: &mut self.mpm,
                code: &mut self.code,
                cpu: 0,
                node: 0,
                outbox: &mut self.outbox,
            };
            env.node = env.mpm.node();
            k.on_start(&mut env, id);
        }
        self.kernels.insert(id.slot, k);
    }

    /// Remove an application kernel object (after unloading its kernel).
    pub fn unregister_kernel(&mut self, id: ObjId) -> Option<Box<dyn AppKernel>> {
        self.kernels.remove(&id.slot)
    }

    /// Route `channel` to `kernel` for incoming packets.
    pub fn register_channel(&mut self, channel: u32, kernel: ObjId) {
        self.channel_owners.insert(channel, kernel.slot);
    }

    /// Invoke a registered kernel with an [`Env`] (take-out/put-back so
    /// the kernel can re-enter the Cache Kernel).
    pub fn call_kernel<R>(
        &mut self,
        kslot: u16,
        cpu: usize,
        f: impl FnOnce(&mut dyn AppKernel, &mut Env) -> R,
    ) -> Option<R> {
        let mut k = self.kernels.remove(&kslot)?;
        let node = self.mpm.node();
        let r = {
            let mut env = Env {
                ck: &mut self.ck,
                mpm: &mut self.mpm,
                code: &mut self.code,
                cpu,
                node,
                outbox: &mut self.outbox,
            };
            f(k.as_mut(), &mut env)
        };
        self.kernels.insert(kslot, k);
        Some(r)
    }

    /// Invoke a registered kernel downcast to its concrete type (tests,
    /// examples and the report harness drive kernels this way).
    pub fn with_kernel<T: 'static, R>(
        &mut self,
        id: ObjId,
        f: impl FnOnce(&mut T, &mut Env) -> R,
    ) -> Option<R> {
        self.call_kernel(id.slot, 0, |k, env| {
            k.as_any().downcast_mut::<T>().map(|t| f(t, env))
        })
        .flatten()
    }

    /// Convenience: install `program` and load a thread running it.
    pub fn spawn_thread(
        &mut self,
        kernel: ObjId,
        space: ObjId,
        program: Box<dyn Program>,
        priority: Priority,
    ) -> CkResult<ObjId> {
        let pc = self.code.register(program);
        let desc = ThreadDesc::new(space, pc, priority);
        match self.ck.load_thread(kernel, desc, false, &mut self.mpm) {
            Ok(id) => Ok(id),
            Err(e) => {
                self.code.remove(pc);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run `quanta` scheduling quanta. Each quantum polls devices,
    /// delivers writebacks, gives every CPU one time slice, and closes the
    /// accounting period when due.
    pub fn run(&mut self, quanta: usize) {
        for _ in 0..quanta {
            if self.mpm.halted {
                return;
            }
            self.quanta_run += 1;
            self.poll_devices();
            self.dispatch_writebacks();
            for cpu in 0..self.mpm.cpus.len() {
                self.run_cpu_slice(cpu);
            }
            self.close_accounting_period();
            self.loopback_outbox();
        }
    }

    /// Run until no thread is runnable or `max_quanta` elapse. Returns
    /// the number of quanta used.
    pub fn run_until_idle(&mut self, max_quanta: usize) -> usize {
        for q in 0..max_quanta {
            if self.mpm.halted {
                return q;
            }
            let busy = self.ck.sched.ready_count() > 0
                || self.mpm.cpus.iter().any(|c| c.current.is_some())
                || self.ck.pending_writebacks() > 0;
            if !busy {
                return q;
            }
            self.run(1);
        }
        max_quanta
    }

    /// Deliver queued writebacks to their owning application kernels.
    pub fn dispatch_writebacks(&mut self) {
        for wb in self.ck.take_writebacks() {
            let owner = wb.owner();
            self.call_kernel(owner.slot, 0, |k, env| k.on_writeback(env, wb));
        }
    }

    fn poll_devices(&mut self) {
        // Interval clock: its tick refreshes the time page, which the
        // Cache Kernel turns into an address-valued signal; registered
        // kernels also get their rescheduling hook.
        let now = self.mpm.clock.cycles();
        let tick = self.mpm.clockdev.poll(&mut self.mpm.mem, now);
        if let Some(pa) = tick {
            self.ck.raise_signal(&mut self.mpm, 0, pa);
            let kslots: Vec<u16> = self.kernels.keys().copied().collect();
            for ks in kslots {
                self.call_kernel(ks, 0, |k, env| k.on_tick(env));
            }
        }
        // Ethernet driver: reclaim transmit descriptors and turn receive
        // completions into address-valued signals on the buffer pages.
        if let Some(drv) = self.ether_driver.as_mut() {
            drv.poll(&mut self.ck, &mut self.mpm);
        }
    }

    fn close_accounting_period(&mut self) {
        let period = self.ck.config.accounting_period;
        let now = self.mpm.clock.cycles();
        if now - self.last_period_end >= period {
            self.last_period_end = now;
            self.ck.end_accounting_period(period);
        }
    }

    /// Packets addressed to this very node are delivered locally at the
    /// end of a quantum; the rest wait for the cluster loop.
    fn loopback_outbox(&mut self) {
        let node = self.mpm.node();
        let (local, remote): (Vec<Packet>, Vec<Packet>) =
            self.outbox.drain(..).partition(|p| p.dst == node);
        self.outbox = remote;
        for pkt in local {
            self.deliver_packet(pkt);
        }
    }

    /// Deliver an incoming fabric packet through the fiber interface: it
    /// lands in a reception slot and raises an address-valued signal on
    /// the slot page (§2.2 device model).
    pub fn deliver_packet(&mut self, pkt: Packet) {
        if self.ether_driver.is_some() && self.ether_channels.contains(&pkt.channel) {
            // DMA into the Ethernet receive ring; the driver raises the
            // signal on the buffer page at the next poll.
            self.mpm.ether.deliver(&mut self.mpm.mem, &pkt);
        } else if let Some(pa) = self.mpm.fiber.deliver(&mut self.mpm.mem, &pkt) {
            self.ck.raise_signal(&mut self.mpm, 0, pa);
        }
        if let Some(ks) = self.channel_owners.get(&pkt.channel).copied() {
            self.call_kernel(ks, 0, |k, env| {
                k.on_packet(env, pkt.src, pkt.channel, &pkt.data)
            });
        }
    }

    // ------------------------------------------------------------------
    // CPU dispatch
    // ------------------------------------------------------------------

    fn run_cpu_slice(&mut self, cpu: usize) {
        let slot = match self.mpm.cpus[cpu].current {
            Some(s) => s as u16,
            None => {
                let Some((slot, _p)) = self.ck.sched.pick() else {
                    // Idle: real time still passes on this CPU.
                    self.mpm.clock.charge(self.mpm.config.cost.idle_slice);
                    return;
                };
                let cost = self.mpm.config.cost.context_switch;
                self.mpm.clock.charge(cost);
                self.mpm.cpus[cpu].consume(cost);
                self.mpm.cpus[cpu].current = Some(slot as u32);
                if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                    t.desc.state = ThreadState::Running(cpu as u8);
                    t.referenced = true;
                }
                slot
            }
        };
        let slice = self.ck.sched.slice;
        for _ in 0..slice {
            match self.exec_one(cpu, slot) {
                Outcome::Continue => {}
                Outcome::Stopped => {
                    return;
                }
            }
            if self.mpm.cpus[cpu].current != Some(slot as u32) {
                return; // thread vanished under a handler
            }
            // Fixed-priority preemption: a strictly higher-priority thread
            // that became ready (a signal arrival, a wakeup) takes the CPU
            // at the next step boundary.
            if let Some(top) = self.ck.sched.top_priority() {
                if top > self.ck.effective_priority(slot) {
                    let cost = self.mpm.config.cost.context_switch;
                    self.mpm.clock.charge(cost);
                    self.mpm.cpus[cpu].consume(cost);
                    break;
                }
            }
        }
        // Slice expired: back to the tail of its priority queue.
        self.mpm.cpus[cpu].current = None;
        if let Some(t) = self.ck.threads.get_slot_mut(slot) {
            t.desc.state = ThreadState::Ready;
            self.ck.enqueue_thread(slot);
        }
    }

    /// Execute one program step for the thread in `slot` on `cpu`.
    fn exec_one(&mut self, cpu: usize, slot: u16) -> Outcome {
        let Some(tid) = self.ck.thread_id(slot) else {
            self.mpm.cpus[cpu].current = None;
            return Outcome::Stopped;
        };
        let pc = match self.ck.thread(tid) {
            Ok(t) => t.desc.regs.pc,
            Err(_) => {
                self.mpm.cpus[cpu].current = None;
                return Outcome::Stopped;
            }
        };
        let Some((mut prog, mut ctx)) = self.code.take(pc) else {
            // No program behind the pc: treat as an exited thread.
            self.terminate_thread(cpu, slot, -1);
            return Outcome::Stopped;
        };
        ctx.thread = Some(tid);
        ctx.cpu = cpu;

        // Fulfil a pending signal wait before stepping again.
        if ctx.waiting {
            match self.ck.take_signal(slot) {
                Some(va) => {
                    ctx.signal = Some(va);
                    ctx.waiting = false;
                }
                None => {
                    // Spurious wakeup: block again.
                    self.ck.wait_signal(slot);
                    self.mpm.cpus[cpu].current = None;
                    self.code.put(pc, prog, ctx);
                    return Outcome::Stopped;
                }
            }
        }

        let consumed_before = self.mpm.cpus[cpu].consumed;
        self.mpm.clock.charge(1);
        self.mpm.cpus[cpu].consume(1);

        let step = prog.step(&mut ctx);
        // The program and its context go back into the store *before* the
        // step is processed, so application-kernel handlers see it there
        // (fork duplicates it, blocked traps park it).
        self.code.put(pc, prog, ctx);

        let outcome = match step {
            Step::Compute(n) => {
                self.mpm.clock.charge(n);
                self.mpm.cpus[cpu].consume(n);
                Outcome::Continue
            }
            Step::Privileged => {
                // Privilege violation: forwarded like any exception.
                let fault = Fault {
                    kind: FaultKind::Privilege,
                    vaddr: Vaddr(0),
                    write: false,
                };
                match self.forward_fault(cpu, slot, tid, fault) {
                    Outcome::Continue => Outcome::Continue,
                    Outcome::Stopped => Outcome::Stopped,
                }
            }
            Step::Load(va) => self.do_access(cpu, slot, pc, va, Access::Read, AccessOp::ReadU32),
            Step::Store(va, v) => {
                self.do_access(cpu, slot, pc, va, Access::Write, AccessOp::WriteU32(v))
            }
            Step::LoadBytes(va, len) => {
                self.do_access(cpu, slot, pc, va, Access::Read, AccessOp::ReadBytes(len))
            }
            Step::StoreBytes(va, bytes) => self.do_access(
                cpu,
                slot,
                pc,
                va,
                Access::Write,
                AccessOp::WriteBytes(bytes),
            ),
            Step::Trap { no, args } => self.do_trap(cpu, slot, pc, tid, no, args),
            Step::WaitSignal => {
                self.ck.signal_return(slot);
                match self.ck.take_signal(slot) {
                    Some(va) => {
                        self.code.with_ctx(pc, |c| c.signal = Some(va));
                        Outcome::Continue
                    }
                    None => {
                        self.code.with_ctx(pc, |c| c.waiting = true);
                        self.ck.wait_signal(slot);
                        self.mpm.cpus[cpu].current = None;
                        Outcome::Stopped
                    }
                }
            }
            Step::Yield => {
                self.mpm.cpus[cpu].current = None;
                if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                    t.desc.state = ThreadState::Ready;
                    self.ck.enqueue_thread(slot);
                }
                Outcome::Stopped
            }
            Step::Exit(code) => {
                self.terminate_thread(cpu, slot, code);
                return Outcome::Stopped;
            }
        };

        // Attribute the consumed cycles to the owning kernel (§4.3).
        let delta = self.mpm.cpus[cpu].consumed - consumed_before;
        self.ck.account_consumption(slot, cpu, delta);

        // The handler may have unloaded the thread; its program state
        // stays in the store for the reload.
        if self.ck.thread_id(slot) != Some(tid) {
            if self.mpm.cpus[cpu].current == Some(slot as u32) {
                self.mpm.cpus[cpu].current = None;
            }
            return Outcome::Stopped;
        }
        outcome
    }

    fn do_trap(
        &mut self,
        cpu: usize,
        slot: u16,
        pc: crate::program::ProgId,
        tid: ObjId,
        no: u32,
        args: [u32; 4],
    ) -> Outcome {
        let Some(owner) = self.ck.begin_trap_forward(&mut self.mpm, cpu, slot) else {
            self.terminate_thread(cpu, slot, -1);
            return Outcome::Stopped;
        };
        let disp = self
            .call_kernel(owner.slot, cpu, |k, env| k.on_trap(env, tid, no, args))
            .unwrap_or(TrapDisposition::Exit);
        self.ck.end_forward(&mut self.mpm, cpu);
        match disp {
            TrapDisposition::Return(v) => {
                self.code.set_trap_ret(pc, v);
                Outcome::Continue
            }
            TrapDisposition::Block => {
                // The kernel parks the thread (it may also have unloaded
                // it); if still loaded and running, suspend it.
                if self.ck.thread_id(slot) == Some(tid) {
                    if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                        if matches!(t.desc.state, ThreadState::Running(_)) {
                            t.desc.state = ThreadState::Suspended;
                        }
                    }
                    self.ck.sched.remove(slot);
                }
                self.mpm.cpus[cpu].current = None;
                Outcome::Stopped
            }
            TrapDisposition::Exit => {
                self.terminate_thread(cpu, slot, no as i32);
                Outcome::Stopped
            }
        }
    }

    fn do_access(
        &mut self,
        cpu: usize,
        slot: u16,
        pc: crate::program::ProgId,
        vaddr: Vaddr,
        access: Access,
        op: AccessOp,
    ) -> Outcome {
        self.code.with_ctx(pc, |c| c.faulted = false);
        for _attempt in 0..MAX_FAULT_RETRIES {
            let Some(tid) = self.ck.thread_id(slot) else {
                self.mpm.cpus[cpu].current = None;
                return Outcome::Stopped;
            };
            let space = match self.ck.thread(tid) {
                Ok(t) => t.desc.space,
                Err(_) => return Outcome::Stopped,
            };
            let asid = CacheKernel::asid_of(space);
            let result = match self.ck.spaces.get_mut(space) {
                Some(s) => self.mpm.translate(cpu, asid, &mut s.pt, vaddr, access),
                None => {
                    // Address space vanished: fatal for the thread.
                    self.terminate_thread(cpu, slot, -2);
                    return Outcome::Stopped;
                }
            };
            match result {
                Ok(tr) => {
                    match &op {
                        AccessOp::ReadU32 => {
                            let v = self.mpm.mem.read_u32(tr.paddr).unwrap_or(0);
                            self.code.with_ctx(pc, |c| c.loaded = v);
                        }
                        AccessOp::WriteU32(v) => {
                            let _ = self.mpm.mem.write_u32(tr.paddr, *v);
                        }
                        AccessOp::ReadBytes(len) => {
                            let mut buf = vec![0u8; *len as usize];
                            let _ = self.mpm.mem.read(tr.paddr, &mut buf);
                            self.code.with_ctx(pc, |c| c.data = buf);
                        }
                        AccessOp::WriteBytes(bytes) => {
                            let _ = self.mpm.mem.write(tr.paddr, bytes);
                        }
                    }
                    // A store to a message-mode page raises an
                    // address-valued signal — or rings a device doorbell
                    // if the page belongs to a device region.
                    if access == Access::Write && tr.pte.has(Pte::MESSAGE) {
                        self.message_store(cpu, tr.paddr);
                    }
                    return Outcome::Continue;
                }
                Err(fault) => {
                    self.code.with_ctx(pc, |c| c.faulted = true);
                    match self.forward_fault(cpu, slot, tid, fault) {
                        Outcome::Continue => continue, // retry the access
                        Outcome::Stopped => return Outcome::Stopped,
                    }
                }
            }
        }
        // The handler kept "resolving" without fixing the fault.
        self.terminate_thread(cpu, slot, -3);
        Outcome::Stopped
    }

    /// A store hit a message-mode page: device doorbell or thread signal.
    fn message_store(&mut self, cpu: usize, paddr: hw::Paddr) {
        // Fiber-channel transmit region?
        let fiber_tx0 = self.mpm.fiber.tx_slot(0);
        let slots = self.mpm.fiber.slots();
        let tx_end = fiber_tx0.0 + slots * hw::PAGE_SIZE;
        if paddr.0 >= fiber_tx0.0 && paddr.0 < tx_end {
            let cost = self.mpm.config.cost.device_cmd;
            self.mpm.clock.charge(cost);
            self.mpm.cpus[cpu].consume(cost);
            if let Some(pkt) = self.mpm.fiber.transmit(&self.mpm.mem, paddr) {
                self.outbox.push(pkt);
            }
            return;
        }
        self.ck.raise_signal(&mut self.mpm, cpu, paddr);
    }

    fn forward_fault(&mut self, cpu: usize, slot: u16, tid: ObjId, fault: Fault) -> Outcome {
        let Some(owner) = self.ck.begin_fault_forward(&mut self.mpm, cpu, slot) else {
            self.terminate_thread(cpu, slot, -1);
            return Outcome::Stopped;
        };
        self.ck.resume_armed = false;
        let is_mapping_fault = fault.kind == FaultKind::Unmapped;
        let disp = self
            .call_kernel(owner.slot, cpu, |k, env| {
                if is_mapping_fault {
                    k.on_page_fault(env, tid, fault)
                } else {
                    k.on_exception(env, tid, fault)
                }
            })
            .unwrap_or(FaultDisposition::Kill);
        match disp {
            FaultDisposition::Resume => {
                // The combined load-and-resume call already paid the
                // return; otherwise charge the separate completion trap.
                if !self.ck.resume_armed {
                    self.ck.end_forward(&mut self.mpm, cpu);
                }
                self.ck.resume_armed = false;
                if self.ck.thread_id(slot) != Some(tid) {
                    self.mpm.cpus[cpu].current = None;
                    return Outcome::Stopped;
                }
                Outcome::Continue
            }
            FaultDisposition::Block => {
                if self.ck.thread_id(slot) == Some(tid) {
                    if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                        if matches!(t.desc.state, ThreadState::Running(_)) {
                            t.desc.state = ThreadState::Suspended;
                        }
                    }
                    self.ck.sched.remove(slot);
                }
                self.mpm.cpus[cpu].current = None;
                Outcome::Stopped
            }
            FaultDisposition::Kill => {
                if self.ck.thread_id(slot) == Some(tid) {
                    self.terminate_thread(cpu, slot, -11); // SIGSEGV flavor
                } else {
                    self.mpm.cpus[cpu].current = None;
                }
                Outcome::Stopped
            }
        }
    }

    /// Tear down a thread: notify its kernel, unload it, drop its program.
    pub fn terminate_thread(&mut self, cpu: usize, slot: u16, code: i32) {
        if let Some(tid) = self.ck.thread_id(slot) {
            let owner = self.ck.thread_owner(slot);
            let pc = self.ck.thread(tid).map(|t| t.desc.regs.pc).ok();
            if let Some(owner) = owner {
                self.call_kernel(owner.slot, cpu, |k, env| k.on_thread_exit(env, tid, code));
            }
            // The kernel may have already unloaded it in the callback.
            if self.ck.thread_id(slot) == Some(tid) {
                let _ = self.ck.do_unload_thread(tid, &mut self.mpm);
            }
            if let Some(pc) = pc {
                self.code.remove(pc);
            }
        }
        if self.mpm.cpus[cpu].current == Some(slot as u32) {
            self.mpm.cpus[cpu].current = None;
        }
    }
}

/// The operation to perform once an access translates.
enum AccessOp {
    ReadU32,
    WriteU32(u32),
    ReadBytes(u32),
    WriteBytes(Vec<u8>),
}

/// A cluster of MPMs connected by the fabric (Fig. 4).
pub struct Cluster {
    /// The per-node executives.
    pub nodes: Vec<Executive>,
    /// The interconnect.
    pub fabric: Fabric,
}

impl Cluster {
    /// Assemble a cluster from executives (their machine configs should
    /// carry distinct node indices).
    pub fn new(nodes: Vec<Executive>) -> Self {
        let fabric = Fabric::new(nodes.len());
        Cluster { nodes, fabric }
    }

    /// Run every node for `quanta`, then move fabric traffic. A failed
    /// (halted) MPM simply stops executing; the fabric drops its traffic
    /// (fault containment, §3).
    pub fn step(&mut self, quanta: usize) {
        for node in self.nodes.iter_mut() {
            node.run(quanta);
        }
        // Drain outboxes into the fabric.
        for node in self.nodes.iter_mut() {
            let halted = node.mpm.halted;
            for pkt in node.outbox.drain(..) {
                if !halted {
                    self.fabric.send(pkt);
                }
            }
        }
        // Deliver incoming traffic.
        for i in 0..self.nodes.len() {
            if self.fabric.is_failed(i) || self.nodes[i].mpm.halted {
                continue;
            }
            while let Some(pkt) = self.fabric.recv(i) {
                self.nodes[i].deliver_packet(pkt);
            }
        }
    }

    /// Halt a node (simulated MPM hardware failure) and stop its traffic.
    pub fn fail_node(&mut self, node: usize) {
        self.nodes[node].mpm.halt();
        self.fabric.fail_node(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appkernel::NullKernel;
    use crate::ck::CkConfig;
    use crate::objects::{KernelDesc, MemoryAccessArray, SpaceDesc};
    use crate::program::{Script, ThreadCtx};
    use hw::{MachineConfig, Paddr};

    fn exec() -> (Executive, ObjId) {
        let mut ck = CacheKernel::new(CkConfig::default());
        let mpm = Mpm::new(MachineConfig {
            phys_frames: 2048,
            l2_bytes: 256 * 1024,
            cpus: 2,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let mut ex = Executive::new(ck, mpm);
        ex.register_kernel(srm, Box::new(NullKernel));
        (ex, srm)
    }

    /// A kernel that resolves page faults by identity-mapping the page to
    /// a fixed frame region, using the optimized combined call.
    struct IdentityPager {
        me: ObjId,
        frame_base: u32,
        faults: usize,
    }
    impl AppKernel for IdentityPager {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_start(&mut self, _env: &mut Env, id: ObjId) {
            self.me = id;
        }
        fn on_page_fault(
            &mut self,
            env: &mut Env,
            thread: ObjId,
            fault: Fault,
        ) -> FaultDisposition {
            self.faults += 1;
            let space = env.ck.thread(thread).unwrap().desc.space;
            let frame = Paddr(self.frame_base + (fault.vaddr.vpn().0 % 64) * hw::PAGE_SIZE);
            env.ck
                .load_mapping_and_resume(
                    self.me,
                    space,
                    fault.vaddr.page_base(),
                    frame,
                    Pte::WRITABLE | Pte::CACHEABLE,
                    None,
                    None,
                    env.mpm,
                    env.cpu,
                )
                .unwrap();
            FaultDisposition::Resume
        }
        fn on_trap(
            &mut self,
            _env: &mut Env,
            _t: ObjId,
            no: u32,
            args: [u32; 4],
        ) -> TrapDisposition {
            TrapDisposition::Return(no + args[0])
        }
        fn name(&self) -> &str {
            "identity-pager"
        }
    }

    #[test]
    fn program_runs_with_demand_paging() {
        let (mut ex, srm) = exec();
        let pager = ex
            .ck
            .load_kernel(
                srm,
                KernelDesc {
                    memory_access: MemoryAccessArray::all(),
                    ..KernelDesc::default()
                },
                &mut ex.mpm,
            )
            .unwrap();
        ex.register_kernel(
            pager,
            Box::new(IdentityPager {
                me: pager,
                frame_base: 0x10_0000,
                faults: 0,
            }),
        );
        let sp = ex
            .ck
            .load_space(pager, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        let pc = ex.code.register(Box::new(Script::new(vec![
            Step::Store(Vaddr(0x4000), 42),
            Step::Load(Vaddr(0x4000)),
            Step::Trap {
                no: 7,
                args: [1, 0, 0, 0],
            },
            Step::Exit(0),
        ])));
        let t = ex
            .ck
            .load_thread(pager, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
            .unwrap();
        ex.run_until_idle(100);
        // The thread exited: unloaded, program removed.
        assert!(ex.ck.thread(t).is_err());
        assert_eq!(ex.code.len(), 0);
        assert_eq!(ex.ck.stats.faults_forwarded, 1, "one demand-paging fault");
        assert_eq!(ex.ck.stats.traps_forwarded, 1);
    }

    #[test]
    fn load_and_trap_results_reach_program() {
        let (mut ex, srm) = exec();
        let sp = ex
            .ck
            .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        // Pre-map the page so no fault occurs (NullKernel kills on fault).
        ex.ck
            .load_mapping(
                srm,
                sp,
                Vaddr(0x4000),
                Paddr(0x8000),
                Pte::WRITABLE | Pte::CACHEABLE,
                None,
                None,
                &mut ex.mpm,
            )
            .unwrap();
        let pc = ex.code.register(Box::new(crate::program::FnProgram({
            let mut stage = 0;
            move |ctx: &mut ThreadCtx| {
                stage += 1;
                match stage {
                    1 => Step::Store(Vaddr(0x4010), 0xfeed),
                    2 => Step::Load(Vaddr(0x4010)),
                    3 => {
                        assert_eq!(ctx.loaded, 0xfeed);
                        Step::Trap {
                            no: 100,
                            args: [23, 0, 0, 0],
                        }
                    }
                    4 => {
                        // NullKernel returns the trap number.
                        assert_eq!(ctx.trap_ret, 100);
                        Step::Exit(5)
                    }
                    _ => Step::Exit(5),
                }
            }
        })));
        ex.ck
            .load_thread(srm, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
            .unwrap();
        ex.run_until_idle(100);
        assert_eq!(ex.code.len(), 0, "program completed and was removed");
    }

    #[test]
    fn null_kernel_kills_faulting_thread() {
        let (mut ex, srm) = exec();
        let sp = ex
            .ck
            .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        let pc = ex
            .code
            .register(Box::new(Script::new(vec![Step::Load(Vaddr(0xdead_0000))])));
        let t = ex
            .ck
            .load_thread(srm, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
            .unwrap();
        ex.run_until_idle(50);
        assert!(ex.ck.thread(t).is_err(), "thread killed");
    }

    #[test]
    fn signal_ping_pong_between_threads() {
        let (mut ex, srm) = exec();
        // Two spaces sharing a message frame (Fig. 3).
        let frame = Paddr(0x20_0000);
        let sp_a = ex
            .ck
            .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        let sp_b = ex
            .ck
            .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();

        // Receiver thread: waits for one signal, records it, exits.
        let rx_pc = ex.code.register(Box::new(crate::program::FnProgram({
            let mut stage = 0;
            move |ctx: &mut ThreadCtx| {
                stage += 1;
                match stage {
                    1 => Step::WaitSignal,
                    2 => {
                        let sig = ctx.signal.expect("signal delivered");
                        assert_eq!(sig, Vaddr(0xb010));
                        Step::Exit(0)
                    }
                    _ => Step::Exit(0),
                }
            }
        })));
        let rx = ex
            .ck
            .load_thread(srm, ThreadDesc::new(sp_b, rx_pc, 12), false, &mut ex.mpm)
            .unwrap();
        // Receiver maps the frame in message mode with itself as the
        // signal thread.
        ex.ck
            .load_mapping(
                srm,
                sp_b,
                Vaddr(0xb000),
                frame,
                Pte::MESSAGE,
                Some(rx),
                None,
                &mut ex.mpm,
            )
            .unwrap();
        // Sender maps the frame writable + message mode.
        ex.ck
            .load_mapping(
                srm,
                sp_a,
                Vaddr(0xa000),
                frame,
                Pte::WRITABLE | Pte::MESSAGE | Pte::CACHEABLE,
                None,
                None,
                &mut ex.mpm,
            )
            .unwrap();
        let tx_pc = ex.code.register(Box::new(Script::new(vec![
            Step::Store(Vaddr(0xa010), 0x1234),
            Step::Exit(0),
        ])));
        ex.ck
            .load_thread(srm, ThreadDesc::new(sp_a, tx_pc, 10), false, &mut ex.mpm)
            .unwrap();

        ex.run_until_idle(100);
        assert_eq!(ex.code.len(), 0, "both programs finished");
        assert_eq!(ex.ck.stats.signals_slow + ex.ck.stats.signals_fast, 1);
        // The message data went through memory, untouched by the kernel.
        assert_eq!(ex.mpm.mem.read_u32(Paddr(0x20_0010)).unwrap(), 0x1234);
    }

    #[test]
    fn higher_priority_wakeup_preempts_within_slice() {
        let (mut ex, srm) = exec();
        let sp = ex
            .ck
            .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        // A low-priority spinner and a high-priority thread blocked on a
        // signal. When the signal arrives mid-slice, the high-priority
        // thread must run before the spinner's slice would have ended.
        let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let o1 = order.clone();
        let spin_pc = ex.code.register(Box::new(crate::program::FnProgram({
            let mut n = 0u32;
            move |_ctx: &mut ThreadCtx| {
                n += 1;
                o1.lock().unwrap().push("spin");
                if n > 400 {
                    Step::Exit(0)
                } else {
                    Step::Compute(10)
                }
            }
        })));
        ex.ck
            .load_thread(srm, ThreadDesc::new(sp, spin_pc, 5), false, &mut ex.mpm)
            .unwrap();
        let o2 = order.clone();
        let hi_pc = ex.code.register(Box::new(crate::program::FnProgram({
            let mut stage = 0;
            move |_ctx: &mut ThreadCtx| {
                stage += 1;
                if stage == 1 {
                    Step::WaitSignal
                } else {
                    o2.lock().unwrap().push("hi");
                    Step::Exit(0)
                }
            }
        })));
        let hi = ex
            .ck
            .load_thread(srm, ThreadDesc::new(sp, hi_pc, 25), false, &mut ex.mpm)
            .unwrap();
        ex.ck
            .load_mapping(
                srm,
                sp,
                Vaddr(0xa000),
                Paddr(0x9000),
                Pte::MESSAGE,
                Some(hi),
                None,
                &mut ex.mpm,
            )
            .unwrap();
        // Use a single-CPU machine so the spinner owns the only CPU.
        // (exec() gives two CPUs; the high thread parks first, so only
        // the spinner is runnable; CPU 1 idles.)
        ex.run(2);
        // Mid-run, raise the signal; within the same run call the high
        // thread must appear in the order soon after.
        ex.ck.raise_signal(&mut ex.mpm, 0, Paddr(0x9000));
        ex.run(3);
        let v = order.lock().unwrap().clone();
        let hi_pos = v.iter().position(|s| *s == "hi");
        assert!(hi_pos.is_some(), "high-priority thread ran: {v:?}");
        assert!(
            v.len() > hi_pos.unwrap(),
            "preemption happened before the spinner finished"
        );
        assert!(ex.ck.thread(hi).is_err(), "high thread completed");
    }

    #[test]
    fn quota_demotion_lets_other_kernel_run() {
        // A rogue compute-bound kernel with a small quota shares the MPM
        // with a modest kernel; after demotion the modest kernel's thread
        // gets the CPU even at lower nominal priority.
        let (mut ex, srm) = exec();
        let mk = |q: u8| KernelDesc {
            memory_access: MemoryAccessArray::all(),
            cpu_quota_pct: [q; crate::objects::MAX_CPUS],
            ..KernelDesc::default()
        };
        let rogue = ex.ck.load_kernel(srm, mk(10), &mut ex.mpm).unwrap();
        ex.register_kernel(rogue, Box::new(NullKernel));
        let sp = ex
            .ck
            .load_space(rogue, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        let pc = ex.code.register(Box::new(crate::program::FnProgram(
            move |_ctx: &mut ThreadCtx| Step::Compute(2_000),
        )));
        ex.ck
            .load_thread(rogue, ThreadDesc::new(sp, pc, 20), false, &mut ex.mpm)
            .unwrap();
        // Run enough periods for the EWMA to cross the quota.
        ex.run(200);
        assert!(ex.ck.kernel_demoted(rogue), "rogue kernel demoted");
        // Its thread now sits at idle priority.
        assert_eq!(ex.ck.effective_priority(0), 0);
    }
}
