//! Page-mapping operations (§2.1, §2.2): load, unload, query, and the
//! copy-on-write source lookup.
//!
//! Mappings are the fourth cached "object" kind. Loading one checks the
//! caller's memory access array, records a 16-byte physical-to-virtual
//! dependency record (plus optional signal-thread and COW-source records)
//! in the physical memory map, and installs the PTE; displacement goes
//! through the FIFO-with-second-chance reclaim in `reclaim.rs`.

use crate::caps::CapOp;
use crate::ck::CacheKernel;
use crate::error::{CkError, CkResult};
use crate::events::MappingState;
use crate::ids::ObjId;
use hw::{Access, Mpm, Paddr, Pte, Vaddr};

use crate::counters::STAT_MAPPING;

/// Result of a [`CacheKernel::transfer_mapping`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The page was remapped from the source space into the destination
    /// space: a true zero-copy handoff, no data moved.
    Remapped,
    /// The frame is mapped in more than one place, so moving it would
    /// silently yank it from the other holders: nothing was changed and
    /// the caller should fall back to copying the payload.
    MultiplyMapped,
}

impl CacheKernel {
    /// Load a page mapping into `space`. `flags` are [`Pte`] flag bits;
    /// `signal_thread` registers the page for memory-based messaging;
    /// `cow_source` records a deferred-copy source frame. The physical
    /// address and requested access are checked against the calling
    /// kernel's memory access array.
    #[allow(clippy::too_many_arguments)]
    pub fn load_mapping(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        paddr: Paddr,
        flags: u32,
        signal_thread: Option<ObjId>,
        cow_source: Option<Paddr>,
        mpm: &mut Mpm,
    ) -> CkResult<()> {
        // Rights: writable (even deferred) mappings need ReadWrite.
        let needed = if flags & Pte::WRITABLE != 0 {
            Access::Write
        } else {
            Access::Read
        };
        // Copy the verdicts out so the borrow of the kernel object ends
        // before the (mutating) capability-denial path runs.
        let (rights_ok, cow_ok, quota_ok) = {
            let k = self.kernel(caller)?;
            (
                k.desc.memory_access.rights_for(paddr).allows(needed),
                cow_source
                    .is_none_or(|src| k.desc.memory_access.rights_for(src).allows(Access::Read)),
                !(flags & Pte::LOCKED != 0 && k.locked_mappings >= k.desc.locked_quota.mappings),
            )
        };
        if !rights_ok {
            // A signal registration on a page outside the grant is a
            // distinct violation surface: the attacker is aiming at a
            // bystander's message page, not just at memory.
            let op = if signal_thread.is_some() {
                CapOp::SignalPage
            } else {
                CapOp::Map
            };
            return Err(self.cap_denied(caller, paddr, op));
        }
        if !cow_ok {
            let src = cow_source.expect("cow_ok is false only with a source");
            return Err(self.cap_denied(caller, src, CapOp::CowSource));
        }
        if !quota_ok {
            return Err(CkError::LockQuota);
        }
        {
            let s = self.space(space)?;
            if s.owner != caller {
                return Err(CkError::NotOwner(space));
            }
        }
        let sig_slot = match signal_thread {
            Some(tid) => {
                let t = self.thread(tid)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(tid));
                }
                Some(tid.slot)
            }
            None => None,
        };

        self.admit_load(
            caller,
            STAT_MAPPING,
            self.physmap.len(),
            self.physmap.capacity(),
        )?;

        // One trap, a couple of probes, one 16-byte record.
        self.charge_op(
            mpm,
            3 * mpm.config.cost.hash_probe + mpm.config.cost.copy_line,
        );

        // Replace any existing mapping at this page first.
        let asid = Self::asid_of(space);
        let vpn = vaddr.vpn();
        if self.space(space)?.pt.lookup(vpn).is_valid() {
            self.do_unload_mapping(space, vpn, mpm, true);
        }

        // Make room in the mapping descriptor pool: "loading of a new page
        // descriptor may cause another page descriptor to be written back
        // … to make space" (§2.1). Fails `Again` when only reservation-
        // protected bystanders remain, `CacheFull` when all pinned.
        while self.physmap.len() >= self.physmap.capacity() {
            self.reclaim_one_mapping(caller, mpm)?;
        }

        let handle = self
            .physmap
            .insert_p2v(paddr, vaddr, asid as u32)
            .ok_or(CkError::CacheFull)?;
        if let Some(slot) = sig_slot {
            self.physmap.attach_signal(handle, slot as u32);
        }
        if let Some(src) = cow_source {
            self.physmap.attach_cow(handle, src);
        }
        let pte = Pte::new(paddr.pfn(), flags & !(Pte::REFERENCED | Pte::MODIFIED));
        let space_gen = space.gen;
        self.space_mut(space)?.pt.insert(vpn, pte);
        self.space_mut(space)?.referenced = true;
        if flags & Pte::LOCKED != 0 {
            self.kernel_mut(caller)?.locked_mappings += 1;
        }
        self.mapping_fifo.push_back((space.slot, space_gen, vpn));
        self.stats.loads[STAT_MAPPING] += 1;
        self.note_loaded(caller, STAT_MAPPING);
        Ok(())
    }

    /// Explicitly unload the mappings covering `vaddr..vaddr+len`,
    /// returning their final states (with referenced/modified bits). Used
    /// by application kernels when reclaiming page frames (§2.1).
    ///
    /// Walks only the populated PTEs intersecting the range (O(populated)
    /// for sparse ranges) and, past a single page, defers all TLB and
    /// reverse-TLB invalidations into one batched shootdown round.
    pub fn unload_mapping_range(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        len: u32,
        mpm: &mut Mpm,
    ) -> CkResult<Vec<MappingState>> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        self.charge_op(mpm, 2 * mpm.config.cost.hash_probe);
        let first = vaddr.vpn();
        let last = Vaddr(
            vaddr
                .0
                .checked_add(len.saturating_sub(1))
                .ok_or(CkError::Invalid)?,
        )
        .vpn();
        if first == last {
            // Single page: probe it directly down the eager path — Table
            // 2's unload shape, no range walk.
            let mut out = Vec::new();
            if let Some(state) = self.do_unload_mapping(space, first, mpm, false) {
                out.push(state);
                self.stats.unloads[STAT_MAPPING] += 1;
            }
            return Ok(out);
        }
        let mut vpns = core::mem::take(&mut self.vpn_scratch);
        vpns.clear();
        if let Some(s) = self.spaces.get(space) {
            vpns.extend(s.pt.iter_range(first, last).map(|(v, _)| v));
        }
        let mut out = Vec::with_capacity(vpns.len());
        if vpns.len() == 1 {
            // One populated page in a wider span: still the eager path.
            if let Some(state) = self.do_unload_mapping(space, vpns[0], mpm, false) {
                out.push(state);
                self.stats.unloads[STAT_MAPPING] += 1;
            }
        } else if !vpns.is_empty() {
            let mut batch = self.take_shootdown_batch();
            for &vpn in &vpns {
                if let Some(state) =
                    self.unload_mapping_impl(space, vpn, mpm, false, Some(&mut batch))
                {
                    out.push(state);
                    self.stats.unloads[STAT_MAPPING] += 1;
                }
            }
            self.finish_shootdown(batch, mpm);
        }
        vpns.clear();
        self.vpn_scratch = vpns;
        Ok(out)
    }

    /// Move the page mapped at `src_vaddr` in `src_space` to `dst_vaddr`
    /// in `dst_space` — the zero-copy channel handoff (§2.2): instead of
    /// copying a message out of the sender's buffer, ownership of the
    /// page itself transfers to the receiver through the mapping
    /// machinery. The new mapping gets `flags` and an optional signal
    /// registration; the old one is torn down with its TLB/reverse-TLB
    /// invalidations riding one batched shootdown round.
    ///
    /// The move is only safe when the source holds the frame's *only*
    /// mapping; otherwise the transfer would silently yank the page from
    /// the other holders, and the call returns
    /// [`TransferOutcome::MultiplyMapped`] without changing anything so
    /// the caller can fall back to a copy.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_mapping(
        &mut self,
        caller: ObjId,
        src_space: ObjId,
        src_vaddr: Vaddr,
        dst_space: ObjId,
        dst_vaddr: Vaddr,
        flags: u32,
        signal_thread: Option<ObjId>,
        mpm: &mut Mpm,
    ) -> CkResult<TransferOutcome> {
        {
            let s = self.space(src_space)?;
            if s.owner != caller {
                return Err(CkError::NotOwner(src_space));
            }
        }
        let src_vpn = src_vaddr.vpn();
        if src_space == dst_space && src_vpn == dst_vaddr.vpn() {
            return Err(CkError::Invalid);
        }
        let src_pte = self.space(src_space)?.pt.lookup(src_vpn);
        if !src_pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        let paddr = src_pte.pfn().base();

        // One probe to count the frame's holders; a multiply-mapped frame
        // stays put and the caller copies instead.
        self.charge_op(mpm, mpm.config.cost.hash_probe);
        let mut holders = 0usize;
        self.physmap.visit_p2v(paddr, |_| holders += 1);
        if holders > 1 {
            return Ok(TransferOutcome::MultiplyMapped);
        }

        // Sole holder: tear the source mapping down first (no siblings,
        // so no consistency cascade fires), then install the destination
        // mapping. Teardown first also means the transient state is
        // "unmapped", never "aliased in two spaces".
        let src_flags = src_pte.flags();
        let src_sig = self
            .physmap
            .find_p2v_exact(
                paddr,
                Self::asid_of(src_space) as u32,
                src_vaddr.page_base(),
            )
            .and_then(|h| self.physmap.signal_of(h))
            .and_then(|slot| self.threads.id_of_slot(slot as u16));
        // With one holder the only CPU that can cache the stale
        // translation is the one the sender last ran on, and it is in the
        // send trap right now; the receiver cannot touch the destination
        // address before the delivery signal lands. So the teardown is a
        // local flush riding the trap, not an IPI broadcast — the saving
        // that makes a remap cheaper than copying a page-sized payload.
        let mut batch = self.take_shootdown_batch();
        self.unload_mapping_impl(src_space, src_vpn, mpm, false, Some(&mut batch));
        self.finish_shootdown_local(batch, mpm);
        self.stats.unloads[STAT_MAPPING] += 1;

        match self.load_mapping(
            caller,
            dst_space,
            dst_vaddr.page_base(),
            paddr,
            flags,
            signal_thread,
            None,
            mpm,
        ) {
            Ok(()) => {
                self.stats.mapping_transfers += 1;
                Ok(TransferOutcome::Remapped)
            }
            Err(e) => {
                // Best-effort restore of the source mapping so a shed or
                // rejected load doesn't strand the page unmapped.
                let _ = self.load_mapping(
                    caller,
                    src_space,
                    src_vaddr.page_base(),
                    paddr,
                    src_flags,
                    src_sig,
                    None,
                    mpm,
                );
                Err(e)
            }
        }
    }

    /// Query a mapping (query operations are deliberately few; this one
    /// supports fault handlers inspecting current state).
    pub fn query_mapping(
        &self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
    ) -> CkResult<MappingState> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        let pte = s.pt.lookup(vaddr.vpn());
        if !pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        Ok(MappingState {
            vaddr: vaddr.page_base(),
            paddr: pte.pfn().base(),
            flags: pte.flags(),
        })
    }

    /// The recorded copy-on-write source frame of a mapping, if any
    /// (§4.1: COW sources are dependency records in the physical memory
    /// map). Application kernels resolve a COW fault by copying from this
    /// frame into a private one.
    pub fn cow_source(&self, caller: ObjId, space: ObjId, vaddr: Vaddr) -> CkResult<Option<Paddr>> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        let pte = s.pt.lookup(vaddr.vpn());
        if !pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        let asid = Self::asid_of(space) as u32;
        Ok(self
            .physmap
            .find_p2v_exact(pte.pfn().base(), asid, vaddr.page_base())
            .and_then(|h| self.physmap.cow_source_of(h)))
    }
}
