//! Page-mapping operations (§2.1, §2.2): load, unload, query, and the
//! copy-on-write source lookup.
//!
//! Mappings are the fourth cached "object" kind. Loading one checks the
//! caller's memory access array, records a 16-byte physical-to-virtual
//! dependency record (plus optional signal-thread and COW-source records)
//! in the physical memory map, and installs the PTE; displacement goes
//! through the FIFO-with-second-chance reclaim in `reclaim.rs`.

use crate::ck::CacheKernel;
use crate::error::{CkError, CkResult};
use crate::events::MappingState;
use crate::ids::ObjId;
use hw::{Access, Mpm, Paddr, Pte, Vaddr};

use crate::counters::STAT_MAPPING;

impl CacheKernel {
    /// Load a page mapping into `space`. `flags` are [`Pte`] flag bits;
    /// `signal_thread` registers the page for memory-based messaging;
    /// `cow_source` records a deferred-copy source frame. The physical
    /// address and requested access are checked against the calling
    /// kernel's memory access array.
    #[allow(clippy::too_many_arguments)]
    pub fn load_mapping(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        paddr: Paddr,
        flags: u32,
        signal_thread: Option<ObjId>,
        cow_source: Option<Paddr>,
        mpm: &mut Mpm,
    ) -> CkResult<()> {
        let k = self.kernel(caller)?;
        // Rights: writable (even deferred) mappings need ReadWrite.
        let needed = if flags & Pte::WRITABLE != 0 {
            Access::Write
        } else {
            Access::Read
        };
        if !k.desc.memory_access.rights_for(paddr).allows(needed) {
            return Err(CkError::NoAccess(paddr));
        }
        if let Some(src) = cow_source {
            if !k.desc.memory_access.rights_for(src).allows(Access::Read) {
                return Err(CkError::NoAccess(src));
            }
        }
        if flags & Pte::LOCKED != 0 && k.locked_mappings >= k.desc.locked_quota.mappings {
            return Err(CkError::LockQuota);
        }
        {
            let s = self.space(space)?;
            if s.owner != caller {
                return Err(CkError::NotOwner(space));
            }
        }
        let sig_slot = match signal_thread {
            Some(tid) => {
                let t = self.thread(tid)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(tid));
                }
                Some(tid.slot)
            }
            None => None,
        };

        self.admit_load(
            caller,
            STAT_MAPPING,
            self.physmap.len(),
            self.physmap.capacity(),
        )?;

        // One trap, a couple of probes, one 16-byte record.
        self.charge_op(
            mpm,
            3 * mpm.config.cost.hash_probe + mpm.config.cost.copy_line,
        );

        // Replace any existing mapping at this page first.
        let asid = Self::asid_of(space);
        let vpn = vaddr.vpn();
        if self.space(space)?.pt.lookup(vpn).is_valid() {
            self.do_unload_mapping(space, vpn, mpm, true);
        }

        // Make room in the mapping descriptor pool: "loading of a new page
        // descriptor may cause another page descriptor to be written back
        // … to make space" (§2.1). Fails `Again` when only reservation-
        // protected bystanders remain, `CacheFull` when all pinned.
        while self.physmap.len() >= self.physmap.capacity() {
            self.reclaim_one_mapping(caller, mpm)?;
        }

        let handle = self
            .physmap
            .insert_p2v(paddr, vaddr, asid as u32)
            .ok_or(CkError::CacheFull)?;
        if let Some(slot) = sig_slot {
            self.physmap.attach_signal(handle, slot as u32);
        }
        if let Some(src) = cow_source {
            self.physmap.attach_cow(handle, src);
        }
        let pte = Pte::new(paddr.pfn(), flags & !(Pte::REFERENCED | Pte::MODIFIED));
        let space_gen = space.gen;
        self.space_mut(space)?.pt.insert(vpn, pte);
        self.space_mut(space)?.referenced = true;
        if flags & Pte::LOCKED != 0 {
            self.kernel_mut(caller)?.locked_mappings += 1;
        }
        self.mapping_fifo.push_back((space.slot, space_gen, vpn));
        self.stats.loads[STAT_MAPPING] += 1;
        self.note_loaded(caller, STAT_MAPPING);
        Ok(())
    }

    /// Explicitly unload the mappings covering `vaddr..vaddr+len`,
    /// returning their final states (with referenced/modified bits). Used
    /// by application kernels when reclaiming page frames (§2.1).
    ///
    /// Walks only the populated PTEs intersecting the range (O(populated)
    /// for sparse ranges) and, past a single page, defers all TLB and
    /// reverse-TLB invalidations into one batched shootdown round.
    pub fn unload_mapping_range(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        len: u32,
        mpm: &mut Mpm,
    ) -> CkResult<Vec<MappingState>> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        self.charge_op(mpm, 2 * mpm.config.cost.hash_probe);
        let first = vaddr.vpn();
        let last = Vaddr(
            vaddr
                .0
                .checked_add(len.saturating_sub(1))
                .ok_or(CkError::Invalid)?,
        )
        .vpn();
        if first == last {
            // Single page: probe it directly down the eager path — Table
            // 2's unload shape, no range walk.
            let mut out = Vec::new();
            if let Some(state) = self.do_unload_mapping(space, first, mpm, false) {
                out.push(state);
                self.stats.unloads[STAT_MAPPING] += 1;
            }
            return Ok(out);
        }
        let mut vpns = core::mem::take(&mut self.vpn_scratch);
        vpns.clear();
        if let Some(s) = self.spaces.get(space) {
            vpns.extend(s.pt.iter_range(first, last).map(|(v, _)| v));
        }
        let mut out = Vec::with_capacity(vpns.len());
        if vpns.len() == 1 {
            // One populated page in a wider span: still the eager path.
            if let Some(state) = self.do_unload_mapping(space, vpns[0], mpm, false) {
                out.push(state);
                self.stats.unloads[STAT_MAPPING] += 1;
            }
        } else if !vpns.is_empty() {
            let mut batch = self.take_shootdown_batch();
            for &vpn in &vpns {
                if let Some(state) =
                    self.unload_mapping_impl(space, vpn, mpm, false, Some(&mut batch))
                {
                    out.push(state);
                    self.stats.unloads[STAT_MAPPING] += 1;
                }
            }
            self.finish_shootdown(batch, mpm);
        }
        vpns.clear();
        self.vpn_scratch = vpns;
        Ok(out)
    }

    /// Query a mapping (query operations are deliberately few; this one
    /// supports fault handlers inspecting current state).
    pub fn query_mapping(
        &self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
    ) -> CkResult<MappingState> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        let pte = s.pt.lookup(vaddr.vpn());
        if !pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        Ok(MappingState {
            vaddr: vaddr.page_base(),
            paddr: pte.pfn().base(),
            flags: pte.flags(),
        })
    }

    /// The recorded copy-on-write source frame of a mapping, if any
    /// (§4.1: COW sources are dependency records in the physical memory
    /// map). Application kernels resolve a COW fault by copying from this
    /// frame into a private one.
    pub fn cow_source(&self, caller: ObjId, space: ObjId, vaddr: Vaddr) -> CkResult<Option<Paddr>> {
        let s = self.space(space)?;
        if s.owner != caller {
            return Err(CkError::NotOwner(space));
        }
        let pte = s.pt.lookup(vaddr.vpn());
        if !pte.is_valid() {
            return Err(CkError::NoMapping);
        }
        let asid = Self::asid_of(space) as u32;
        Ok(self
            .physmap
            .find_p2v_exact(pte.pfn().base(), asid, vaddr.page_base())
            .and_then(|h| self.physmap.cow_source_of(h)))
    }
}
