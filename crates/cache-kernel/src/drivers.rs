//! Cache Kernel device drivers (§2.2).
//!
//! "Devices that fit into the memory-based messaging model directly
//! require minimal driver code complexity of the Cache Kernel. … In
//! contrast, the Ethernet device requires a non-trivial Cache Kernel
//! driver to implement the memory-based messaging interface because the
//! Ethernet chip itself provides a conventional DMA interface."
//!
//! The fiber channel needs no driver at all beyond mapping its slot
//! regions (the executive's `message_store` doorbell). This module is
//! the *non-trivial* one: [`EtherDriver`] owns descriptor rings and
//! buffers in reserved frames, programs the MAC, keeps the receive ring
//! stocked, and converts completion events into address-valued signals
//! on the buffer pages — turning the DMA interface into memory-based
//! messaging.

use crate::ck::CacheKernel;
use crate::events::{DeviceSource, KernelEvent};
use hw::dev::ethernet::{read_desc, write_desc, EtherEvent, DESC_BYTES, F_OWN};
use hw::{Mpm, Packet, Paddr, PAGE_SIZE};

/// Ring sizes (power of two keeps index math trivial).
pub const RING_ENTRIES: u32 = 8;

/// Driver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EtherDriverStats {
    /// Frames transmitted.
    pub tx: u64,
    /// Frames received and signaled.
    pub rx_signaled: u64,
    /// Transmit attempts dropped because the ring was full.
    pub tx_ring_full: u64,
    /// Receive overruns reported by the MAC.
    pub rx_overruns: u64,
}

/// The Ethernet driver state inside the Cache Kernel.
pub struct EtherDriver {
    tx_ring: Paddr,
    rx_ring: Paddr,
    tx_buf: Paddr,
    rx_buf: Paddr,
    tx_tail: u32,
    tx_inflight: u32,
    /// Counters.
    pub stats: EtherDriverStats,
}

impl EtherDriver {
    /// Bytes of physical memory the driver needs for rings + buffers.
    pub fn footprint_frames() -> u32 {
        // 1 frame for both rings + RING_ENTRIES frames per direction.
        1 + 2 * RING_ENTRIES
    }

    /// Initialize the driver over `frames_base..`: lay out rings and
    /// buffers, program the MAC, and stock the receive ring.
    pub fn new(mpm: &mut Mpm, frames_base: u32) -> Self {
        let ring_frame = Paddr(frames_base * PAGE_SIZE);
        let tx_ring = ring_frame;
        let rx_ring = Paddr(ring_frame.0 + RING_ENTRIES * DESC_BYTES);
        let tx_buf = Paddr((frames_base + 1) * PAGE_SIZE);
        let rx_buf = Paddr((frames_base + 1 + RING_ENTRIES) * PAGE_SIZE);

        mpm.ether.set_tx_ring(tx_ring, RING_ENTRIES);
        mpm.ether.set_rx_ring(rx_ring, RING_ENTRIES);
        // Stock every receive descriptor with a buffer, owned by the MAC.
        for i in 0..RING_ENTRIES {
            write_desc(
                &mut mpm.mem,
                rx_ring,
                i,
                Paddr(rx_buf.0 + i * PAGE_SIZE),
                0,
                F_OWN,
            );
        }
        EtherDriver {
            tx_ring,
            rx_ring,
            tx_buf,
            rx_buf,
            tx_tail: 0,
            tx_inflight: 0,
            stats: EtherDriverStats::default(),
        }
    }

    /// Buffer page of receive slot `i` (application kernels map these
    /// with signal threads to receive packets).
    pub fn rx_buffer(&self, i: u32) -> Paddr {
        Paddr(self.rx_buf.0 + (i % RING_ENTRIES) * PAGE_SIZE)
    }

    /// Transmit a frame: copy it into the next transmit buffer, hand the
    /// descriptor to the MAC, ring the doorbell, and return the packets
    /// the MAC pushed toward the fabric.
    pub fn transmit(
        &mut self,
        mpm: &mut Mpm,
        dst: usize,
        channel: u32,
        payload: &[u8],
    ) -> Vec<Packet> {
        if self.tx_inflight >= RING_ENTRIES {
            self.stats.tx_ring_full += 1;
            return Vec::new();
        }
        let slot = self.tx_tail % RING_ENTRIES;
        self.tx_tail += 1;
        self.tx_inflight += 1;
        let buf = Paddr(self.tx_buf.0 + slot * PAGE_SIZE);
        // Simulated framing: [dst u32][channel u32][payload].
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(dst as u32).to_le_bytes());
        frame.extend_from_slice(&channel.to_le_bytes());
        frame.extend_from_slice(payload);
        let _ = mpm.mem.write(buf, &frame);
        write_desc(
            &mut mpm.mem,
            self.tx_ring,
            slot,
            buf,
            frame.len() as u16,
            F_OWN,
        );
        mpm.clock.charge(mpm.config.cost.device_cmd);
        let pkts = mpm.ether.kick_tx(&mut mpm.mem);
        self.stats.tx += pkts.len() as u64;
        pkts
    }

    /// Poll completion events: reclaim finished transmit descriptors and
    /// turn received frames into [`KernelEvent::DeviceInterrupt`]s on
    /// their buffer pages. The executive's event pump raises the
    /// address-valued signal — the memory-based-messaging adaptation.
    pub fn poll(&mut self, ck: &mut CacheKernel, mpm: &mut Mpm) -> u32 {
        let events = mpm.ether.take_events();
        let mut signaled = 0;
        for ev in events {
            match ev {
                EtherEvent::TxDone(_) => {
                    self.tx_inflight = self.tx_inflight.saturating_sub(1);
                }
                EtherEvent::RxDone { index, .. } => {
                    let buf = self.rx_buffer(index);
                    ck.emit(KernelEvent::DeviceInterrupt {
                        source: DeviceSource::EtherRx,
                        paddr: buf,
                    });
                    self.stats.rx_signaled += 1;
                    signaled += 1;
                    // Restock the descriptor for the MAC.
                    let (_, _flags) = read_desc(&mpm.mem, self.rx_ring, index);
                    write_desc(&mut mpm.mem, self.rx_ring, index, buf, 0, F_OWN);
                }
                EtherEvent::RxOverrun => {
                    self.stats.rx_overruns += 1;
                }
            }
        }
        signaled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::{CacheKernel, CkConfig};
    use crate::objects::{KernelDesc, MemoryAccessArray, SpaceDesc, ThreadDesc};
    use hw::{MachineConfig, Pte, Vaddr};

    fn setup() -> (CacheKernel, Mpm, crate::ids::ObjId, EtherDriver) {
        let mut ck = CacheKernel::new(CkConfig::default());
        let mut mpm = Mpm::new(MachineConfig {
            phys_frames: 1024,
            l2_bytes: 32 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let drv = EtherDriver::new(&mut mpm, 512);
        (ck, mpm, srm, drv)
    }

    /// What the executive's event pump does for device interrupts; these
    /// tests drive the driver without an executive.
    fn pump_interrupts(ck: &mut CacheKernel, mpm: &mut Mpm) {
        for ev in ck.drain_events() {
            if let KernelEvent::DeviceInterrupt { paddr, .. } = ev {
                ck.raise_signal(mpm, 0, paddr);
            }
        }
    }

    #[test]
    fn transmit_produces_fabric_packets() {
        let (_ck, mut mpm, _srm, mut drv) = setup();
        let pkts = drv.transmit(&mut mpm, 2, 9, b"frame one");
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].dst, 2);
        assert_eq!(pkts[0].channel, 9);
        assert_eq!(pkts[0].data, b"frame one");
        assert_eq!(drv.stats.tx, 1);
    }

    #[test]
    fn tx_ring_wraps_and_reclaims() {
        let (mut ck, mut mpm, _srm, mut drv) = setup();
        for i in 0..20u32 {
            let pkts = drv.transmit(&mut mpm, 1, 1, &i.to_le_bytes());
            assert_eq!(pkts.len(), 1, "descriptor reclaimed before reuse");
            drv.poll(&mut ck, &mut mpm); // reclaim TxDone
        }
        assert_eq!(drv.stats.tx, 20);
        assert_eq!(drv.stats.tx_ring_full, 0);
    }

    #[test]
    fn ring_full_drops_when_not_polled() {
        let (_ck, mut mpm, _srm, mut drv) = setup();
        // Without polling, in-flight counts accumulate (the MAC finished,
        // but the driver hasn't reclaimed) and the ring throttles.
        for i in 0..RING_ENTRIES + 3 {
            drv.transmit(&mut mpm, 1, 1, &i.to_le_bytes());
        }
        assert_eq!(drv.stats.tx_ring_full, 3);
    }

    #[test]
    fn receive_becomes_signal_on_buffer_page() {
        let (mut ck, mut mpm, srm, mut drv) = setup();
        // A receiver thread maps rx buffer 0 in message mode.
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0xe000_0000),
            drv.rx_buffer(0),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        // A frame arrives from the fabric.
        let pkt = Packet {
            src: 3,
            dst: 0,
            channel: 5,
            data: b"incoming".to_vec(),
        };
        mpm.ether.deliver(&mut mpm.mem, &pkt);
        let n = drv.poll(&mut ck, &mut mpm);
        assert_eq!(n, 1);
        assert_eq!(ck.stats.device_interrupts, 1);
        pump_interrupts(&mut ck, &mut mpm);
        assert_eq!(ck.take_signal(t.slot), Some(Vaddr(0xe000_0000)));
        // The data is in the mapped buffer, via DMA.
        let mut buf = vec![0u8; 8];
        mpm.mem.read(drv.rx_buffer(0), &mut buf).unwrap();
        assert_eq!(&buf, b"incoming");
        assert_eq!(drv.stats.rx_signaled, 1);
    }

    #[test]
    fn rx_ring_restocked_after_signal() {
        let (mut ck, mut mpm, _srm, mut drv) = setup();
        // Deliver more frames than the ring holds, polling between.
        for i in 0..RING_ENTRIES * 2 {
            let pkt = Packet {
                src: 1,
                dst: 0,
                channel: 5,
                data: vec![i as u8],
            };
            mpm.ether.deliver(&mut mpm.mem, &pkt);
            drv.poll(&mut ck, &mut mpm);
        }
        assert_eq!(drv.stats.rx_signaled as u32, RING_ENTRIES * 2);
        assert_eq!(drv.stats.rx_overruns, 0, "driver kept the ring stocked");
    }
}
