//! Generational object identifiers.
//!
//! "Each loaded object is identified by an object identifier, returned when
//! the object is loaded. … a new identifier is assigned each time an object
//! is loaded" (§2). Identifiers therefore name a *cache slot occupancy*,
//! not a persistent entity: if the object is written back and reloaded, the
//! old identifier goes stale and any operation using it fails, prompting the
//! application kernel to reload the parent object and retry.

/// The three kinds of first-class Cache Kernel objects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// An application kernel.
    Kernel,
    /// An address space.
    AddrSpace,
    /// A thread.
    Thread,
}

/// An identifier for a loaded Cache Kernel object.
///
/// Identifiers are only meaningful across the Cache Kernel interface;
/// application kernels keep their own stable names (e.g. UNIX pids) and
/// record the current `ObjId` alongside, replacing it on every reload.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId {
    /// Which object cache this id refers into.
    pub kind: ObjKind,
    /// Slot index within that cache.
    pub slot: u16,
    /// Generation stamp; must match the slot's current generation.
    pub gen: u32,
}

impl ObjId {
    /// Construct an id (used by the object caches when loading).
    pub fn new(kind: ObjKind, slot: u16, gen: u32) -> Self {
        ObjId { kind, slot, gen }
    }
}

impl core::fmt::Debug for ObjId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let k = match self.kind {
            ObjKind::Kernel => "K",
            ObjKind::AddrSpace => "A",
            ObjKind::Thread => "T",
        };
        write!(f, "{}#{}.g{}", k, self.slot, self.gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compare_by_all_fields() {
        let a = ObjId::new(ObjKind::Thread, 3, 7);
        let b = ObjId::new(ObjKind::Thread, 3, 7);
        let stale = ObjId::new(ObjKind::Thread, 3, 8);
        let other = ObjId::new(ObjKind::AddrSpace, 3, 7);
        assert_eq!(a, b);
        assert_ne!(a, stale);
        assert_ne!(a, other);
    }

    #[test]
    fn debug_format() {
        let a = ObjId::new(ObjKind::Kernel, 0, 1);
        assert_eq!(format!("{a:?}"), "K#0.g1");
    }
}
