//! Descriptors for the three cached object types.
//!
//! A *descriptor* (`…Desc`) is the state that crosses the Cache Kernel
//! interface: the application kernel constructs one to load an object and
//! receives one back on writeback (it is the "backing store" for the
//! object, §2). The in-cache representation (`…Obj`) wraps the descriptor
//! with Cache Kernel bookkeeping that never leaves the kernel.

use crate::ids::ObjId;
use hw::{Paddr, PageTable, Pfn, RegisterFile, Rights, Vaddr, PAGE_GROUPS_TOTAL};

/// Scheduling priority. Higher numbers are preferred; priority 0 is the
/// idle level that over-quota kernels' threads are demoted to (§4.3).
pub type Priority = u8;

/// Number of distinct priority levels.
pub const PRIORITY_LEVELS: usize = 32;
/// Highest legal priority.
pub const MAX_PRIORITY: Priority = (PRIORITY_LEVELS - 1) as Priority;
/// Idle level used for demoted threads.
pub const IDLE_PRIORITY: Priority = 0;

/// Maximum CPUs per MPM the quota table covers.
pub const MAX_CPUS: usize = 8;

/// The 2-bit-per-page-group memory access array of a kernel object: 2 KiB
/// covering the 4 GiB physical address space (§4.3).
#[derive(Clone)]
#[repr(C)]
pub struct MemoryAccessArray {
    bits: [u8; (PAGE_GROUPS_TOTAL as usize * 2) / 8],
}

impl Default for MemoryAccessArray {
    fn default() -> Self {
        MemoryAccessArray {
            bits: [0; (PAGE_GROUPS_TOTAL as usize * 2) / 8],
        }
    }
}

impl MemoryAccessArray {
    /// An array granting no access at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// An array granting read/write on all of physical memory (the first
    /// kernel boots with "full permissions on all physical resources", §3).
    pub fn all() -> Self {
        MemoryAccessArray {
            bits: [0b10101010; (PAGE_GROUPS_TOTAL as usize * 2) / 8],
        }
    }

    /// Rights recorded for page group `group`. A group index beyond the
    /// array (≥ [`PAGE_GROUPS_TOTAL`]) names no physical memory and
    /// reads as [`Rights::None`] — fail-closed, never an index panic.
    pub fn get(&self, group: u32) -> Rights {
        if group >= PAGE_GROUPS_TOTAL {
            return Rights::None;
        }
        let byte = (group / 4) as usize;
        let shift = (group % 4) * 2;
        Rights::from_bits((self.bits[byte] >> shift) & 0b11)
    }

    /// Set rights for page group `group`. An out-of-range group is a
    /// no-op (there is nothing to grant there; callers that care, like
    /// `modify_kernel_grant`, range-check first and report `Invalid`).
    pub fn set(&mut self, group: u32, rights: Rights) {
        if group >= PAGE_GROUPS_TOTAL {
            return;
        }
        let byte = (group / 4) as usize;
        let shift = (group % 4) * 2;
        self.bits[byte] &= !(0b11 << shift);
        self.bits[byte] |= (rights as u8) << shift;
    }

    /// Rights covering the page group of `paddr`.
    pub fn rights_for(&self, paddr: Paddr) -> Rights {
        self.get(paddr.group())
    }

    /// Rights covering the page group of frame `pfn`.
    pub fn rights_for_frame(&self, pfn: Pfn) -> Rights {
        self.get(pfn.group())
    }
}

/// Per-type quotas on objects a kernel may keep *locked* in the Cache
/// Kernel (locking is bounded so reclamation can always make progress).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct LockedQuota {
    /// Locked address spaces allowed.
    pub spaces: u16,
    /// Locked threads allowed.
    pub threads: u16,
    /// Locked page mappings allowed.
    pub mappings: u16,
}

impl Default for LockedQuota {
    fn default() -> Self {
        LockedQuota {
            spaces: 2,
            threads: 4,
            mappings: 64,
        }
    }
}

/// Per-type *reserved* descriptor slots (overload protection): while a
/// kernel holds at most this many loaded objects of a class, other
/// kernels' loads cannot displace them — the greedy load is shed with the
/// retryable [`CkError::Again`](crate::error::CkError) instead. Set by
/// the SRM via `set_kernel_reservation`, which checks that the sum of
/// reservations fits each cache. Defaults to zero: no reservation, and
/// victim selection pays nothing for the feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
pub struct ReservedSlots {
    /// Address-space slots reserved.
    pub spaces: u16,
    /// Thread slots reserved.
    pub threads: u16,
    /// Mapping descriptors reserved.
    pub mappings: u16,
}

/// Descriptor of an application kernel (§2.4): its handler entry points,
/// resource authorizations and memory access array.
#[derive(Clone)]
#[repr(C)]
pub struct KernelDesc {
    // (fields below; Debug is implemented manually to keep the 2 KiB
    // access array out of debug output)
    /// Physical pages the kernel may map, as 2-bit rights per page group.
    pub memory_access: MemoryAccessArray,
    /// Entry point of the kernel's page-fault handler (attribute of the
    /// kernel object, §2.1).
    pub fault_handler: Vaddr,
    /// Entry point of the kernel's trap handler.
    pub trap_handler: Vaddr,
    /// Entry point of the kernel's exception handler.
    pub exception_handler: Vaddr,
    /// Percentage of each processor the kernel is allowed to consume.
    pub cpu_quota_pct: [u8; MAX_CPUS],
    /// Highest priority the kernel may assign its threads.
    pub max_priority: Priority,
    /// How many objects of each type it may lock.
    pub locked_quota: LockedQuota,
}

impl Default for KernelDesc {
    fn default() -> Self {
        KernelDesc {
            memory_access: MemoryAccessArray::none(),
            fault_handler: Vaddr(0),
            trap_handler: Vaddr(0),
            exception_handler: Vaddr(0),
            cpu_quota_pct: [100; MAX_CPUS],
            max_priority: MAX_PRIORITY,
            locked_quota: LockedQuota::default(),
        }
    }
}

impl core::fmt::Debug for KernelDesc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KernelDesc")
            .field("fault_handler", &self.fault_handler)
            .field("trap_handler", &self.trap_handler)
            .field("max_priority", &self.max_priority)
            .field("cpu_quota_pct", &self.cpu_quota_pct)
            .field("locked_quota", &self.locked_quota)
            .finish_non_exhaustive()
    }
}

/// In-cache kernel object.
pub struct KernelObj {
    /// The descriptor loaded by (and written back to) the owning kernel.
    pub desc: KernelDesc,
    /// The kernel object that owns this one — normally the first kernel
    /// (SRM). The first kernel owns itself.
    pub owner: ObjId,
    /// Locked against writeback.
    pub locked: bool,
    /// Clock-algorithm reference bit.
    pub referenced: bool,
    /// Kernel exceeded its processor quota; its threads run at idle
    /// priority until usage decays (§4.3).
    pub demoted: bool,
    /// Count of locked objects held, checked against `desc.locked_quota`.
    pub locked_spaces: u16,
    /// Locked threads held.
    pub locked_threads: u16,
    /// Locked mappings held.
    pub locked_mappings: u16,
}

/// Descriptor of an address space. Loaded "with minimal state (currently,
/// just the lock bit)" (§2.1); the page mappings are loaded separately and
/// on demand.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C)]
pub struct SpaceDesc {
    /// Lock the space against writeback at load time.
    pub locked: bool,
}

/// In-cache address space object: the root of the space's page tables plus
/// bookkeeping. The page tables are "logically part of the address space
/// object" (§4.1).
pub struct SpaceObj {
    /// Owning application kernel.
    pub owner: ObjId,
    /// Locked against reclamation-driven writeback.
    pub locked: bool,
    /// Clock-algorithm reference bit.
    pub referenced: bool,
    /// Hardware page tables for this space.
    pub pt: PageTable,
}

/// Scheduling state of a cached thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ThreadState {
    /// Eligible to run, queued at its priority.
    #[default]
    Ready,
    /// Executing on the given CPU.
    Running(u8),
    /// Waiting for an address-valued signal ("a thread can also remain
    /// loaded … when it suspends itself by waiting on a signal so it is
    /// resumed more quickly", §2.3).
    WaitSignal,
    /// Suspended by its application kernel (e.g. while being examined
    /// under a debugger before reload).
    Suspended,
}

/// Descriptor of a thread (§2.3): "loaded with the values for all the
/// registers and the location of the kernel stack to be used by this
/// thread if it takes an exception". Other process state (signal masks,
/// open files) belongs to the application kernel alone.
#[derive(Clone, Debug)]
#[repr(C)]
pub struct ThreadDesc {
    /// Full register context.
    pub regs: RegisterFile,
    /// Address space the thread executes in (must be loaded).
    pub space: ObjId,
    /// Exception stack pointer supplied by the application kernel, used
    /// when the thread is forwarded to its kernel's handlers (Fig. 2).
    pub exception_sp: Vaddr,
    /// Scheduling priority.
    pub priority: Priority,
    /// Initial state (Ready, or WaitSignal for an on-demand signal thread).
    pub state: ThreadState,
}

impl ThreadDesc {
    /// A ready thread with `pc` as its program entry, running in `space`.
    pub fn new(space: ObjId, pc: u32, priority: Priority) -> Self {
        let regs = RegisterFile {
            pc,
            ..RegisterFile::default()
        };
        ThreadDesc {
            regs,
            space,
            exception_sp: Vaddr(0),
            priority,
            state: ThreadState::Ready,
        }
    }
}

/// In-cache thread object.
pub struct ThreadObj {
    /// The cached descriptor.
    pub desc: ThreadDesc,
    /// Owning application kernel.
    pub owner: ObjId,
    /// Locked against reclamation (real-time threads, scheduler threads).
    pub locked: bool,
    /// Clock-algorithm reference bit.
    pub referenced: bool,
    /// Pending address-valued signals; "while the thread is running in its
    /// signal function, additional signals are queued within the Cache
    /// Kernel" (§2.2).
    pub signal_queue: std::collections::VecDeque<Vaddr>,
    /// Thread is currently inside its signal function.
    pub in_signal: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjKind;

    #[test]
    fn access_array_is_2k() {
        assert_eq!(core::mem::size_of::<MemoryAccessArray>(), 2048);
    }

    #[test]
    fn access_array_get_set() {
        let mut a = MemoryAccessArray::none();
        assert_eq!(a.get(0), Rights::None);
        a.set(0, Rights::ReadWrite);
        a.set(1, Rights::Read);
        a.set(8191, Rights::ReadWrite);
        assert_eq!(a.get(0), Rights::ReadWrite);
        assert_eq!(a.get(1), Rights::Read);
        assert_eq!(a.get(2), Rights::None);
        assert_eq!(a.get(8191), Rights::ReadWrite);
        a.set(0, Rights::None);
        assert_eq!(a.get(0), Rights::None);
        assert_eq!(a.get(1), Rights::Read, "neighbors unaffected");
    }

    #[test]
    fn access_array_last_group_and_out_of_range() {
        let mut a = MemoryAccessArray::none();
        // The last valid group works normally.
        a.set(PAGE_GROUPS_TOTAL - 1, Rights::ReadWrite);
        assert_eq!(a.get(PAGE_GROUPS_TOTAL - 1), Rights::ReadWrite);
        // One past the end and far past the end: fail-closed reads,
        // no-op writes — never a panic.
        assert_eq!(a.get(PAGE_GROUPS_TOTAL), Rights::None);
        assert_eq!(a.get(u32::MAX), Rights::None);
        a.set(PAGE_GROUPS_TOTAL, Rights::ReadWrite);
        a.set(u32::MAX, Rights::ReadWrite);
        assert_eq!(a.get(PAGE_GROUPS_TOTAL), Rights::None);
        assert_eq!(
            a.get(PAGE_GROUPS_TOTAL - 1),
            Rights::ReadWrite,
            "last group untouched"
        );
    }

    #[test]
    fn rights_for_straddles_group_boundary() {
        let mut a = MemoryAccessArray::none();
        a.set(3, Rights::Read);
        a.set(4, Rights::ReadWrite);
        let boundary = 4 * hw::PAGE_GROUP_SIZE;
        // Last byte of group 3 vs first byte of group 4: adjacent
        // addresses, different verdicts.
        assert_eq!(a.rights_for(Paddr(boundary - 1)), Rights::Read);
        assert_eq!(a.rights_for(Paddr(boundary)), Rights::ReadWrite);
        // Frame-number form agrees at the same boundary.
        assert_eq!(
            a.rights_for_frame(Pfn(4 * hw::PAGE_GROUP_PAGES - 1)),
            Rights::Read
        );
        assert_eq!(
            a.rights_for_frame(Pfn(4 * hw::PAGE_GROUP_PAGES)),
            Rights::ReadWrite
        );
    }

    #[test]
    fn all_grants_everything() {
        let a = MemoryAccessArray::all();
        for g in [0u32, 17, 8191] {
            assert_eq!(a.get(g), Rights::ReadWrite);
        }
    }

    #[test]
    fn rights_for_addresses() {
        let mut a = MemoryAccessArray::none();
        a.set(1, Rights::ReadWrite); // group 1 = bytes 512K..1M
        assert_eq!(a.rights_for(Paddr(512 * 1024)), Rights::ReadWrite);
        assert_eq!(a.rights_for(Paddr(512 * 1024 - 1)), Rights::None);
        assert_eq!(a.rights_for_frame(Pfn(128)), Rights::ReadWrite);
        assert_eq!(a.rights_for_frame(Pfn(127)), Rights::None);
    }

    #[test]
    fn kernel_desc_size_is_table1_scale() {
        // Table 1 reports 2160 bytes per kernel descriptor; ours is the
        // 2 KiB access array plus handler/quota state — same scale.
        let sz = core::mem::size_of::<KernelDesc>();
        assert!(
            (2048..=2304).contains(&sz),
            "kernel descriptor is {sz} bytes"
        );
    }

    #[test]
    fn thread_desc_size_is_table1_scale() {
        // Table 1 reports 532 bytes; ours carries the same register file
        // plus ids — allow the same ballpark.
        let sz = core::mem::size_of::<ThreadDesc>();
        assert!((184..=532).contains(&sz), "thread descriptor is {sz} bytes");
    }

    #[test]
    fn thread_desc_new_sets_pc() {
        let t = ThreadDesc::new(ObjId::new(ObjKind::AddrSpace, 1, 1), 42, 5);
        assert_eq!(t.regs.pc, 42);
        assert_eq!(t.priority, 5);
        assert_eq!(t.state, ThreadState::Ready);
    }
}
