//! Batched address-valued signal delivery.
//!
//! `raise_signal` is the hottest Cache Kernel entry point, and Table 2's
//! shape depends on its single-signal cost staying put: one reverse-TLB
//! hit or one two-stage lookup per raise. But a pump round of a busy
//! executive raises *many* signals — a burst of stores to message pages,
//! a drained fan-out ring of cross-shard signals — and paying the
//! two-stage lookup and a separate arena access plus wakeup per raise is
//! the same per-object waste the shootdown batch (`shootdown.rs`)
//! eliminates for TLB rounds. A [`SignalBatch`] collects the raises of
//! one round and [`CacheKernel::finish_signal_batch`] delivers them
//! wholesale: **one** `signal_slow` two-stage lookup per unique page
//! (not per raise), one arena lookup and at most one wakeup per receiving
//! thread. A batch of one keeps the eager path — including the
//! reverse-TLB fast path — so single-signal latency is untouched.
//!
//! Delivery is observably identical to raising each signal eagerly: every
//! receiver's queue ends with the same signals in the same order (raises
//! are replayed in arrival order per thread), only the charged cycles and
//! the fast/slow counter split differ. `tests/prop_signal_batch.rs`
//! pins this equivalence over random signal storms.

use crate::ck::CacheKernel;
use crate::events::KernelEvent;
use crate::objects::ThreadState;
use hw::{Mpm, Paddr, Pfn, RtlbEntry, Vaddr};

/// Address-valued signals collected across one pump round, delivered as
/// one coalesced sweep. The Cache Kernel keeps one batch as reusable
/// scratch (like its [`ShootdownBatch`](crate::shootdown::ShootdownBatch)
/// sibling) so a steady stream of batched rounds allocates nothing.
#[derive(Debug, Default)]
pub struct SignalBatch {
    /// The raised physical addresses, in arrival order.
    raises: Vec<Paddr>,
    // Flush-time working storage, reused across rounds.
    pages: Vec<Pfn>,
    receivers: Vec<(u32, Vaddr)>,
    segs: Vec<(u32, u32)>,
    page_raises: Vec<u32>,
    deliveries: Vec<(u16, Vaddr)>,
}

impl SignalBatch {
    /// Record one raised signal.
    pub fn add(&mut self, paddr: Paddr) {
        self.raises.push(paddr);
    }

    /// Raises collected so far.
    pub fn len(&self) -> usize {
        self.raises.len()
    }

    /// Whether the batch holds no raises.
    pub fn is_empty(&self) -> bool {
        self.raises.is_empty()
    }
}

impl Drop for SignalBatch {
    /// A batch must go back through [`CacheKernel::finish_signal_batch`]:
    /// dropping one with queued raises silently loses signals. Debug
    /// builds abort early-return paths that lose a batch; release builds
    /// keep going (lost signals degrade, they don't corrupt).
    fn drop(&mut self) {
        debug_assert!(
            std::thread::panicking() || self.raises.is_empty(),
            "SignalBatch dropped with {} raises queued; pass it to finish_signal_batch",
            self.raises.len(),
        );
    }
}

impl CacheKernel {
    /// Borrow the reusable scratch batch for one pump round of signal
    /// raises. Pair with [`CacheKernel::finish_signal_batch`], which
    /// returns it. A nested take just yields a fresh empty batch.
    pub fn take_signal_batch(&mut self) -> SignalBatch {
        core::mem::take(&mut self.sigbatch_scratch)
    }

    /// Deliver everything `batch` collected, then return the (cleared)
    /// batch to the scratch slot. Returns the number of raises that
    /// reached at least one receiver.
    ///
    /// An empty batch costs nothing and a batch of one takes the eager
    /// [`raise_signal`](CacheKernel::raise_signal) path unchanged —
    /// reverse-TLB fast path included — so Table 2's single-signal cost
    /// is preserved. Two or more raises coalesce: one `signal_slow`
    /// two-stage lookup is charged per *unique page* in the batch, and
    /// each receiving thread is touched once (one arena lookup, all its
    /// signals queued, at most one wakeup) regardless of how many raises
    /// it receives.
    pub fn finish_signal_batch(
        &mut self,
        mut batch: SignalBatch,
        mpm: &mut Mpm,
        cpu: usize,
    ) -> usize {
        if batch.raises.is_empty() {
            self.sigbatch_scratch = batch;
            return 0;
        }
        if batch.raises.len() == 1 {
            let paddr = batch.raises[0];
            batch.raises.clear();
            self.sigbatch_scratch = batch;
            return self.raise_signal(mpm, cpu, paddr).receivers();
        }

        // One two-stage lookup per unique page, charged up front the way
        // the eager slow path charges before its lookup.
        batch.pages.clear();
        batch.pages.extend(batch.raises.iter().map(|p| p.pfn()));
        batch.pages.sort_unstable();
        batch.pages.dedup();
        let signal_slow = mpm.config.cost.signal_slow;
        let cost = signal_slow * batch.pages.len() as u64;
        mpm.clock.charge(cost);
        mpm.cpus[cpu].consume(cost);

        // Resolve each page's receiver list once, under the §4.2
        // optimistic version check, into one flat segment buffer.
        batch.receivers.clear();
        batch.segs.clear();
        for &pfn in &batch.pages {
            let start = batch.receivers.len();
            loop {
                batch.receivers.truncate(start);
                let version = self.physmap.version();
                self.physmap
                    .visit_signals(pfn.base(), |thread, _asid, vaddr| {
                        batch.receivers.push((thread, vaddr));
                    });
                if self.physmap.version() == version {
                    break;
                }
                // Map changed concurrently: retry this page's lookup.
            }
            let len = batch.receivers.len() - start;
            batch.segs.push((start as u32, len as u32));
            // A sole receiver keeps the reverse-TLB entry useful, exactly
            // as the eager slow path refills it.
            if len == 1 {
                let (thread, vaddr) = batch.receivers[start];
                mpm.cpus[cpu].rtlb.insert(pfn, RtlbEntry { vaddr, thread });
            }
        }

        // Replay the raises in arrival order against the resolved pages,
        // expanding each into its per-receiver deliveries. The stable
        // sort then groups deliveries by thread while preserving each
        // thread's arrival order — the property the equivalence test
        // pins.
        batch.page_raises.clear();
        batch.page_raises.resize(batch.pages.len(), 0);
        batch.deliveries.clear();
        let mut delivered_raises = 0u64;
        for &raise in &batch.raises {
            let idx = batch
                .pages
                .binary_search(&raise.pfn())
                .expect("raised page is in the deduped page list");
            let (start, len) = batch.segs[idx];
            if len == 0 {
                continue;
            }
            delivered_raises += 1;
            batch.page_raises[idx] += 1;
            for &(thread, vbase) in &batch.receivers[start as usize..(start + len) as usize] {
                batch
                    .deliveries
                    .push((thread as u16, Vaddr(vbase.0 | raise.offset())));
            }
        }
        batch.deliveries.sort_by_key(|&(slot, _)| slot);

        // One arena lookup and at most one wakeup per receiving thread.
        let bound = self.config.signal_queue_bound;
        let mut dropped = 0u64;
        let mut i = 0;
        while i < batch.deliveries.len() {
            let slot = batch.deliveries[i].0;
            let mut j = i + 1;
            while j < batch.deliveries.len() && batch.deliveries[j].0 == slot {
                j += 1;
            }
            let mut wake = false;
            if let Some(t) = self.threads.get_slot_mut(slot) {
                let mut pushed = 0usize;
                for &(_, va) in &batch.deliveries[i..j] {
                    if bound != 0 && t.signal_queue.len() >= bound {
                        dropped += 1;
                    } else {
                        t.signal_queue.push_back(va);
                        pushed += 1;
                    }
                }
                if pushed > 0 && t.desc.state == ThreadState::WaitSignal {
                    t.desc.state = ThreadState::Ready;
                    wake = true;
                }
            }
            if wake {
                self.enqueue_thread(slot);
            }
            i = j;
        }

        self.stats.signal_batches += 1;
        self.stats.signals_batched += delivered_raises;
        self.stats.signal_batch_pages += batch.pages.len() as u64;
        self.stats.signals_dropped += dropped;
        // One traced event per unique page with receivers, carrying the
        // total deliveries it produced; with tracing off, one slow-path
        // tick per such page (= the two-stage lookups actually performed
        // for live pages, matching what the eager gate counts).
        for (idx, &pfn) in batch.pages.iter().enumerate() {
            let (_, len) = batch.segs[idx];
            if len == 0 {
                continue;
            }
            let receivers = len as usize * batch.page_raises[idx] as usize;
            if self.signal_events {
                self.emit(KernelEvent::Signal {
                    paddr: pfn.base(),
                    receivers,
                    fast: false,
                });
            } else {
                self.stats.signals_slow += 1;
            }
        }

        batch.raises.clear();
        self.sigbatch_scratch = batch;
        delivered_raises as usize
    }

    /// Raise a signal locally and, in a sharded machine, export it to
    /// every other shard as a [`ShardMsg::Signal`] — the §2.2 fan-out
    /// case where one busy message page has registered waiters on many
    /// CPUs. The receiving shards drain these off the fan-out ring and
    /// deliver them through one batched sweep per pump round.
    ///
    /// [`ShardMsg::Signal`]: crate::shardmsg::ShardMsg
    pub fn broadcast_signal(
        &mut self,
        mpm: &mut Mpm,
        cpu: usize,
        paddr: Paddr,
    ) -> crate::msg::SignalOutcome {
        let out = self.raise_signal(mpm, cpu, paddr);
        if self.config.shard_fanout >= 2 {
            self.shard_exports.push(crate::shardmsg::ShardExport {
                dst: crate::shardmsg::ShardDst::All,
                msg: crate::shardmsg::ShardMsg::Signal { paddr },
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ck::{CacheKernel, CkConfig};
    use crate::msg::SignalOutcome;
    use crate::objects::*;
    use hw::{MachineConfig, Mpm, Paddr, Pte, Vaddr};

    fn setup(config: CkConfig) -> (CacheKernel, Mpm, crate::ids::ObjId) {
        let mut ck = CacheKernel::new(CkConfig {
            kernel_slots: 4,
            space_slots: 8,
            thread_slots: 16,
            mapping_capacity: 64,
            ..config
        });
        let mpm = Mpm::new(MachineConfig {
            phys_frames: 1024,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        (ck, mpm, srm)
    }

    fn map_receiver(
        ck: &mut CacheKernel,
        mpm: &mut Mpm,
        srm: crate::ids::ObjId,
        frame: Paddr,
        va: Vaddr,
    ) -> crate::ids::ObjId {
        let sp = ck.load_space(srm, SpaceDesc::default(), mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, mpm)
            .unwrap();
        ck.load_mapping(srm, sp, va, frame, Pte::MESSAGE, Some(t), None, mpm)
            .unwrap();
        t
    }

    #[test]
    fn batch_of_one_stays_eager() {
        let (mut ck, mut mpm, srm) = setup(CkConfig::default());
        let t = map_receiver(&mut ck, &mut mpm, srm, Paddr(0x9000), Vaddr(0xa000));
        // Warm the reverse TLB, then check a 1-raise batch takes the
        // fast path (no batch counters move).
        ck.raise_signal(&mut mpm, 0, Paddr(0x9000));
        let mut b = ck.take_signal_batch();
        b.add(Paddr(0x9040));
        let delivered = ck.finish_signal_batch(b, &mut mpm, 0);
        assert_eq!(delivered, 1);
        assert_eq!(ck.stats.signal_batches, 0);
        ck.drain_events();
        assert_eq!(ck.stats.signals_fast, 1); // the second raise
        assert_eq!(ck.pending_signals(t.slot), 2);
    }

    #[test]
    fn batch_charges_one_lookup_per_unique_page() {
        let (mut ck, mut mpm, srm) = setup(CkConfig::default());
        let t = map_receiver(&mut ck, &mut mpm, srm, Paddr(0x9000), Vaddr(0xa000));
        let mut b = ck.take_signal_batch();
        // Five raises on one page, two on another (unmapped).
        for off in [0u32, 4, 8, 12, 16] {
            b.add(Paddr(0x9000 + off));
        }
        b.add(Paddr(0x5000));
        b.add(Paddr(0x5004));
        let cycles_before = mpm.clock.cycles();
        let delivered = ck.finish_signal_batch(b, &mut mpm, 0);
        let charged = mpm.clock.cycles() - cycles_before;
        assert_eq!(delivered, 5);
        // Two unique pages → two slow lookups, not seven.
        assert_eq!(charged, 2 * mpm.config.cost.signal_slow);
        assert_eq!(ck.stats.signal_batches, 1);
        assert_eq!(ck.stats.signals_batched, 5);
        assert_eq!(ck.stats.signal_batch_pages, 2);
        // Queue contents match eager delivery in arrival order.
        let got: Vec<_> = std::iter::from_fn(|| ck.take_signal(t.slot)).collect();
        assert_eq!(
            got,
            vec![
                Vaddr(0xa000),
                Vaddr(0xa004),
                Vaddr(0xa008),
                Vaddr(0xa00c),
                Vaddr(0xa010)
            ]
        );
    }

    #[test]
    fn batch_wakes_each_receiver_once() {
        let (mut ck, mut mpm, srm) = setup(CkConfig::default());
        let frame = Paddr(0x9000);
        let mut threads = Vec::new();
        for i in 0..3u32 {
            let t = map_receiver(&mut ck, &mut mpm, srm, frame, Vaddr(0xa000 + i * 0x1000));
            assert!(!ck.wait_signal(t.slot));
            threads.push(t);
        }
        assert_eq!(ck.sched.ready_count(), 0);
        let mut b = ck.take_signal_batch();
        b.add(Paddr(0x9010));
        b.add(Paddr(0x9020));
        ck.finish_signal_batch(b, &mut mpm, 0);
        // Each thread woke exactly once and holds both signals.
        assert_eq!(ck.sched.ready_count(), 3);
        for t in threads {
            assert_eq!(ck.pending_signals(t.slot), 2);
        }
    }

    #[test]
    fn bounded_queue_drops_are_counted() {
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            signal_queue_bound: 2,
            ..CkConfig::default()
        });
        let t = map_receiver(&mut ck, &mut mpm, srm, Paddr(0x9000), Vaddr(0xa000));
        let mut b = ck.take_signal_batch();
        for off in 0..5u32 {
            b.add(Paddr(0x9000 + off * 4));
        }
        ck.finish_signal_batch(b, &mut mpm, 0);
        assert_eq!(ck.pending_signals(t.slot), 2);
        assert_eq!(ck.stats.signals_dropped, 3);
        // The eager paths respect the same bound (the batch refilled the
        // reverse TLB for the sole receiver, so this is the fast path).
        assert_eq!(
            ck.raise_signal(&mut mpm, 0, Paddr(0x9000)),
            SignalOutcome::Fast(1)
        );
        assert_eq!(ck.pending_signals(t.slot), 2);
        assert_eq!(ck.stats.signals_dropped, 4);
    }

    #[test]
    fn broadcast_exports_to_other_shards() {
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            shard_fanout: 4,
            ..CkConfig::default()
        });
        let t = map_receiver(&mut ck, &mut mpm, srm, Paddr(0x9000), Vaddr(0xa000));
        let out = ck.broadcast_signal(&mut mpm, 0, Paddr(0x9010));
        assert_eq!(out, SignalOutcome::Slow(1));
        assert_eq!(ck.pending_signals(t.slot), 1);
        assert_eq!(ck.shard_exports.len(), 1);
        assert!(matches!(
            ck.shard_exports[0].msg,
            crate::shardmsg::ShardMsg::Signal { paddr } if paddr == Paddr(0x9010)
        ));
    }
}
