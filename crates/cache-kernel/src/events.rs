//! The kernel event pipeline: types and the per-executive queue.
//!
//! Instead of reentrantly mutating the executive, the fault path
//! (`fault.rs`), messaging (`msg.rs`), reclamation (`reclaim.rs`) and
//! device polling (`drivers.rs`) *emit* [`KernelEvent`]s into a single
//! ordered queue held by the [`CacheKernel`]. Each executive drains its
//! kernel's queue in emission order and performs the application-kernel
//! deliveries (`exec/events.rs`); the queue is the one place counter
//! ticks happen ([`CacheKernel::emit`] → [`Counters::tick`]).
//!
//! [`Counters::tick`]: crate::counters::Counters

use crate::ck::CacheKernel;
use crate::ids::ObjId;
use crate::objects::{KernelDesc, ThreadDesc};
use hw::{Fault, Paddr, Vaddr};

/// Which device raised an interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceSource {
    /// The interval clock's tick page refresh.
    Clock,
    /// An Ethernet receive completion (DMA landed in a ring buffer).
    EtherRx,
    /// A fiber-channel reception-slot arrival.
    Fiber,
    /// An injected device error (fault-plan testing): the device raised
    /// its error line instead of a completion.
    Error,
}

/// One event flowing through the per-executive pipeline.
#[derive(Clone, Debug)]
pub enum KernelEvent {
    /// A hardware fault is being forwarded to the owning application
    /// kernel (Fig. 2 steps 1–2).
    FaultForward {
        /// The application kernel to deliver to.
        owner: ObjId,
        /// The faulting thread.
        thread: ObjId,
        /// CPU the fault was taken on.
        cpu: usize,
        /// The fault record.
        fault: Fault,
    },
    /// A thread's trap ("system call") is being forwarded to its
    /// application kernel (§2.3).
    TrapForward {
        /// The application kernel to deliver to.
        owner: ObjId,
        /// The trapping thread.
        thread: ObjId,
        /// CPU the trap was taken on.
        cpu: usize,
        /// Trap number.
        no: u32,
        /// Trap arguments.
        args: [u32; 4],
    },
    /// Object state displaced from a cache, owed to its application
    /// kernel over the writeback channel.
    Writeback(Writeback),
    /// An address-valued signal was delivered (§2.2). Thread wakeup is
    /// synchronous in the messaging layer; this event carries the fact
    /// into the ordered pipeline for counters and tracing.
    Signal {
        /// The signalled physical address.
        paddr: Paddr,
        /// How many threads received it.
        receivers: usize,
        /// Whether the reverse-TLB fast path served it.
        fast: bool,
    },
    /// A device raised an interrupt; the executive turns it into the
    /// address-valued signal and (for the clock) the `on_tick` hooks.
    DeviceInterrupt {
        /// Which device.
        source: DeviceSource,
        /// Page to signal.
        paddr: Paddr,
    },
    /// A fabric packet arrived for local delivery; the executive routes
    /// it to the channel's owning kernel.
    PacketArrived {
        /// Sending node.
        src: usize,
        /// Network channel.
        channel: u32,
        /// Payload.
        data: Vec<u8>,
    },
    /// A batched TLB/reverse-TLB shootdown round was issued for a
    /// compound operation (range unload, space/thread/kernel teardown,
    /// multi-mapping consistency flush): one cross-CPU round covering
    /// every collected invalidation instead of one round per page.
    Shootdown {
        /// Page flushes folded into the round (pre-coalescing).
        pages: u32,
        /// Distinct reverse-TLB frames invalidated.
        frames: u32,
        /// Address spaces coalesced to wholesale TLB flushes.
        asids: u32,
    },
    /// An accounting period elapsed; quota enforcement runs (§4.3).
    AccountingPeriodEnd {
        /// Period length in cycles.
        period: u64,
    },
    /// An application kernel was declared dead (crash or missed
    /// heartbeats). From this point its writebacks are redirected to the
    /// first kernel and its objects await reclamation.
    KernelFailed {
        /// The dead kernel.
        kernel: ObjId,
    },
    /// A dead kernel's cached objects were fully reclaimed; the slot is
    /// clean and the SRM may restart it from written-back state.
    KernelRecovered {
        /// The recovered (now stale) kernel identifier.
        kernel: ObjId,
        /// Orphaned objects swept (threads + spaces + mappings).
        orphans: u32,
    },
    /// A (kernel, object class) pair's displacement→reload interval
    /// collapsed below the configured window `thrash_threshold` times in
    /// a row: the kernel's working set no longer fits its cache share and
    /// it is reloading objects it just displaced. The offender is
    /// penalized in clock-hand victim selection until the penalty
    /// expires; the event informs the SRM / tracing.
    ThrashDetected {
        /// The thrashing application kernel.
        kernel: ObjId,
        /// Stats-array class index (0 = kernel, 1 = space, 2 = thread,
        /// 3 = mapping).
        class: usize,
        /// Fast reloads observed inside the window when the detector
        /// fired.
        fast_reloads: u32,
    },
    /// A thread terminated; its kernel is notified and the thread is
    /// unloaded.
    ThreadExit {
        /// The application kernel to notify.
        owner: ObjId,
        /// The exiting thread.
        thread: ObjId,
        /// Exit code.
        code: i32,
        /// CPU it last ran on.
        cpu: usize,
    },
    /// Cluster membership changed (node loss, rejoin, epoch adoption).
    /// Fanned out to every registered kernel so DSM directories and
    /// schedulers can react in pipeline order.
    Cluster(ClusterEvent),
    /// Capability enforcement (`CkConfig::caps_enforce`) denied an
    /// operation: the named kernel tried to reach a physical page,
    /// writeback target or grant outside its authorized scope. The
    /// caller received [`CkError::CapDenied`](crate::error::CkError);
    /// this event carries the violation into the ordered pipeline for
    /// counting and tracing — informational to the executive, never a
    /// delivery action and never a panic.
    CapViolation {
        /// The violating kernel.
        kernel: ObjId,
        /// The physical page the violation anchors to.
        paddr: Paddr,
        /// Which boundary surface was violated.
        op: crate::caps::CapOp,
    },
}

/// A cluster membership transition observed by the local SRM's membership
/// protocol and broadcast through the event pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A peer node was declared dead or unreachable (suspicion fired, or
    /// this side of a partition lost its quorum view of the peer).
    NodeDown {
        /// The lost node.
        node: usize,
        /// Membership epoch in force after the transition.
        epoch: u64,
        /// Whether the declaring side still holds a strict majority of
        /// the configured cluster *after* the whole batch of suspicions
        /// was evaluated. Only a quorum-backed declaration is allowed to
        /// re-home the dead node's DSM lines; consumers must not
        /// re-derive this from their own (event-at-a-time) mirrors.
        quorum: bool,
    },
    /// A previously-dead or partitioned peer is reachable again.
    NodeRejoined {
        /// The returning node.
        node: usize,
        /// Membership epoch in force after the transition.
        epoch: u64,
    },
    /// The membership epoch advanced — either a local majority-side bump
    /// or adoption of a higher epoch heard from a peer.
    EpochChanged {
        /// The new epoch.
        epoch: u64,
        /// Peer the epoch was adopted from, `None` for a local bump.
        adopted_from: Option<usize>,
    },
    /// A peer crossed (or recrossed) the *suspect-slow* line: it is
    /// answering, but late. No epoch is minted and nothing is re-homed —
    /// consumers should steer load away while `slow` and reintegrate on
    /// the clearing edge. Slow is a reversible advisory state below
    /// suspect-dead, never a liveness verdict.
    NodeSlow {
        /// The straggling peer.
        node: usize,
        /// `true` on entry to suspect-slow, `false` when it clears.
        slow: bool,
    },
}

impl KernelEvent {
    /// A stable, compact description for event traces. Deterministic for
    /// identical runs (no addresses, no wall-clock, payloads by length).
    pub fn describe(&self) -> String {
        match self {
            KernelEvent::FaultForward {
                owner,
                thread,
                cpu,
                fault,
            } => format!(
                "fault owner={owner:?} thread={thread:?} cpu={cpu} kind={:?} va={:#x}",
                fault.kind, fault.vaddr.0
            ),
            KernelEvent::TrapForward {
                owner,
                thread,
                cpu,
                no,
                ..
            } => format!("trap owner={owner:?} thread={thread:?} cpu={cpu} no={no}"),
            KernelEvent::Writeback(wb) => format!("writeback {wb:?}"),
            KernelEvent::Signal {
                paddr,
                receivers,
                fast,
            } => format!("signal pa={:#x} rx={receivers} fast={fast}", paddr.0),
            KernelEvent::DeviceInterrupt { source, paddr } => {
                format!("irq {source:?} pa={:#x}", paddr.0)
            }
            KernelEvent::PacketArrived { src, channel, data } => {
                format!("packet src={src} ch={channel} len={}", data.len())
            }
            KernelEvent::Shootdown {
                pages,
                frames,
                asids,
            } => format!("shootdown pages={pages} frames={frames} asids={asids}"),
            KernelEvent::AccountingPeriodEnd { period } => {
                format!("period-end period={period}")
            }
            KernelEvent::KernelFailed { kernel } => format!("kernel-failed kernel={kernel:?}"),
            KernelEvent::ThrashDetected {
                kernel,
                class,
                fast_reloads,
            } => format!("thrash kernel={kernel:?} class={class} fast-reloads={fast_reloads}"),
            KernelEvent::KernelRecovered { kernel, orphans } => {
                format!("kernel-recovered kernel={kernel:?} orphans={orphans}")
            }
            KernelEvent::ThreadExit {
                owner,
                thread,
                code,
                cpu,
            } => format!("thread-exit owner={owner:?} thread={thread:?} code={code} cpu={cpu}"),
            KernelEvent::Cluster(ev) => match ev {
                ClusterEvent::NodeDown {
                    node,
                    epoch,
                    quorum,
                } => {
                    format!("node-down node={node} epoch={epoch} quorum={quorum}")
                }
                ClusterEvent::NodeRejoined { node, epoch } => {
                    format!("node-rejoined node={node} epoch={epoch}")
                }
                ClusterEvent::EpochChanged {
                    epoch,
                    adopted_from,
                } => format!("epoch-changed epoch={epoch} from={adopted_from:?}"),
                ClusterEvent::NodeSlow { node, slow } => {
                    format!("node-slow node={node} slow={slow}")
                }
            },
            KernelEvent::CapViolation { kernel, paddr, op } => format!(
                "cap-violation kernel={kernel:?} op={} pa={:#x}",
                op.as_str(),
                paddr.0
            ),
        }
    }
}

/// State written back to an application kernel when an object is displaced
/// (or unloaded as a dependent of a displaced object). Delivered over the
/// writeback channel by the executive.
#[derive(Clone, Debug)]
pub enum Writeback {
    /// A page mapping, with its final flag bits — the application kernel
    /// uses the modified bit to decide whether to clean the page (§2.1).
    Mapping {
        /// Kernel to deliver to.
        owner: ObjId,
        /// Address space the mapping belonged to.
        space: ObjId,
        /// Virtual page base.
        vaddr: Vaddr,
        /// Physical page base.
        paddr: Paddr,
        /// Final PTE flag bits (REFERENCED/MODIFIED/WRITABLE/…).
        flags: u32,
        /// Opaque payload handle in metadata-only mode
        /// (`CkConfig::metadata_only`): a content-free token the owning
        /// kernel joins against its own backing store, standing in for
        /// page data the Cache Kernel cannot read. Always 0 when the
        /// mode is off.
        payload: u64,
    },
    /// A thread's full state.
    Thread {
        /// Kernel to deliver to.
        owner: ObjId,
        /// The (now stale) identifier it was loaded under.
        id: ObjId,
        /// The descriptor state.
        desc: Box<ThreadDesc>,
    },
    /// An address space (its mappings and threads have already been
    /// written back, per the §4.2 ordering).
    Space {
        /// Kernel to deliver to.
        owner: ObjId,
        /// The (now stale) identifier.
        id: ObjId,
    },
    /// An application kernel object (delivered to the first kernel).
    Kernel {
        /// Kernel to deliver to (the SRM).
        owner: ObjId,
        /// The (now stale) identifier.
        id: ObjId,
        /// The descriptor state.
        desc: Box<KernelDesc>,
    },
}

impl Writeback {
    /// The kernel this writeback is addressed to.
    pub fn owner(&self) -> ObjId {
        match self {
            Writeback::Mapping { owner, .. }
            | Writeback::Thread { owner, .. }
            | Writeback::Space { owner, .. }
            | Writeback::Kernel { owner, .. } => *owner,
        }
    }

    /// Re-address the writeback (dead-kernel redirection to the SRM).
    pub(crate) fn set_owner(&mut self, new_owner: ObjId) {
        match self {
            Writeback::Mapping { owner, .. }
            | Writeback::Thread { owner, .. }
            | Writeback::Space { owner, .. }
            | Writeback::Kernel { owner, .. } => *owner = new_owner,
        }
    }
}

/// A mapping unload result returned from explicit unload calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MappingState {
    /// Virtual page base.
    pub vaddr: Vaddr,
    /// Physical page base.
    pub paddr: Paddr,
    /// Final PTE flags including referenced/modified.
    pub flags: u32,
}

impl CacheKernel {
    /// Enter an event into the pipeline. The single choke point where
    /// the [`Counters`](crate::counters::Counters) registry is ticked.
    ///
    /// The queue is explicitly bounded (`CkConfig::event_queue_bound`).
    /// At the bound the lowest-value traffic — accounting ticks, whose
    /// books the next period closes anyway — is dropped with a counter
    /// instead of growing the queue without limit; load-bearing events
    /// always enter (loads are backpressured at admission, not here).
    /// Dropped events are never counted as emitted, so the
    /// emitted/delivered balance stays exact.
    #[inline]
    pub fn emit(&mut self, ev: KernelEvent) {
        if matches!(ev, KernelEvent::AccountingPeriodEnd { .. }) {
            let bound = self.config.event_queue_bound;
            if bound != 0 && self.events.len() >= bound {
                self.stats.events_dropped += 1;
                return;
            }
        }
        self.stats.tick(&ev);
        self.events.push_back(ev);
    }

    /// Queue a writeback toward its owning application kernel. Writebacks
    /// addressed to a kernel that has been declared dead are redirected to
    /// the first kernel (the SRM), which holds the displaced state for the
    /// restart protocol instead of letting it vanish with the crash.
    ///
    /// Per-kernel writeback queues are bounded (`CkConfig::wb_queue_bound`):
    /// once a kernel has that many undelivered writebacks, further
    /// displaced state addressed to it spills to the first kernel (which
    /// holds it exactly as it does for a dead kernel), so the slow
    /// kernel's queue provably never exceeds the bound. The first kernel
    /// itself is exempt — it is the spill target of last resort.
    pub(crate) fn queue_writeback(&mut self, mut wb: Writeback) {
        let owner = wb.owner();
        if self.dead_kernels.get(&owner.slot) == Some(&owner) {
            if let Some(first) = self.first_kernel {
                if owner != first {
                    wb.set_owner(first);
                }
            }
        }
        let bound = self.config.wb_queue_bound;
        if bound != 0 {
            if let Some(first) = self.first_kernel {
                let addr = wb.owner();
                if addr != first && self.overload.wb_pending(addr.slot) as usize >= bound {
                    wb.set_owner(first);
                    self.stats.wb_overflow_redirects += 1;
                }
            }
        }
        self.overload.note_wb_queued(wb.owner().slot);
        self.emit(KernelEvent::Writeback(wb));
    }

    /// Pop the oldest pending event, if any. The executive's pump drains
    /// the queue one event at a time so deliveries that emit further
    /// events keep strict emission order.
    pub fn pop_event(&mut self) -> Option<KernelEvent> {
        let ev = self.events.pop_front();
        if let Some(KernelEvent::Writeback(wb)) = &ev {
            self.overload.note_wb_drained(wb.owner().slot);
        }
        ev
    }

    /// Number of events awaiting delivery.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drain all pending events without delivering them (harness and
    /// bench use, where no executive pumps the queue).
    pub fn drain_events(&mut self) -> Vec<KernelEvent> {
        let out: Vec<KernelEvent> = self.events.drain(..).collect();
        for ev in &out {
            if let KernelEvent::Writeback(wb) = ev {
                self.overload.note_wb_drained(wb.owner().slot);
            }
        }
        out
    }

    /// Drain the pending writebacks owed to application kernels, leaving
    /// other pending events in order. CK-level consumers (the library
    /// writeback channel, tests) read displaced state this way; under an
    /// executive the event pump delivers them instead.
    pub fn take_writebacks(&mut self) -> Vec<Writeback> {
        let mut out = Vec::new();
        // Rotate in place: pop each pending event once, keep the
        // writebacks, push everything else back. The queue reuses its
        // buffer and non-writeback events keep their relative order —
        // no intermediate rebuild.
        for _ in 0..self.events.len() {
            match self.events.pop_front() {
                Some(KernelEvent::Writeback(wb)) => {
                    self.overload.note_wb_drained(wb.owner().slot);
                    out.push(wb);
                }
                Some(other) => self.events.push_back(other),
                None => break,
            }
        }
        out
    }

    /// Number of queued writebacks not yet taken or delivered.
    pub fn pending_writebacks(&self) -> usize {
        self.events
            .iter()
            .filter(|ev| matches!(ev, KernelEvent::Writeback(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::CkConfig;
    use crate::ids::ObjKind;

    #[test]
    fn emit_keeps_order_and_ticks_counters() {
        let mut ck = CacheKernel::new(CkConfig::default());
        ck.emit(KernelEvent::Signal {
            paddr: Paddr(0x1000),
            receivers: 1,
            fast: true,
        });
        ck.emit(KernelEvent::AccountingPeriodEnd { period: 7 });
        assert_eq!(ck.pending_events(), 2);
        assert_eq!(ck.stats.events_emitted, 2);
        assert_eq!(ck.stats.signals_fast, 1);
        assert!(matches!(ck.pop_event(), Some(KernelEvent::Signal { .. })));
        assert!(matches!(
            ck.pop_event(),
            Some(KernelEvent::AccountingPeriodEnd { period: 7 })
        ));
        assert_eq!(ck.pop_event().map(|e| e.describe()), None);
    }

    #[test]
    fn take_writebacks_preserves_other_events() {
        let mut ck = CacheKernel::new(CkConfig::default());
        let owner = ObjId::new(ObjKind::Kernel, 0, 1);
        ck.emit(KernelEvent::AccountingPeriodEnd { period: 1 });
        ck.queue_writeback(Writeback::Space {
            owner,
            id: ObjId::new(ObjKind::AddrSpace, 3, 1),
        });
        ck.emit(KernelEvent::AccountingPeriodEnd { period: 2 });
        assert_eq!(ck.pending_writebacks(), 1);
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].owner(), owner);
        assert_eq!(ck.pending_writebacks(), 0);
        // The two period-end events survive, in order.
        let kinds: Vec<String> = ck.drain_events().iter().map(|e| e.describe()).collect();
        assert_eq!(kinds, vec!["period-end period=1", "period-end period=2"]);
    }
}
