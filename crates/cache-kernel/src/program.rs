//! Simulated user programs.
//!
//! We do not emulate 68040 machine code; a thread's "text" is a Rust state
//! machine implementing [`Program`]. Each call to [`Program::step`]
//! surrenders one architectural action — a memory access, a trap, a block —
//! which the executive performs against the simulated machine, with all the
//! real consequences: TLB misses, page faults forwarded to application
//! kernels, message-mode stores raising signals, time slices expiring.
//!
//! A thread descriptor's program counter holds the program's id in the
//! [`CodeStore`]; programs persist across thread unload/reload just as code
//! pages persist in memory.

use crate::ids::ObjId;
use hw::Vaddr;
use std::collections::HashMap;

/// Program identifier (carried in a thread's `regs.pc`).
pub type ProgId = u32;

/// One architectural action yielded by a program step.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// Load a little-endian `u32`; the value arrives in `ctx.loaded`.
    Load(Vaddr),
    /// Store a little-endian `u32`.
    Store(Vaddr, u32),
    /// Load `len` bytes; they arrive in `ctx.data`.
    LoadBytes(Vaddr, u32),
    /// Store a byte string.
    StoreBytes(Vaddr, Vec<u8>),
    /// Trap to the owning application kernel ("system call", §2.3); the
    /// result arrives in `ctx.trap_ret`.
    Trap {
        /// Trap number.
        no: u32,
        /// Arguments.
        args: [u32; 4],
    },
    /// Consume raw CPU cycles.
    Compute(u64),
    /// Attempt a privileged-mode instruction: raises a privilege
    /// violation that the Cache Kernel forwards to the application
    /// kernel (§2.1).
    Privileged,
    /// Block until an address-valued signal arrives; it is delivered in
    /// `ctx.signal`.
    WaitSignal,
    /// Give up the rest of the time slice.
    Yield,
    /// Terminate the thread with an exit code.
    Exit(i32),
}

/// Per-thread architectural context visible to the program: results of the
/// previous step. Persisted in the [`CodeStore`] beside the program (it is
/// "memory" from the system's point of view).
#[derive(Clone, Debug, Default)]
pub struct ThreadCtx {
    /// Current thread identifier (refreshed by the executive; changes
    /// across unload/reload).
    pub thread: Option<ObjId>,
    /// CPU currently executing the thread.
    pub cpu: usize,
    /// Result of the last `Load`.
    pub loaded: u32,
    /// Result of the last `LoadBytes`.
    pub data: Vec<u8>,
    /// Result of the last `Trap`.
    pub trap_ret: u32,
    /// Signal delivered by the last `WaitSignal`.
    pub signal: Option<Vaddr>,
    /// Whether the last memory access took a (resolved) fault — programs
    /// can observe their own paging behavior in tests.
    pub faulted: bool,
    /// The thread is blocked in `WaitSignal`; the executive fulfils the
    /// wait before stepping the program again.
    pub waiting: bool,
}

/// A simulated user program.
pub trait Program: Send {
    /// Yield the next architectural action.
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step;
    /// Diagnostic name.
    fn name(&self) -> &str {
        "program"
    }
    /// Duplicate this program for a UNIX-style fork (both copies continue
    /// from the current state). Programs that cannot be duplicated return
    /// `None` and fork fails with EAGAIN at the emulator level.
    fn fork(&self) -> Option<Box<dyn Program>> {
        None
    }
}

/// Owns the program objects and their contexts, keyed by [`ProgId`].
#[derive(Default)]
pub struct CodeStore {
    progs: HashMap<ProgId, (Box<dyn Program>, ThreadCtx)>,
    next: ProgId,
}

impl CodeStore {
    /// An empty store.
    pub fn new() -> Self {
        CodeStore {
            progs: HashMap::new(),
            next: 1,
        }
    }

    /// Install a program, returning the id to put in a thread's `pc`.
    pub fn register(&mut self, p: Box<dyn Program>) -> ProgId {
        let id = self.next;
        self.next += 1;
        self.progs.insert(id, (p, ThreadCtx::default()));
        id
    }

    /// Temporarily remove a program and its context (executive's
    /// take-out/put-back around a step).
    pub fn take(&mut self, id: ProgId) -> Option<(Box<dyn Program>, ThreadCtx)> {
        self.progs.remove(&id)
    }

    /// Put a program back after a step.
    pub fn put(&mut self, id: ProgId, p: Box<dyn Program>, ctx: ThreadCtx) {
        self.progs.insert(id, (p, ctx));
    }

    /// Remove a program permanently (thread exited).
    pub fn remove(&mut self, id: ProgId) -> Option<Box<dyn Program>> {
        self.progs.remove(&id).map(|(p, _)| p)
    }

    /// Read a program's persistent context (tests, diagnostics).
    pub fn ctx(&self, id: ProgId) -> Option<&ThreadCtx> {
        self.progs.get(&id).map(|(_, c)| c)
    }

    /// Deliver the result of a blocked trap: the application kernel calls
    /// this before resuming a thread it blocked in `on_trap`.
    pub fn set_trap_ret(&mut self, id: ProgId, v: u32) {
        if let Some((_, ctx)) = self.progs.get_mut(&id) {
            ctx.trap_ret = v;
        }
    }

    /// Mutate a program's persistent context (executive result delivery).
    pub fn with_ctx<R>(&mut self, id: ProgId, f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
        self.progs.get_mut(&id).map(|(_, ctx)| f(ctx))
    }

    /// Ask a program to fork (for UNIX-style fork emulation). Returns the
    /// child program id if the program supports forking.
    pub fn fork(&mut self, id: ProgId) -> Option<ProgId> {
        let child = {
            let (p, _) = self.progs.get(&id)?;
            p.fork()?
        };
        let ctx = self
            .progs
            .get(&id)
            .map(|(_, c)| c.clone())
            .unwrap_or_default();
        let cid = self.next;
        self.next += 1;
        self.progs.insert(cid, (child, ctx));
        Some(cid)
    }

    /// Number of installed programs.
    pub fn len(&self) -> usize {
        self.progs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.progs.is_empty()
    }
}

/// A program built from a fixed script of steps (test and workload
/// helper). Repeats its last `Exit` forever if stepped again.
pub struct Script {
    steps: Vec<Step>,
    at: usize,
}

impl Script {
    /// A program that performs `steps` then exits 0 (if the script does
    /// not end with an `Exit`, one is appended).
    pub fn new(mut steps: Vec<Step>) -> Self {
        if !matches!(steps.last(), Some(Step::Exit(_))) {
            steps.push(Step::Exit(0));
        }
        Script { steps, at: 0 }
    }
}

impl Program for Script {
    fn step(&mut self, _ctx: &mut ThreadCtx) -> Step {
        let s = self.steps[self.at.min(self.steps.len() - 1)].clone();
        if self.at < self.steps.len() {
            self.at += 1;
        }
        s
    }
    fn name(&self) -> &str {
        "script"
    }
    fn fork(&self) -> Option<Box<dyn Program>> {
        Some(Box::new(Script {
            steps: self.steps.clone(),
            at: self.at,
        }))
    }
}

/// A program driven by a closure (workload helper). Not forkable; see
/// [`ForkableFn`] for a version UNIX `fork` can duplicate.
pub struct FnProgram<F: FnMut(&mut ThreadCtx) -> Step + Send>(pub F);

impl<F: FnMut(&mut ThreadCtx) -> Step + Send> Program for FnProgram<F> {
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step {
        (self.0)(ctx)
    }
    fn name(&self) -> &str {
        "fn"
    }
}

/// A closure program whose captured state is `Clone`, so a UNIX-style
/// fork can duplicate it mid-execution (both copies continue from the
/// same point, like a real forked process image).
pub struct ForkableFn<F: FnMut(&mut ThreadCtx) -> Step + Send + Clone + 'static>(pub F);

impl<F: FnMut(&mut ThreadCtx) -> Step + Send + Clone + 'static> Program for ForkableFn<F> {
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step {
        (self.0)(ctx)
    }
    fn name(&self) -> &str {
        "forkable-fn"
    }
    fn fork(&self) -> Option<Box<dyn Program>> {
        Some(Box::new(ForkableFn(self.0.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codestore_lifecycle() {
        let mut cs = CodeStore::new();
        let id = cs.register(Box::new(Script::new(vec![Step::Yield])));
        assert_eq!(cs.len(), 1);
        let (mut p, mut ctx) = cs.take(id).unwrap();
        assert_eq!(p.step(&mut ctx), Step::Yield);
        cs.put(id, p, ctx);
        assert!(cs.ctx(id).is_some());
        cs.remove(id);
        assert!(cs.is_empty());
    }

    #[test]
    fn script_appends_exit_and_sticks() {
        let mut s = Script::new(vec![Step::Compute(5)]);
        let mut ctx = ThreadCtx::default();
        assert_eq!(s.step(&mut ctx), Step::Compute(5));
        assert_eq!(s.step(&mut ctx), Step::Exit(0));
        assert_eq!(s.step(&mut ctx), Step::Exit(0), "exit repeats");
    }

    #[test]
    fn fn_program_sees_ctx() {
        let mut p = FnProgram(|ctx: &mut ThreadCtx| {
            if ctx.loaded == 7 {
                Step::Exit(1)
            } else {
                Step::Load(Vaddr(0x100))
            }
        });
        let mut ctx = ThreadCtx::default();
        assert_eq!(p.step(&mut ctx), Step::Load(Vaddr(0x100)));
        ctx.loaded = 7;
        assert_eq!(p.step(&mut ctx), Step::Exit(1));
    }
}
