//! Shared unit-test fixtures: a booted Cache Kernel with a configurable
//! `CkConfig`, and minimal scoped grants so tests exercise capability
//! checking instead of blanket `MemoryAccessArray::all()` kernels.

use crate::ck::{CacheKernel, CkConfig};
use crate::ids::ObjId;
use crate::objects::{KernelDesc, MemoryAccessArray};
use hw::{MachineConfig, Mpm, Rights};

/// Boot a Cache Kernel under `config` with the conventional all-access
/// first kernel, on a small 1024-frame machine.
pub(crate) fn setup_with(config: CkConfig) -> (CacheKernel, Mpm, ObjId) {
    let mut ck = CacheKernel::new(config);
    let mpm = Mpm::new(MachineConfig {
        phys_frames: 1024,
        l2_bytes: 64 * 1024,
        ..MachineConfig::default()
    });
    let srm = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    (ck, mpm, srm)
}

/// A kernel descriptor granted ReadWrite on exactly the named page
/// groups and nothing else — the minimal scoped grant tests should
/// prefer over `MemoryAccessArray::all()`.
pub(crate) fn grant_groups(groups: &[u32]) -> KernelDesc {
    let mut memory_access = MemoryAccessArray::none();
    for &g in groups {
        memory_access.set(g, Rights::ReadWrite);
    }
    KernelDesc {
        memory_access,
        ..KernelDesc::default()
    }
}
