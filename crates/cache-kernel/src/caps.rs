//! Capability scoping of the application-kernel boundary.
//!
//! The paper's §6 containment claim — a buggy application kernel cannot
//! corrupt other kernels — is only adversarially true if every operation
//! that names a physical page is checked against the calling kernel's
//! grant *at the boundary*, not just at mapping install. This module is
//! that boundary layer: one verdict helper used by `load_mapping` and
//! friends, an explicit check for the surfaces that historically trusted
//! their caller (writeback targets, grant modification), and the opaque
//! payload handle of metadata-only caching.
//!
//! Everything here is gated on [`CkConfig::caps_enforce`] and off by
//! default: with the knob down, the legacy error shapes
//! ([`CkError::NoAccess`], [`CkError::FirstKernelOnly`]) are returned
//! unchanged, no event is emitted, no counter moves, and the granted
//! fast path executes the exact pre-existing branch. With the knob up,
//! a violation becomes [`CkError::CapDenied`] — retryable when the
//! caller holds partial rights on the page group (a grant renegotiation
//! could fix it), fatal when the target is wholly outside the grant —
//! and is counted in [`Counters::cap_denied`](crate::Counters) and
//! traced as a [`KernelEvent::CapViolation`] through the executive
//! pipeline. Never a panic.
//!
//! The first kernel (the SRM) is exempt throughout: it boots with full
//! permissions on all physical resources (§3) and is the spill target
//! of last resort for redirected writebacks.
//!
//! [`CkConfig::caps_enforce`]: crate::ck::CkConfig::caps_enforce

use crate::ck::CacheKernel;
use crate::error::{CkError, CkResult};
use crate::events::{KernelEvent, Writeback};
use crate::ids::ObjId;
use hw::{Access, Mpm, Paddr, Rights, Vpn};

/// Which boundary surface a capability check (or violation) belongs to.
/// Carried on [`KernelEvent::CapViolation`] so traces distinguish a
/// forged writeback from an out-of-grant map attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapOp {
    /// A `load_mapping` (or transfer) install of a physical page.
    Map,
    /// The copy-on-write source frame of a mapping load.
    CowSource,
    /// A signal-page registration (a mapping load carrying a signal
    /// thread).
    SignalPage,
    /// The target of an application-submitted writeback.
    WritebackTarget,
    /// A grant modification attempted by a non-first kernel
    /// (privilege-escalation retry).
    GrantChange,
}

impl CapOp {
    /// Stable lower-case name for event traces.
    pub fn as_str(self) -> &'static str {
        match self {
            CapOp::Map => "map",
            CapOp::CowSource => "cow-source",
            CapOp::SignalPage => "signal-page",
            CapOp::WritebackTarget => "writeback-target",
            CapOp::GrantChange => "grant-change",
        }
    }
}

/// The opaque payload handle shipped on mapping writebacks in
/// metadata-only mode (`CkConfig::metadata_only`): the Cache Kernel
/// tracks residency and consistency for pages whose *contents* it cannot
/// read, so the writeback carries a content-free token the owning kernel
/// can join against its own backing store instead of page data. The
/// mixing is fixed and deterministic — identical runs replay identical
/// handles — but not the raw frame number, so a handle leaks nothing a
/// kernel does not already know about its own page.
pub fn opaque_payload(paddr: Paddr) -> u64 {
    (paddr.0 as u64 ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

impl CacheKernel {
    /// Whether capability enforcement is armed.
    pub fn caps_enforced(&self) -> bool {
        self.config.caps_enforce
    }

    /// The rights `caller` holds on `paddr`'s page group, if it is a
    /// loaded kernel. The first kernel implicitly holds everything.
    fn rights_of(&self, caller: ObjId, paddr: Paddr) -> Rights {
        if Some(caller) == self.first_kernel {
            return Rights::ReadWrite;
        }
        self.kernels
            .get(caller)
            .map(|k| k.desc.memory_access.rights_for(paddr))
            .unwrap_or(Rights::None)
    }

    /// Verdict for a grant check that has already *failed* on the legacy
    /// path: with enforcement off this returns the historical
    /// [`CkError::NoAccess`] unchanged (provably inert — same error,
    /// no event, no counter); with enforcement on it raises a
    /// [`KernelEvent::CapViolation`] through the pipeline and returns
    /// [`CkError::CapDenied`].
    pub(crate) fn cap_denied(&mut self, caller: ObjId, paddr: Paddr, op: CapOp) -> CkError {
        if !self.config.caps_enforce {
            return CkError::NoAccess(paddr);
        }
        let retryable = self.rights_of(caller, paddr) != Rights::None;
        self.emit(KernelEvent::CapViolation {
            kernel: caller,
            paddr,
            op,
        });
        CkError::CapDenied { paddr, retryable }
    }

    /// Explicit capability check for boundary surfaces that carried no
    /// grant check historically (writeback targets, restart plumbing).
    /// A no-op unless `caps_enforce` is armed; the first kernel is
    /// always exempt.
    pub(crate) fn cap_check(
        &mut self,
        caller: ObjId,
        paddr: Paddr,
        access: Access,
        op: CapOp,
    ) -> CkResult<()> {
        if !self.config.caps_enforce || Some(caller) == self.first_kernel {
            return Ok(());
        }
        let rights = self.rights_of(caller, paddr);
        if rights.allows(access) {
            return Ok(());
        }
        self.emit(KernelEvent::CapViolation {
            kernel: caller,
            paddr,
            op,
        });
        Err(CkError::CapDenied {
            paddr,
            retryable: rights != Rights::None,
        })
    }

    /// Verdict for a privilege-restricted call attempted by a non-first
    /// kernel. With enforcement off this is the historical
    /// [`CkError::FirstKernelOnly`]; with it on, the attempt (a
    /// grant-escalation retry, in the adversarial generator's terms) is
    /// traced and denied as a non-retryable [`CkError::CapDenied`].
    pub(crate) fn cap_escalation_denied(&mut self, caller: ObjId, paddr: Paddr) -> CkError {
        if !self.config.caps_enforce {
            return CkError::FirstKernelOnly;
        }
        self.emit(KernelEvent::CapViolation {
            kernel: caller,
            paddr,
            op: CapOp::GrantChange,
        });
        CkError::CapDenied {
            paddr,
            retryable: false,
        }
    }

    /// Submit a writeback on behalf of an application kernel — the
    /// boundary an adversary would use to forge displaced state into a
    /// bystander's writeback channel. A kernel may only address
    /// writebacks to *itself* (it is its own backing store; the Cache
    /// Kernel addresses cross-kernel writebacks internally), and a
    /// mapping writeback must name a frame inside the caller's grant.
    /// The first kernel is exempt (it re-routes held state during
    /// recovery). With `caps_enforce` off the submission is queued
    /// unchecked, exactly as trusted internal callers are.
    pub fn submit_writeback(&mut self, caller: ObjId, wb: Writeback) -> CkResult<()> {
        self.kernel(caller)?;
        if self.config.caps_enforce && Some(caller) != self.first_kernel {
            let anchor = match &wb {
                Writeback::Mapping { paddr, .. } => *paddr,
                _ => Paddr(0),
            };
            if wb.owner() != caller {
                self.emit(KernelEvent::CapViolation {
                    kernel: caller,
                    paddr: anchor,
                    op: CapOp::WritebackTarget,
                });
                return Err(CkError::CapDenied {
                    paddr: anchor,
                    retryable: false,
                });
            }
            if let Writeback::Mapping { paddr, .. } = &wb {
                self.cap_check(caller, *paddr, Access::Read, CapOp::WritebackTarget)?;
            }
        }
        self.queue_writeback(wb);
        Ok(())
    }

    /// Tear down every mapping of `kernel` whose frame the (freshly
    /// narrowed) grant no longer covers, in one batched shootdown round.
    /// Called from `modify_kernel_grant` after a rights reduction so a
    /// down-scoped kernel cannot keep touching pages through stale PTEs
    /// — the mechanism behind restart-under-reduced-grant. The displaced
    /// states go back over the writeback channel; the kernel remains its
    /// own backing store for them.
    pub(crate) fn revoke_out_of_grant_mappings(
        &mut self,
        kernel: ObjId,
        group_first: u32,
        group_count: u32,
        mpm: &mut Mpm,
    ) {
        let group_end = group_first.saturating_add(group_count);
        let mut stale: Vec<(ObjId, Vpn)> = Vec::new();
        for (sid, s) in self.spaces.iter() {
            if s.owner != kernel {
                continue;
            }
            for (vpn, pte) in s.pt.iter() {
                let group = pte.pfn().group();
                if group < group_first || group >= group_end {
                    continue;
                }
                let needed = if pte.has(hw::Pte::WRITABLE) {
                    Access::Write
                } else {
                    Access::Read
                };
                let rights = self
                    .kernels
                    .get(kernel)
                    .map(|k| k.desc.memory_access.get(group))
                    .unwrap_or(Rights::None);
                if !rights.allows(needed) {
                    stale.push((sid, vpn));
                }
            }
        }
        if stale.is_empty() {
            return;
        }
        let mut batch = self.take_shootdown_batch();
        for (sid, vpn) in stale {
            self.unload_mapping_impl(sid, vpn, mpm, true, Some(&mut batch));
        }
        self.finish_shootdown(batch, mpm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::{CkConfig, Writeback};
    use crate::objects::SpaceDesc;
    use crate::test_support::{grant_groups, setup_with};
    use hw::{Pte, Vaddr, PAGE_GROUP_SIZE};

    #[test]
    fn caps_off_keeps_the_fast_path_inert() {
        // The defaults pin: with `caps_enforce` down, a rights failure
        // is the exact legacy `NoAccess`, nothing is counted, nothing is
        // traced, and granted loads behave identically to seed.
        let (mut ck, mut mpm, srm) = setup_with(CkConfig::default());
        let k = ck.load_kernel(srm, grant_groups(&[0]), &mut mpm).unwrap();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        ck.load_mapping(k, sp, Vaddr(0x1000), Paddr(0x3000), 0, None, None, &mut mpm)
            .unwrap();
        let err = ck
            .load_mapping(
                k,
                sp,
                Vaddr(0x2000),
                Paddr(PAGE_GROUP_SIZE),
                0,
                None,
                None,
                &mut mpm,
            )
            .unwrap_err();
        assert_eq!(err, CkError::NoAccess(Paddr(PAGE_GROUP_SIZE)));
        assert_eq!(ck.stats.cap_denied, 0);
        assert_eq!(ck.stats.metadata_writebacks, 0);
        assert!(!ck
            .drain_events()
            .iter()
            .any(|e| matches!(e, KernelEvent::CapViolation { .. })));
        ck.check_invariants().unwrap();
    }

    #[test]
    fn caps_on_denies_counts_and_traces() {
        let (mut ck, mut mpm, srm) = setup_with(CkConfig {
            caps_enforce: true,
            ..CkConfig::default()
        });
        let k = ck.load_kernel(srm, grant_groups(&[0]), &mut mpm).unwrap();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        // Wholly outside the grant: fatal.
        let err = ck
            .load_mapping(
                k,
                sp,
                Vaddr(0x2000),
                Paddr(PAGE_GROUP_SIZE),
                0,
                None,
                None,
                &mut mpm,
            )
            .unwrap_err();
        assert_eq!(
            err,
            CkError::CapDenied {
                paddr: Paddr(PAGE_GROUP_SIZE),
                retryable: false
            }
        );
        assert_eq!(ck.stats.cap_denied, 1);
        let evs = ck.drain_events();
        assert!(evs.iter().any(|e| matches!(
            e,
            KernelEvent::CapViolation { kernel, op: CapOp::Map, .. } if *kernel == k
        )));
        ck.check_invariants().unwrap();
    }

    #[test]
    fn partial_rights_are_a_retryable_denial() {
        let (mut ck, mut mpm, srm) = setup_with(CkConfig {
            caps_enforce: true,
            ..CkConfig::default()
        });
        let mut desc = grant_groups(&[]);
        desc.memory_access.set(0, Rights::Read);
        let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        let err = ck
            .load_mapping(
                k,
                sp,
                Vaddr(0x2000),
                Paddr(0x4000),
                Pte::WRITABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap_err();
        assert_eq!(
            err,
            CkError::CapDenied {
                paddr: Paddr(0x4000),
                retryable: true
            }
        );
        assert_eq!(ck.stats.cap_denied, 1);
    }

    #[test]
    fn forged_writeback_target_is_denied() {
        let (mut ck, mut mpm, srm) = setup_with(CkConfig {
            caps_enforce: true,
            ..CkConfig::default()
        });
        let mal = ck.load_kernel(srm, grant_groups(&[0]), &mut mpm).unwrap();
        let victim = ck.load_kernel(srm, grant_groups(&[1]), &mut mpm).unwrap();
        let wb = Writeback::Mapping {
            owner: victim,
            space: victim, // nonsense ids are fine: the forgery dies first
            vaddr: Vaddr(0x1000),
            paddr: Paddr(PAGE_GROUP_SIZE),
            flags: 0,
            payload: 0,
        };
        let err = ck.submit_writeback(mal, wb).unwrap_err();
        assert!(matches!(err, CkError::CapDenied { .. }));
        assert_eq!(ck.stats.cap_denied, 1);
        assert_eq!(ck.pending_writebacks(), 0, "forgery never queued");
        // A self-addressed writeback inside the grant goes through.
        ck.submit_writeback(
            mal,
            Writeback::Mapping {
                owner: mal,
                space: mal,
                vaddr: Vaddr(0x1000),
                paddr: Paddr(0x3000),
                flags: 0,
                payload: 0,
            },
        )
        .unwrap();
        assert_eq!(ck.pending_writebacks(), 1);
    }

    #[test]
    fn grant_escalation_is_denied_and_traced() {
        let (mut ck, mut mpm, srm) = setup_with(CkConfig {
            caps_enforce: true,
            ..CkConfig::default()
        });
        let mal = ck.load_kernel(srm, grant_groups(&[0]), &mut mpm).unwrap();
        let err = ck
            .modify_kernel_grant(mal, mal, 1, 1, Rights::ReadWrite, &mut mpm)
            .unwrap_err();
        assert!(matches!(
            err,
            CkError::CapDenied {
                retryable: false,
                ..
            }
        ));
        assert_eq!(ck.stats.cap_denied, 1);
        // With caps off the same attempt is the legacy FirstKernelOnly.
        ck.config.caps_enforce = false;
        let err = ck
            .modify_kernel_grant(mal, mal, 1, 1, Rights::ReadWrite, &mut mpm)
            .unwrap_err();
        assert_eq!(err, CkError::FirstKernelOnly);
        assert_eq!(ck.stats.cap_denied, 1, "no count with caps off");
    }

    #[test]
    fn down_scope_tears_down_stale_mappings_in_one_round() {
        let (mut ck, mut mpm, srm) = setup_with(CkConfig {
            caps_enforce: true,
            ..CkConfig::default()
        });
        let k = ck
            .load_kernel(srm, grant_groups(&[0, 1]), &mut mpm)
            .unwrap();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        // Two mappings in group 0, two in group 1.
        for (i, pa) in [0x1000, 0x2000, PAGE_GROUP_SIZE, PAGE_GROUP_SIZE + 0x1000]
            .iter()
            .enumerate()
        {
            ck.load_mapping(
                k,
                sp,
                Vaddr(0x10_000 + (i as u32) * 0x1000),
                Paddr(*pa),
                Pte::WRITABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        let rounds_before = ck.stats.shootdown_rounds;
        ck.modify_kernel_grant(srm, k, 1, 1, Rights::None, &mut mpm)
            .unwrap();
        assert_eq!(
            ck.stats.shootdown_rounds,
            rounds_before + 1,
            "revocation is one batched round"
        );
        // Group-1 mappings are gone, group-0 mappings intact.
        assert!(ck.query_mapping(k, sp, Vaddr(0x12_000)).is_err());
        assert!(ck.query_mapping(k, sp, Vaddr(0x13_000)).is_err());
        assert!(ck.query_mapping(k, sp, Vaddr(0x10_000)).is_ok());
        assert!(ck.query_mapping(k, sp, Vaddr(0x11_000)).is_ok());
        // The displaced states went back over the writeback channel.
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 2);
        assert!(wbs.iter().all(|w| w.owner() == k));
        ck.check_invariants().unwrap();
        ck.check_visibility(&mpm).unwrap();
    }

    #[test]
    fn metadata_only_ships_opaque_payload_handles() {
        let (mut ck, mut mpm, srm) = setup_with(CkConfig {
            metadata_only: true,
            ..CkConfig::default()
        });
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x5000),
            Paddr(0x9000),
            Pte::WRITABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        // Replacing the mapping displaces the old one: metadata-only
        // writeback, content-free handle attached.
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x5000),
            Paddr(0xa000),
            Pte::WRITABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 1);
        match &wbs[0] {
            Writeback::Mapping { paddr, payload, .. } => {
                assert_eq!(*paddr, Paddr(0x9000));
                assert_eq!(*payload, opaque_payload(Paddr(0x9000)));
                assert_ne!(*payload, 0);
            }
            other => panic!("unexpected writeback {other:?}"),
        }
        assert_eq!(ck.stats.metadata_writebacks, 1);
        // Off by default: the handle stays zero and the counter silent.
        ck.config.metadata_only = false;
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x5000),
            Paddr(0xb000),
            Pte::WRITABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        let wbs = ck.take_writebacks();
        assert!(matches!(&wbs[0], Writeback::Mapping { payload: 0, .. }));
        assert_eq!(ck.stats.metadata_writebacks, 1);
    }
}
