//! Fault, trap and exception forwarding (Fig. 2, §2.1, §2.3).
//!
//! On a hardware fault the Cache Kernel's access-error handler saves the
//! faulting thread's state, switches the thread to its application
//! kernel's address space and exception stack, and starts it in the
//! kernel's handler (steps 1–2). The handler resolves the fault — usually
//! by loading a new page mapping — and either returns through a separate
//! "exception complete" call (step 5) or uses the optimized call that
//! both loads the mapping and resumes the thread in one trap.
//!
//! In the simulation the application kernel handler is a direct method
//! call; this module charges the costs of the boundary crossings so the
//! §5.3 measurements (trap ≈ getpid cost, page fault = transfer +
//! optimized load) can be reproduced, and implements the optimized
//! combined call.

use crate::ck::CacheKernel;
use crate::error::CkResult;
use crate::events::KernelEvent;
use crate::ids::ObjId;
use hw::{Fault, Mpm, Paddr, Vaddr};

/// What the application kernel decided about a forwarded fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDisposition {
    /// Resolved (mapping loaded); resume the thread. If the handler used
    /// [`CacheKernel::load_mapping_and_resume`] the return trap is free.
    Resume,
    /// The thread must block (e.g. page-in started asynchronously); the
    /// application kernel will resume or reload it later.
    Block,
    /// The load that would resolve the fault was shed by overload
    /// protection ([`CkError::Again`](crate::error::CkError)); requeue
    /// the thread Ready so it retries after other work has drained the
    /// pressure.
    Retry,
    /// The thread was terminated (e.g. an unhandleable SEGV).
    Kill,
}

/// What the application kernel decided about a forwarded trap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapDisposition {
    /// Return this value to the trapping thread.
    Return(u32),
    /// The thread blocks in the "system call"; the application kernel
    /// completes it later (a return value is delivered on resume).
    Block,
    /// The thread exits.
    Exit,
}

impl CacheKernel {
    /// Charge the forwarding path into an application kernel handler
    /// (Fig. 2 steps 1–2: trap entry, state save, switch to the kernel's
    /// space and exception stack) and return the owning kernel to invoke.
    pub fn begin_fault_forward(
        &mut self,
        mpm: &mut Mpm,
        cpu: usize,
        thread_slot: u16,
        fault: Fault,
    ) -> Option<ObjId> {
        let owner = self.thread_owner(thread_slot)?;
        let thread = self.thread_id(thread_slot)?;
        let cost = &mpm.config.cost;
        let charge = cost.trap + cost.mode_switch;
        mpm.clock.charge(charge);
        mpm.cpus[cpu].consume(charge);
        self.emit(KernelEvent::FaultForward {
            owner,
            thread,
            cpu,
            fault,
        });
        Some(owner)
    }

    /// Charge the trap-forwarding path (a thread's "system call" to its
    /// application kernel, §2.3) and return the owning kernel.
    pub fn begin_trap_forward(
        &mut self,
        mpm: &mut Mpm,
        cpu: usize,
        thread_slot: u16,
        no: u32,
        args: [u32; 4],
    ) -> Option<ObjId> {
        let owner = self.thread_owner(thread_slot)?;
        let thread = self.thread_id(thread_slot)?;
        let cost = &mpm.config.cost;
        let charge = cost.trap + cost.mode_switch;
        mpm.clock.charge(charge);
        mpm.cpus[cpu].consume(charge);
        self.emit(KernelEvent::TrapForward {
            owner,
            thread,
            cpu,
            no,
            args,
        });
        Some(owner)
    }

    /// Return from a forwarded handler the plain way (Fig. 2 step 5: a
    /// separate "exception processing complete" trap, then step 6 resume).
    pub fn end_forward(&mut self, mpm: &mut Mpm, cpu: usize) {
        let cost = &mpm.config.cost;
        let charge = cost.trap + cost.mode_switch;
        mpm.clock.charge(charge);
        mpm.cpus[cpu].consume(charge);
    }

    /// The optimized call that both loads a new mapping and returns from
    /// the exception handler (§2.1): one trap instead of two. The
    /// executive treats a `Resume` disposition after this call as already
    /// paid for.
    #[allow(clippy::too_many_arguments)]
    pub fn load_mapping_and_resume(
        &mut self,
        caller: ObjId,
        space: ObjId,
        vaddr: Vaddr,
        paddr: Paddr,
        flags: u32,
        signal_thread: Option<ObjId>,
        cow_source: Option<Paddr>,
        mpm: &mut Mpm,
        cpu: usize,
    ) -> CkResult<()> {
        self.load_mapping(
            caller,
            space,
            vaddr,
            paddr,
            flags,
            signal_thread,
            cow_source,
            mpm,
        )?;
        // Combined return: charge only the resume mode switch, not a
        // second full trap, and mark the pending fault return as paid.
        let charge = mpm.config.cost.mode_switch;
        mpm.clock.charge(charge);
        mpm.cpus[cpu].consume(charge);
        self.resume_armed = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::CkConfig;
    use crate::objects::*;
    use hw::{MachineConfig, Pte};

    /// Boot (first kernel keeps the conventional blanket grant) and load
    /// one app kernel scoped to page group 0 — the tests below fault and
    /// map as that kernel, so the capability path is exercised rather
    /// than bypassed with `grant_all`.
    fn setup() -> (CacheKernel, Mpm, ObjId) {
        let mut ck = CacheKernel::new(CkConfig::default());
        let mut mpm = Mpm::new(MachineConfig {
            phys_frames: 1024,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let k = ck
            .load_kernel(srm, crate::test_support::grant_groups(&[0]), &mut mpm)
            .unwrap();
        (ck, mpm, k)
    }

    #[test]
    fn forward_charges_and_counts() {
        let (mut ck, mut mpm, k) = setup();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(k, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        let fault = hw::Fault {
            kind: hw::FaultKind::Unmapped,
            vaddr: Vaddr(0x4000),
            write: false,
        };
        let c0 = mpm.clock.cycles();
        let owner = ck.begin_fault_forward(&mut mpm, 0, t.slot, fault).unwrap();
        assert_eq!(owner, k);
        assert!(mpm.clock.cycles() > c0);
        assert_eq!(ck.stats.faults_forwarded, 1);
        ck.begin_trap_forward(&mut mpm, 0, t.slot, 7, [0; 4])
            .unwrap();
        assert_eq!(ck.stats.traps_forwarded, 1);
        // Both forwards entered the event pipeline, in order.
        let evs = ck.drain_events();
        assert!(matches!(evs[0], KernelEvent::FaultForward { .. }));
        assert!(matches!(evs[1], KernelEvent::TrapForward { no: 7, .. }));
    }

    #[test]
    fn optimized_resume_cheaper_than_separate() {
        let (mut ck, mut mpm, k) = setup();
        let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();

        // Separate: load_mapping + end_forward. Both mappings land in
        // page group 0, inside the scoped grant.
        let c0 = mpm.clock.cycles();
        ck.load_mapping(
            k,
            sp,
            Vaddr(0x1000),
            Paddr(0x2000),
            Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        ck.end_forward(&mut mpm, 0);
        let separate = mpm.clock.cycles() - c0;

        // Combined call.
        let c1 = mpm.clock.cycles();
        ck.load_mapping_and_resume(
            k,
            sp,
            Vaddr(0x3000),
            Paddr(0x4000),
            Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
            0,
        )
        .unwrap();
        let combined = mpm.clock.cycles() - c1;
        assert!(
            combined < separate,
            "combined {combined} should beat separate {separate}"
        );
    }

    #[test]
    fn forward_to_unloaded_thread_is_none() {
        let (mut ck, mut mpm, _srm) = setup();
        let fault = hw::Fault {
            kind: hw::FaultKind::Unmapped,
            vaddr: Vaddr(0),
            write: false,
        };
        assert!(ck.begin_fault_forward(&mut mpm, 0, 99, fault).is_none());
    }
}
