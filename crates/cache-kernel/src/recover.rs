//! Dead-kernel recovery: crash containment as cache reclamation.
//!
//! The paper's claim (§2.1, §6) is that the caching model *is* the
//! recovery model: an application-kernel failure is contained to its own
//! cached objects, and the Cache Kernel reclaims them exactly like any
//! other displacement. This module implements that path:
//!
//! 1. [`mark_kernel_failed`] declares a kernel dead. From that point its
//!    writebacks are redirected to the first kernel (the SRM) — displaced
//!    state must not vanish with the crash — and a
//!    [`KernelEvent::KernelFailed`] enters the pipeline.
//! 2. [`recover_kernel`] (first-kernel privilege) tears down everything
//!    the dead kernel had loaded in dependency order — threads, then
//!    mappings, then spaces, then the kernel object itself — reusing one
//!    [`ShootdownBatch`](crate::shootdown::ShootdownBatch) for the whole
//!    sweep, and finishes with the kernel-object writeback the SRM's
//!    restart protocol feeds on, plus a
//!    [`KernelEvent::KernelRecovered`].
//!
//! Failure *detection* lives above: the executive stamps heartbeats as it
//! fans out clock ticks, and the SRM compares them against its timeout.
//!
//! [`mark_kernel_failed`]: CacheKernel::mark_kernel_failed
//! [`recover_kernel`]: CacheKernel::recover_kernel

use crate::ck::CacheKernel;
use crate::counters::{CkStats, STAT_MAPPING};
use crate::error::{CkError, CkResult};
use crate::events::{KernelEvent, Writeback};
use crate::ids::{ObjId, ObjKind};
use hw::Mpm;

/// What a recovery sweep reclaimed, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Orphaned threads unloaded.
    pub threads: u32,
    /// Orphaned address spaces unloaded.
    pub spaces: u32,
    /// Orphaned page mappings unloaded.
    pub mappings: u32,
}

impl RecoveryReport {
    /// Total orphaned objects swept.
    pub fn orphans(&self) -> u32 {
        self.threads + self.spaces + self.mappings
    }
}

impl CacheKernel {
    /// Current id of a kernel slot, if one is loaded there.
    pub fn kernel_id(&self, slot: u16) -> Option<ObjId> {
        self.kernels.id_of_slot(slot)
    }

    /// Declare a loaded application kernel dead. Its writebacks are
    /// redirected to the first kernel from here on and a `KernelFailed`
    /// event enters the pipeline. The first kernel cannot be declared
    /// dead, and a kernel cannot die twice.
    pub fn mark_kernel_failed(&mut self, id: ObjId) -> CkResult<()> {
        self.kernel(id)?;
        if Some(id) == self.first_kernel {
            return Err(CkError::FirstKernelOnly);
        }
        if self.kernel_failed(id) {
            return Err(CkError::KernelDead(id));
        }
        self.dead_kernels.insert(id.slot, id);
        self.emit(KernelEvent::KernelFailed { kernel: id });
        Ok(())
    }

    /// Whether this kernel id has been declared dead (and not yet
    /// recovered).
    pub fn kernel_failed(&self, id: ObjId) -> bool {
        self.dead_kernels.get(&id.slot) == Some(&id)
    }

    /// All kernels currently declared dead, in slot order.
    pub fn failed_kernels(&self) -> Vec<ObjId> {
        self.dead_kernels.values().copied().collect()
    }

    /// Stamp a liveness heartbeat for a kernel slot (the executive calls
    /// this as it fans out clock ticks to registered kernels).
    pub fn note_heartbeat(&mut self, slot: u16, now: u64) {
        self.heartbeats.insert(slot, now);
    }

    /// Last heartbeat cycle recorded for a kernel slot.
    pub fn heartbeat(&self, slot: u16) -> Option<u64> {
        self.heartbeats.get(&slot).copied()
    }

    /// Queue a restart notice: the named kernel was reloaded under `id`
    /// and the executive should re-register its application-kernel
    /// instance.
    pub fn push_restart_notice(&mut self, name: &str, id: ObjId) {
        self.restart_notices.push_back((name.to_string(), id));
    }

    /// Pop the oldest pending restart notice.
    pub fn take_restart_notice(&mut self) -> Option<(String, ObjId)> {
        self.restart_notices.pop_front()
    }

    /// Restart notices awaiting the executive.
    pub fn pending_restart_notices(&self) -> usize {
        self.restart_notices.len()
    }

    /// Reclaim everything a dead kernel had loaded (first-kernel
    /// privilege). Marks the kernel dead first if the caller has not
    /// already; then one dependency-ordered sweep — threads, mappings,
    /// spaces, kernel object — under a single shootdown batch. Every
    /// orphan is written back (redirected to the first kernel), the
    /// kernel-object writeback the SRM restarts from is queued last, and
    /// a `KernelRecovered` event closes the episode.
    pub fn recover_kernel(
        &mut self,
        caller: ObjId,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<RecoveryReport> {
        self.require_first(caller)?;
        if Some(id) == self.first_kernel {
            return Err(CkError::Invalid);
        }
        self.kernel(id)?;
        if !self.kernel_failed(id) {
            self.mark_kernel_failed(id)?;
        }
        // Census before the sweep, for the report and the counters.
        let spaces = self.spaces.ids_where(|s| s.owner == id);
        let mut report = RecoveryReport {
            spaces: spaces.len() as u32,
            ..RecoveryReport::default()
        };
        for &sp in &spaces {
            if let Some(s) = self.spaces.get(sp) {
                report.mappings += s.pt.iter().count() as u32;
            }
            report.threads += self.threads.ids_where(|t| t.desc.space == sp).len() as u32;
        }
        mpm.clock.charge(
            CacheKernel::copy_cost(mpm, core::mem::size_of::<crate::objects::KernelDesc>())
                + mpm.config.cost.signal_fast,
        );
        let desc = self.do_unload_kernel(id, mpm)?;
        // The sweep is reclamation-driven displacement: tick the
        // writebacks arrays so `loaded = resident + unloaded + reclaimed`
        // balances across a crash.
        self.stats.writebacks[CkStats::idx_pub(ObjKind::Thread)] += u64::from(report.threads);
        self.stats.writebacks[CkStats::idx_pub(ObjKind::AddrSpace)] += u64::from(report.spaces);
        self.stats.writebacks[STAT_MAPPING] += u64::from(report.mappings);
        self.stats.writebacks[CkStats::idx_pub(ObjKind::Kernel)] += 1;
        let first = self.first_kernel();
        self.queue_writeback(Writeback::Kernel {
            owner: first,
            id,
            desc,
        });
        self.dead_kernels.remove(&id.slot);
        self.heartbeats.remove(&id.slot);
        self.emit(KernelEvent::KernelRecovered {
            kernel: id,
            orphans: report.orphans(),
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::CkConfig;
    use crate::objects::*;
    use hw::{MachineConfig, Mpm, Paddr, Vaddr};

    fn setup() -> (CacheKernel, Mpm, ObjId, ObjId) {
        let mut ck = CacheKernel::new(CkConfig::default());
        let mut mpm = Mpm::new(MachineConfig::default());
        let first = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let app = ck
            .load_kernel(
                first,
                KernelDesc {
                    memory_access: MemoryAccessArray::all(),
                    ..KernelDesc::default()
                },
                &mut mpm,
            )
            .unwrap();
        let sp = ck.load_space(app, SpaceDesc::default(), &mut mpm).unwrap();
        for i in 0..4u32 {
            ck.load_mapping(
                app,
                sp,
                Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x40_0000 + i * 0x1000),
                hw::Pte::WRITABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        ck.load_thread(app, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        (ck, mpm, first, app)
    }

    #[test]
    fn mark_failed_redirects_writebacks_and_refuses_first() {
        let (mut ck, _mpm, first, app) = setup();
        assert!(matches!(
            ck.mark_kernel_failed(first),
            Err(CkError::FirstKernelOnly)
        ));
        ck.mark_kernel_failed(app).unwrap();
        assert!(ck.kernel_failed(app));
        assert!(matches!(
            ck.mark_kernel_failed(app),
            Err(CkError::KernelDead(_))
        ));
        // A writeback addressed to the dead kernel lands on the SRM.
        ck.queue_writeback(Writeback::Space {
            owner: app,
            id: ObjId::new(ObjKind::AddrSpace, 9, 1),
        });
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].owner(), first);
    }

    #[test]
    fn recover_sweeps_everything_and_reports() {
        let (mut ck, mut mpm, first, app) = setup();
        ck.mark_kernel_failed(app).unwrap();
        let before_events = ck.stats.events_emitted;
        let report = ck.recover_kernel(first, app, &mut mpm).unwrap();
        assert_eq!(report.threads, 1);
        assert_eq!(report.spaces, 1);
        assert_eq!(report.mappings, 4);
        assert_eq!(report.orphans(), 6);
        assert!(ck.stats.events_emitted > before_events);
        assert_eq!(ck.stats.kernels_recovered, 1);
        assert_eq!(ck.stats.orphans_reclaimed, 6);
        // The kernel object is gone; its id is stale; nothing leaks.
        assert!(ck.kernel(app).is_err());
        assert!(!ck.kernel_failed(app));
        assert_eq!(ck.occupancy()[3].0, 0, "physmap records reclaimed");
        ck.check_invariants().unwrap();
        // The writebacks were all redirected to the first kernel, ending
        // with the kernel object the SRM restarts from.
        let wbs = ck.take_writebacks();
        assert!(wbs.iter().all(|wb| wb.owner() == first));
        assert!(matches!(wbs.last(), Some(Writeback::Kernel { id, .. }) if *id == app));
    }

    #[test]
    fn recover_requires_first_kernel_privilege() {
        let (mut ck, mut mpm, _first, app) = setup();
        assert!(matches!(
            ck.recover_kernel(app, app, &mut mpm),
            Err(CkError::FirstKernelOnly)
        ));
    }

    #[test]
    fn recover_unmarked_kernel_marks_it_first() {
        let (mut ck, mut mpm, first, app) = setup();
        ck.recover_kernel(first, app, &mut mpm).unwrap();
        assert_eq!(ck.stats.kernels_failed, 1);
        assert_eq!(ck.stats.kernels_recovered, 1);
    }
}
