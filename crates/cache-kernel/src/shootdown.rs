//! Deferred TLB/reverse-TLB shootdown batching.
//!
//! Table 2 shows unloads costing more than loads purely because every
//! mapping unload broadcasts a cross-CPU TLB/reverse-TLB invalidation.
//! That is the right shape for a *single* unload, but a compound
//! operation — a range unload, a space/thread/kernel teardown, the §4.2
//! multi-mapping consistency flush — would pay one full inter-processor
//! round per page. A [`ShootdownBatch`] collects every invalidation the
//! compound operation produces and [`CacheKernel::finish_shootdown`]
//! issues them as **one** round: `shootdown_cost` is charged once, the
//! per-ASID page lists coalesce to a wholesale ASID flush past the TLB
//! capacity, and the frame list coalesces to a full reverse-TLB clear
//! past its capacity. Single-page unloads keep the eager path so the
//! per-operation Table 2 costs are untouched.

use crate::ck::CacheKernel;
use crate::events::KernelEvent;
use hw::{Asid, Mpm, Pfn, Vpn};

/// Invalidations collected across one compound operation, issued as a
/// single cross-CPU round. The Cache Kernel keeps one batch as reusable
/// scratch so teardown paths allocate only while a batch grows past its
/// high-water mark.
#[derive(Debug, Default)]
pub struct ShootdownBatch {
    /// `(asid, vpn)` page translations to drop.
    pages: Vec<(Asid, Vpn)>,
    /// Address spaces flushed wholesale.
    asids: Vec<Asid>,
    /// Frames whose reverse-TLB entries drop.
    frames: Vec<Pfn>,
    /// Threads whose reverse-TLB entries drop.
    threads: Vec<u32>,
}

impl ShootdownBatch {
    /// Record a page unload: its translation and its frame's reverse-TLB
    /// entry both drop at the batch flush.
    pub fn add_page(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) {
        self.pages.push((asid, vpn));
        self.frames.push(pfn);
    }

    /// Record a wholesale ASID flush (space teardown). Pending page
    /// flushes under this ASID are subsumed at the batch flush.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.asids.push(asid);
    }

    /// Record a thread whose reverse-TLB entries drop (thread teardown).
    pub fn add_thread(&mut self, slot: u32) {
        self.threads.push(slot);
    }

    /// Whether the batch holds nothing to flush.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
            && self.asids.is_empty()
            && self.frames.is_empty()
            && self.threads.is_empty()
    }

    /// Page flushes recorded so far.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn clear(&mut self) {
        self.pages.clear();
        self.asids.clear();
        self.frames.clear();
        self.threads.clear();
    }
}

impl Drop for ShootdownBatch {
    /// A batch must go back through [`CacheKernel::finish_shootdown`]:
    /// dropping one with queued invalidations would leave stale TLB and
    /// reverse-TLB entries on other CPUs. Debug builds abort early-return
    /// paths that lose a batch; release builds keep going (the entries go
    /// stale, not unsafe, in the simulation).
    fn drop(&mut self) {
        debug_assert!(
            std::thread::panicking() || self.is_empty(),
            "ShootdownBatch dropped with {} page / {} asid / {} frame / {} thread \
             invalidations queued; pass it to finish_shootdown",
            self.pages.len(),
            self.asids.len(),
            self.frames.len(),
            self.threads.len(),
        );
    }
}

impl CacheKernel {
    /// Borrow the reusable scratch batch for a compound operation. Pair
    /// with [`CacheKernel::finish_shootdown`], which returns it. A nested
    /// take (re-entrant teardown) just yields a fresh empty batch.
    pub(crate) fn take_shootdown_batch(&mut self) -> ShootdownBatch {
        core::mem::take(&mut self.batch_scratch)
    }

    /// Apply `batch`'s invalidations as a *local* flush: no IPI round is
    /// charged because the caller has established that no other CPU can
    /// hold the stale translations. `transfer_mapping` qualifies — the
    /// frame is single-mapped and the handoff is synchronized by the send
    /// trap (sender's CPU flushes locally as part of the trap it is
    /// already in) and the delivery signal (the receiver cannot touch the
    /// destination address before the signal lands, after the new mapping
    /// is installed). State-wise the entries are still dropped everywhere,
    /// keeping the simulated TLBs conservative. A sharded kernel falls
    /// back to the full round: remote executives must hear about the
    /// invalidation via the mesh regardless.
    pub(crate) fn finish_shootdown_local(&mut self, mut batch: ShootdownBatch, mpm: &mut Mpm) {
        if self.config.shard_fanout >= 2 {
            return self.finish_shootdown(batch, mpm);
        }
        if batch.is_empty() {
            self.batch_scratch = batch;
            return;
        }
        batch.pages.sort_unstable_by_key(|&(a, v)| (a, v.0));
        batch.pages.dedup();
        batch.frames.sort_unstable();
        batch.frames.dedup();
        batch.threads.sort_unstable();
        batch.threads.dedup();
        mpm.flush_pages_all_cpus(&batch.pages);
        mpm.flush_asids_all_cpus(&batch.asids);
        mpm.rtlb_invalidate_many(&batch.frames);
        mpm.rtlb_invalidate_threads_all_cpus(&batch.threads);
        self.stats.transfer_local_flushes += 1;
        batch.clear();
        self.batch_scratch = batch;
    }

    /// Issue everything `batch` collected as one cross-CPU shootdown
    /// round, charging `shootdown_cost` once, then return the (cleared)
    /// batch to the scratch slot. An empty batch costs nothing.
    pub(crate) fn finish_shootdown(&mut self, mut batch: ShootdownBatch, mpm: &mut Mpm) {
        if batch.is_empty() {
            self.batch_scratch = batch;
            return;
        }
        let pages_requested = batch.pages.len();

        // Coalesce: once an ASID has at least a TLB's worth of pending
        // page flushes the per-page IPI payload is pure waste — flush the
        // ASID wholesale. Space teardown pre-records its ASID here too.
        let tlb_cap = mpm
            .cpus
            .first()
            .map(|c| c.tlb.capacity())
            .unwrap_or(usize::MAX);
        batch.pages.sort_unstable_by_key(|&(a, v)| (a, v.0));
        batch.pages.dedup();
        {
            let mut i = 0;
            while i < batch.pages.len() {
                let asid = batch.pages[i].0;
                let mut j = i + 1;
                while j < batch.pages.len() && batch.pages[j].0 == asid {
                    j += 1;
                }
                if j - i >= tlb_cap && !batch.asids.contains(&asid) {
                    batch.asids.push(asid);
                }
                i = j;
            }
        }
        batch.asids.sort_unstable();
        batch.asids.dedup();
        if !batch.asids.is_empty() {
            let asids = &batch.asids;
            batch.pages.retain(|(a, _)| asids.binary_search(a).is_err());
        }

        // Same for the reverse TLB: past its capacity, clear it outright.
        batch.frames.sort_unstable();
        batch.frames.dedup();
        let rtlb_cap = mpm
            .cpus
            .first()
            .map(|c| c.rtlb.capacity())
            .unwrap_or(usize::MAX);
        let rtlb_all = batch.frames.len() >= rtlb_cap;
        batch.threads.sort_unstable();
        batch.threads.dedup();

        // One inter-processor round covers every collected invalidation.
        mpm.clock.charge(Self::shootdown_cost(mpm));
        mpm.flush_pages_all_cpus(&batch.pages);
        mpm.flush_asids_all_cpus(&batch.asids);
        if rtlb_all {
            mpm.rtlb_clear_all_cpus();
        } else {
            mpm.rtlb_invalidate_many(&batch.frames);
        }
        mpm.rtlb_invalidate_threads_all_cpus(&batch.threads);

        // In a sharded machine the other CPUs live behind other
        // executives: the same round goes out once as an explicit
        // broadcast message instead of a shared-memory walk of their
        // TLBs (the §4.2 consistency action as message exchange). The
        // eager single-page path stays shard-local so Table 2's
        // per-operation costs are untouched.
        if self.config.shard_fanout >= 2 {
            self.shard_exports.push(crate::shardmsg::ShardExport {
                dst: crate::shardmsg::ShardDst::All,
                msg: crate::shardmsg::ShardMsg::Shootdown(crate::shardmsg::RemoteShootdown {
                    pages: batch.pages.clone(),
                    asids: batch.asids.clone(),
                    frames: if rtlb_all {
                        Vec::new()
                    } else {
                        batch.frames.clone()
                    },
                    threads: batch.threads.clone(),
                    rtlb_clear: rtlb_all,
                }),
            });
        }

        let frames = batch.frames.len() as u32;
        let asids = batch.asids.len() as u32;
        batch.clear();
        self.batch_scratch = batch;
        if self.shootdown_events {
            self.emit(KernelEvent::Shootdown {
                pages: pages_requested as u32,
                frames,
                asids,
            });
        } else {
            self.stats.note_shootdown_round(pages_requested as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ck::{CacheKernel, CkConfig};
    use crate::events::KernelEvent;
    use crate::objects::{KernelDesc, MemoryAccessArray, SpaceDesc, ThreadDesc};
    use hw::{MachineConfig, Mpm, Paddr, Pte, Vaddr};

    fn setup(mappings: usize) -> (CacheKernel, Mpm, crate::ids::ObjId) {
        let mut ck = CacheKernel::new(CkConfig {
            kernel_slots: 4,
            space_slots: 8,
            thread_slots: 16,
            mapping_capacity: mappings + 16,
            ..CkConfig::default()
        });
        let mpm = Mpm::new(MachineConfig {
            phys_frames: mappings + 1024,
            l2_bytes: 8 * 1024 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        (ck, mpm, srm)
    }

    /// Regression: a compound space teardown issues exactly one shootdown
    /// round, regardless of how many mappings and threads it covers.
    #[test]
    fn space_teardown_is_one_shootdown_round() {
        for n in [1usize, 64, 512] {
            let (mut ck, mut mpm, srm) = setup(n);
            let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
            let t = ck
                .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
                .unwrap();
            for i in 0..n as u32 {
                ck.load_mapping(
                    srm,
                    sp,
                    Vaddr(0x10_0000 + i * 0x1000),
                    Paddr(0x40_0000 + i * 0x1000),
                    Pte::WRITABLE,
                    None,
                    None,
                    &mut mpm,
                )
                .unwrap();
            }
            let _ = t;
            let before = ck.stats.shootdown_rounds;
            ck.unload_space(srm, sp, &mut mpm).unwrap();
            assert_eq!(
                ck.stats.shootdown_rounds - before,
                1,
                "teardown of a {n}-mapping space must cost one round"
            );
        }
    }

    /// A multi-page range unload batches into one round carrying the page
    /// count; a single-page range keeps the eager path (no batch).
    #[test]
    fn range_unload_batches_and_single_page_stays_eager() {
        let (mut ck, mut mpm, srm) = setup(64);
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        for i in 0..8u32 {
            ck.load_mapping(
                srm,
                sp,
                Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x40_0000 + i * 0x1000),
                Pte::WRITABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        let (r0, b0) = (ck.stats.shootdown_rounds, ck.stats.shootdown_batches);
        let out = ck
            .unload_mapping_range(srm, sp, Vaddr(0x10_1000), 7 * 0x1000, &mut mpm)
            .unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(ck.stats.shootdown_rounds - r0, 1);
        assert_eq!(ck.stats.shootdown_batches - b0, 1);
        assert_eq!(ck.stats.shootdown_batched_pages, 7);
        // The one remaining page goes down the eager path: a round, but
        // not a batch.
        let (r1, b1) = (ck.stats.shootdown_rounds, ck.stats.shootdown_batches);
        let out = ck
            .unload_mapping_range(srm, sp, Vaddr(0x10_0000), 0x1000, &mut mpm)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(ck.stats.shootdown_rounds - r1, 1);
        assert_eq!(ck.stats.shootdown_batches - b1, 0);
    }

    /// Past a TLB's worth of pages in one address space the batch
    /// coalesces to a wholesale ASID flush, and past the reverse-TLB
    /// capacity the frame list becomes a full clear. The traced event
    /// records both.
    #[test]
    fn batch_coalesces_past_tlb_capacity() {
        let tlb_cap = hw::Mpm::new(MachineConfig::default()).cpus[0]
            .tlb
            .capacity();
        let n = tlb_cap + 16;
        let (mut ck, mut mpm, srm) = setup(n);
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        for i in 0..n as u32 {
            ck.load_mapping(
                srm,
                sp,
                Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x40_0000 + i * 0x1000),
                Pte::WRITABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        ck.drain_events();
        ck.unload_mapping_range(srm, sp, Vaddr(0x10_0000), (n as u32) * 0x1000, &mut mpm)
            .unwrap();
        let shoot: Vec<_> = ck
            .drain_events()
            .into_iter()
            .filter_map(|ev| match ev {
                KernelEvent::Shootdown {
                    pages,
                    frames,
                    asids,
                } => Some((pages, frames, asids)),
                _ => None,
            })
            .collect();
        assert_eq!(shoot.len(), 1, "one round for the whole range");
        let (pages, _frames, asids) = shoot[0];
        assert_eq!(pages as usize, n);
        assert_eq!(asids, 1, "per-page flushes coalesced to an ASID flush");
        // The hardware state agrees: nothing left in any TLB.
        let asid = CacheKernel::asid_of(sp);
        for cpu in mpm.cpus.iter_mut() {
            for i in 0..n as u32 {
                assert!(cpu.tlb.lookup(asid, hw::Vpn(0x100 + i)).is_none());
            }
        }
    }

    /// A thread teardown with signal mappings rides one round too.
    #[test]
    fn thread_teardown_with_signal_mappings_is_one_round() {
        let (mut ck, mut mpm, srm) = setup(64);
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        for i in 0..6u32 {
            ck.load_mapping(
                srm,
                sp,
                Vaddr(0x20_0000 + i * 0x1000),
                Paddr(0x50_0000 + i * 0x1000),
                Pte::MESSAGE,
                Some(t),
                None,
                &mut mpm,
            )
            .unwrap();
        }
        let before = ck.stats.shootdown_rounds;
        ck.unload_thread(srm, t, &mut mpm).unwrap();
        assert_eq!(ck.stats.shootdown_rounds - before, 1);
        assert!(!ck.physmap.thread_has_signals(t.slot as u32));
    }
}
