//! Cross-shard messages.
//!
//! The sharded machine ([`exec::Machine`]) runs one executive per
//! simulated CPU, each owning its shard of kernel state: its object-cache
//! partition, its physmap partition, its per-CPU ready queue and its
//! counter cell. No executive ever touches another's shard directly;
//! every cross-CPU interaction is one of these messages on a bounded
//! SPSC ring between the two executives ([`hw::ring`]). The Cache Kernel
//! itself stays single-threaded — it only *exports* messages into
//! [`CacheKernel::shard_exports`]; the machine layer routes them.
//!
//! [`exec::Machine`]: crate::exec::Machine
//! [`CacheKernel::shard_exports`]: crate::ck::CacheKernel
//! [`hw::ring`]: hw::ring

use crate::objects::Priority;
use crate::program::Program;
use hw::{Asid, Packet, Paddr, Pfn, Vpn};

/// One TLB/reverse-TLB consistency round, summarized for broadcast to
/// the other shards of a machine. Mirrors what
/// [`finish_shootdown`](crate::ck::CacheKernel) applies locally: the
/// receiving executive flushes the listed translations from its own
/// CPU's TLB/rTLB, which is exactly the inter-processor interrupt the
/// paper's §4.2 consistency actions pay for.
#[derive(Clone, Debug, Default)]
pub struct RemoteShootdown {
    /// `(asid, vpn)` page translations to drop.
    pub pages: Vec<(Asid, Vpn)>,
    /// Address spaces flushed wholesale.
    pub asids: Vec<Asid>,
    /// Frames whose reverse-TLB entries drop (empty when `rtlb_clear`).
    pub frames: Vec<Pfn>,
    /// Threads whose reverse-TLB entries drop.
    pub threads: Vec<u32>,
    /// The frame list coalesced past the reverse-TLB capacity: clear the
    /// whole reverse TLB instead.
    pub rtlb_clear: bool,
}

/// A displaced descriptor shipped to its home shard (the sharded
/// machine's stand-in for writeback delivery toward the SRM): the home
/// shard archives the bytes the way the SRM keeps written-back
/// descriptors as restart state.
#[derive(Clone, Debug)]
pub struct WbShipment {
    /// Shard the descriptor was displaced on.
    pub from: usize,
    /// Object-kind index (same indices as the `loads`/`writebacks`
    /// counter arrays).
    pub class: u8,
    /// Serialized descriptor.
    pub bytes: Vec<u8>,
}

/// One unit of deferred work: a program plus the priority its thread
/// spawns at. Jobs sit in an executive's backlog until admitted into the
/// thread cache, and migrate between shards through idle steal.
pub struct Job {
    /// The program the spawned thread runs.
    pub program: Box<dyn Program>,
    /// Thread priority at spawn.
    pub priority: Priority,
}

/// A message between two executives of a sharded machine.
pub enum ShardMsg {
    /// A fabric packet: in a sharded machine the rings *are* the
    /// interconnect, so inter-shard packets ride them instead of the
    /// cluster fabric.
    Packet(Packet),
    /// A cross-shard MMU consistency round (§4.2 as explicit message
    /// exchange rather than shared mutation).
    Shootdown(RemoteShootdown),
    /// An address-valued signal raised on a page homed on the receiving
    /// shard (cross-shard signal fan-out).
    Signal {
        /// Physical address the signal is raised on.
        paddr: Paddr,
    },
    /// A displaced descriptor travelling to its home shard.
    Writeback(WbShipment),
    /// An idle shard asking `thief`'s next victim for work.
    StealRequest {
        /// The requesting shard.
        thief: usize,
    },
    /// Work granted to a steal request (possibly empty: the victim had
    /// no backlog, and the thief moves to its next victim).
    Work(Vec<Job>),
}

impl ShardMsg {
    /// Diagnostic tag (trace lines, tests).
    pub fn tag(&self) -> &'static str {
        match self {
            ShardMsg::Packet(_) => "packet",
            ShardMsg::Shootdown(_) => "shootdown",
            ShardMsg::Signal { .. } => "signal",
            ShardMsg::Writeback(_) => "writeback",
            ShardMsg::StealRequest { .. } => "steal-request",
            ShardMsg::Work(_) => "work",
        }
    }
}

/// Where an exported message is bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardDst {
    /// Every other shard of the machine (consistency rounds).
    All,
    /// One specific shard.
    Node(usize),
}

/// A message the Cache Kernel (or an application kernel through
/// [`Env::ck`](crate::appkernel::Env)) queued for the machine layer to
/// route. Lower layers never touch rings directly; they push here and
/// the executive's owner drains it after every quantum.
pub struct ShardExport {
    /// Destination shard(s).
    pub dst: ShardDst,
    /// The message.
    pub msg: ShardMsg,
}
