//! The unified counter registry.
//!
//! Every observable the Cache Kernel exposes to the evaluation harness
//! lives here in one `Counters` struct. The per-event counters are
//! ticked at a single choke point — [`CacheKernel::emit`] — as kernel
//! events enter the pipeline; only the object-cache traffic counters
//! (`loads`/`unloads`/`writebacks`) are ticked at their operation sites
//! because their semantics are finer than event granularity (the
//! `writebacks` array counts *reclamation-driven* displacement only,
//! not every writeback queued, which is the replacement-interference
//! figure of §5.2).
//!
//! [`CacheKernel::emit`]: crate::ck::CacheKernel::emit

use crate::events::KernelEvent;
use crate::ids::ObjKind;

/// Operation counters, read by the evaluation harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Object loads by kind: kernels, spaces, threads, mappings.
    pub loads: [u64; 4],
    /// Explicit unloads by kind.
    pub unloads: [u64; 4],
    /// Reclamation-driven writebacks by kind (replacement interference).
    pub writebacks: [u64; 4],
    /// Signals delivered via the reverse-TLB fast path.
    pub signals_fast: u64,
    /// Signals delivered via the two-stage lookup.
    pub signals_slow: u64,
    /// Batched delivery rounds flushed (2+ raises each; a batch of one
    /// takes the eager path and ticks the fast/slow counters instead).
    pub signal_batches: u64,
    /// Raises delivered through batched rounds (those that reached at
    /// least one receiver). `signals_batched / signal_batches` is the
    /// coalescing ratio `report` prints.
    pub signals_batched: u64,
    /// Unique pages resolved across batched rounds: the two-stage
    /// lookups actually charged, versus `signals_batched` had each raise
    /// paid its own.
    pub signal_batch_pages: u64,
    /// Signals dropped at a thread's configured queue bound
    /// (`signal_queue_bound`; 0 and the counter never moves).
    pub signals_dropped: u64,
    /// Faults forwarded to application kernels.
    pub faults_forwarded: u64,
    /// Traps forwarded to application kernels.
    pub traps_forwarded: u64,
    /// Mappings flushed for multi-mapping consistency.
    pub consistency_flushes: u64,
    /// Message pages remapped between spaces by `transfer_mapping` (the
    /// zero-copy channel handoff).
    pub mapping_transfers: u64,
    /// Transfer teardowns resolved with a local TLB flush instead of an
    /// IPI round (single-mapped message page, handoff synchronized by
    /// the send trap and the delivery signal).
    pub transfer_local_flushes: u64,
    /// Cross-CPU TLB/reverse-TLB shootdown rounds issued (eager and
    /// batched).
    pub shootdown_rounds: u64,
    /// Batched rounds among them: one per compound operation (range
    /// unload, space/thread/kernel teardown, consistency flush).
    pub shootdown_batches: u64,
    /// Page flushes folded into batched rounds. `shootdown_batched_pages
    /// / shootdown_batches` is the batching ratio `report` prints.
    pub shootdown_batched_pages: u64,
    /// Total events entered into the pipeline.
    pub events_emitted: u64,
    /// Total events delivered by an executive's pump.
    pub events_delivered: u64,
    /// Writebacks queued toward application kernels (all causes).
    pub writebacks_queued: u64,
    /// Device interrupts (clock ticks, Ethernet receive completions).
    pub device_interrupts: u64,
    /// Fabric packets entered for local delivery.
    pub packets: u64,
    /// Accounting periods closed (§4.3).
    pub accounting_periods: u64,
    /// Thread terminations processed through the pipeline.
    pub thread_exits: u64,
    /// Failures injected by an active fault plan (frame loss/duplication,
    /// device errors, kernel kills).
    pub faults_injected: u64,
    /// Application kernels declared dead.
    pub kernels_failed: u64,
    /// Dead kernels whose objects were fully reclaimed.
    pub kernels_recovered: u64,
    /// Orphaned objects (threads + spaces + mappings) swept during
    /// dead-kernel recovery.
    pub orphans_reclaimed: u64,
    /// Reliable-RPC retransmissions sent after a timeout.
    pub rpc_retries: u64,
    /// Duplicate reliable-RPC frames suppressed at the receiver.
    pub rpc_duplicates_dropped: u64,
    /// Loads shed with `Again` by overload protection (reservation
    /// defence, share watermark, or writeback backpressure).
    pub loads_shed: u64,
    /// Low-value events (accounting ticks) dropped because the event
    /// queue hit its configured bound.
    pub events_dropped: u64,
    /// Writebacks redirected to the first kernel because the addressed
    /// kernel's writeback queue hit its bound.
    pub wb_overflow_redirects: u64,
    /// `ThrashDetected` events raised: a (kernel, class) pair's
    /// displacement→reload reuse distance collapsed below threshold.
    pub thrash_detected: u64,
    /// Malformed or misaddressed network frames (DSM, SRM RPC) dropped
    /// at decode instead of panicking the executive.
    pub frames_rejected: u64,
    /// Peer-table entries expired after `peer_expiry_ticks` silent ticks.
    pub peers_expired: u64,
    /// Cluster peers declared dead by the membership protocol.
    pub nodes_down: u64,
    /// Cluster peers that rejoined after a partition healed or a restart.
    pub nodes_rejoined: u64,
    /// Membership epoch advances (local bumps and adoptions).
    pub epoch_changes: u64,
    /// Stale-epoch DSM replies fenced off (late LINE/NACK from a
    /// pre-partition owner rejected and the fetch re-driven).
    pub stale_rejected: u64,
    /// DSM lines re-homed from a dead or partitioned owner to the lowest
    /// live node by the reclamation sweep.
    pub lines_rehomed: u64,
    /// Cross-shard messages sent onto the SPSC rings.
    pub shard_msgs_sent: u64,
    /// Cross-shard messages delivered off the rings and processed.
    pub shard_msgs_delivered: u64,
    /// Sends deferred because the destination ring was full (the message
    /// is retried next quantum — backpressure, never loss, never panic).
    pub rings_full: u64,
    /// Shootdown rounds received from another shard and applied to this
    /// shard's TLB/reverse-TLB.
    pub remote_shootdowns: u64,
    /// Jobs migrated to another shard through idle steal.
    pub shard_steals: u64,
    /// Displaced descriptors shipped to their home shard.
    pub wb_shipped: u64,
    /// Jobs admitted from the backlog into the thread cache.
    pub jobs_admitted: u64,
    /// Executive threads that panicked in free-running mode (the shard
    /// is declared failed and the machine keeps going).
    pub threads_panicked: u64,
    /// Operations denied by capability enforcement (`caps_enforce`):
    /// out-of-grant maps, forged writeback targets, bystander signal
    /// registrations, grant-escalation attempts. Balanced one-to-one
    /// against raised `CapViolation` events. Never moves with the knob
    /// off.
    pub cap_denied: u64,
    /// Mapping writebacks shipped with an opaque payload handle in
    /// metadata-only mode (`metadata_only`). Never moves with the knob
    /// off.
    pub metadata_writebacks: u64,
    /// Serving workload: requests admitted by a front kernel (folded
    /// from `web_serving` stats; never moves without the workload).
    pub requests_admitted: u64,
    /// Serving workload: requests completed (hit + miss + remote).
    pub requests_completed: u64,
    /// Serving workload: requests shed at the admission bound.
    pub requests_shed: u64,
    /// Serving workload: per-request deadlines that expired in flight.
    pub deadlines_expired: u64,
    /// Serving workload: retries denied by a drained per-kernel
    /// `RetryBudget` — each is a counted drop, never a re-drive.
    pub retry_budget_denied: u64,
    /// Peers that crossed the *suspect-slow* membership line (answering,
    /// but late). Entry edges only; no epoch is minted for these. Never
    /// moves without a delay schedule.
    pub nodes_suspected_slow: u64,
    /// Serving workload: hedged duplicate fetches sent after the hedge
    /// delay lapsed (each one spent a retry-budget token).
    pub hedges_sent: u64,
    /// Serving workload: hedges whose duplicate answered first.
    pub hedges_won: u64,
    /// Serving workload: hedges that lost the race (or whose request
    /// expired) — the duplicate's work was wasted.
    pub hedges_wasted: u64,
    /// Reliable-link data frames that arrived out of order (fresh, but
    /// behind a higher sequence already seen) — possible only once a
    /// delay schedule reorders the fabric. Delivered normally.
    pub frames_reordered: u64,
}

/// The historical name: the counters began as the Cache Kernel's stats
/// block and the harness reads them under this alias.
pub type CkStats = Counters;

/// Index of the mapping "kind" in the stats arrays.
pub const STAT_MAPPING: usize = 3;

impl Counters {
    pub(crate) fn idx(kind: ObjKind) -> usize {
        match kind {
            ObjKind::Kernel => 0,
            ObjKind::AddrSpace => 1,
            ObjKind::Thread => 2,
        }
    }

    /// Stats-array index of an object kind (mappings use
    /// [`STAT_MAPPING`]).
    pub fn idx_pub(kind: ObjKind) -> usize {
        Self::idx(kind)
    }

    /// Tick the counters for one event entering the pipeline. This is
    /// called from exactly one place, [`CacheKernel::emit`].
    ///
    /// [`CacheKernel::emit`]: crate::ck::CacheKernel::emit
    #[inline]
    pub(crate) fn tick(&mut self, ev: &KernelEvent) {
        self.events_emitted += 1;
        match ev {
            KernelEvent::FaultForward { .. } => self.faults_forwarded += 1,
            KernelEvent::TrapForward { .. } => self.traps_forwarded += 1,
            KernelEvent::Signal { fast, .. } => {
                if *fast {
                    self.signals_fast += 1;
                } else {
                    self.signals_slow += 1;
                }
            }
            KernelEvent::Writeback(_) => self.writebacks_queued += 1,
            KernelEvent::Shootdown { pages, .. } => self.note_shootdown_round(*pages as u64),
            KernelEvent::DeviceInterrupt { .. } => self.device_interrupts += 1,
            KernelEvent::PacketArrived { .. } => self.packets += 1,
            KernelEvent::AccountingPeriodEnd { .. } => self.accounting_periods += 1,
            KernelEvent::ThreadExit { .. } => self.thread_exits += 1,
            KernelEvent::KernelFailed { .. } => self.kernels_failed += 1,
            KernelEvent::KernelRecovered { orphans, .. } => {
                self.kernels_recovered += 1;
                self.orphans_reclaimed += u64::from(*orphans);
            }
            KernelEvent::ThrashDetected { .. } => self.thrash_detected += 1,
            KernelEvent::Cluster(ev) => match ev {
                crate::events::ClusterEvent::NodeDown { .. } => self.nodes_down += 1,
                crate::events::ClusterEvent::NodeRejoined { .. } => self.nodes_rejoined += 1,
                crate::events::ClusterEvent::EpochChanged { .. } => self.epoch_changes += 1,
                crate::events::ClusterEvent::NodeSlow { slow, .. } => {
                    if *slow {
                        self.nodes_suspected_slow += 1;
                    }
                }
            },
            KernelEvent::CapViolation { .. } => self.cap_denied += 1,
        }
    }

    /// Account one batched shootdown round covering `pages` page flushes.
    /// Called from `tick` when the round's event enters the pipeline, or
    /// directly when `shootdown_events` is off (tracepoint-style gate).
    #[inline]
    pub(crate) fn note_shootdown_round(&mut self, pages: u64) {
        self.shootdown_rounds += 1;
        self.shootdown_batches += 1;
        self.shootdown_batched_pages += pages;
    }

    /// Add `other`'s counts into `self`. The sharded machine keeps one
    /// `Counters` cell per CPU shard and merges them on read, so the hot
    /// path never shares a counter cache line across threads.
    ///
    /// Every field of `Counters` is a `u64` or an array of `u64` (the
    /// `_ALL_U64` assertion below pins the layout), so the merge is an
    /// element-wise sum over the struct's `u64` lanes — new counters are
    /// picked up automatically and can never be forgotten here.
    pub fn merge_from(&mut self, other: &Counters) {
        const LANES: usize = std::mem::size_of::<Counters>() / 8;
        // SAFETY: `Counters` is `Copy` with every field `u64`-typed (or
        // `[u64; 4]`), so it is exactly `LANES` aligned u64s with no
        // padding; both references are valid for that many lanes and
        // cannot overlap (`&mut` vs `&`).
        let dst =
            unsafe { std::slice::from_raw_parts_mut(self as *mut Counters as *mut u64, LANES) };
        let src =
            unsafe { std::slice::from_raw_parts(other as *const Counters as *const u64, LANES) };
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }
}

/// Layout guard for [`Counters::merge_from`]: the struct must stay an
/// integral number of u64 lanes with u64 alignment. Adding a non-u64
/// field breaks this assertion at compile time.
const _ALL_U64: () = {
    assert!(std::mem::size_of::<Counters>().is_multiple_of(8));
    assert!(std::mem::align_of::<Counters>() == 8);
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::KernelEvent;
    use hw::Paddr;

    #[test]
    fn tick_routes_each_event_kind() {
        let mut c = Counters::default();
        c.tick(&KernelEvent::Signal {
            paddr: Paddr(0x1000),
            receivers: 1,
            fast: true,
        });
        c.tick(&KernelEvent::Signal {
            paddr: Paddr(0x1000),
            receivers: 3,
            fast: false,
        });
        c.tick(&KernelEvent::DeviceInterrupt {
            source: crate::events::DeviceSource::Clock,
            paddr: Paddr(0x2000),
        });
        c.tick(&KernelEvent::AccountingPeriodEnd { period: 100 });
        assert_eq!(c.signals_fast, 1);
        assert_eq!(c.signals_slow, 1);
        assert_eq!(c.device_interrupts, 1);
        assert_eq!(c.accounting_periods, 1);
        assert_eq!(c.events_emitted, 4);
    }

    #[test]
    fn merge_sums_every_lane() {
        let mut a = Counters {
            loads: [1, 2, 3, 4],
            signals_fast: 7,
            rings_full: 1,
            ..Counters::default()
        };
        let b = Counters {
            loads: [10, 20, 30, 40],
            signals_fast: 3,
            threads_panicked: 2,
            ..Counters::default()
        };
        a.merge_from(&b);
        assert_eq!(a.loads, [11, 22, 33, 44]);
        assert_eq!(a.signals_fast, 10);
        assert_eq!(a.rings_full, 1);
        assert_eq!(a.threads_panicked, 2);
        // Merging a default is the identity on every lane.
        let before = a;
        a.merge_from(&Counters::default());
        assert_eq!(format!("{before:?}"), format!("{a:?}"));
    }

    #[test]
    fn kind_indices_are_stable() {
        assert_eq!(Counters::idx_pub(ObjKind::Kernel), 0);
        assert_eq!(Counters::idx_pub(ObjKind::AddrSpace), 1);
        assert_eq!(Counters::idx_pub(ObjKind::Thread), 2);
        assert_eq!(STAT_MAPPING, 3);
    }
}
