//! Overload protection for the object caches: reserved slots, writeback
//! backpressure, and the thrash detector.
//!
//! The caching model's failure mode under load is a *storm*, the dual of
//! a crash: a kernel whose working set exceeds its share of a descriptor
//! cache thrashes the clock hand, floods slow peers with writebacks, and
//! starves bystanders of slots. Three cooperating mechanisms bound the
//! damage:
//!
//! 1. **Reserved slots** ([`ReservedSlots`](crate::objects::ReservedSlots)
//!    per kernel, SRM-set): while a kernel holds at most
//!    its reservation of a class, *other* kernels' loads cannot displace
//!    its objects — the greedy load is shed with the retryable
//!    [`CkError::Again`](crate::error::CkError) instead.
//! 2. **Writeback backpressure** (`CkConfig::wb_queue_bound`): a kernel
//!    slow to drain its writeback queue has further displaced state
//!    spilled to the first kernel and its *own* loads shed, so neither
//!    its queue nor the executive's event queue grows without bound.
//! 3. **Thrash detection** (`CkConfig::thrash_window` et al.): per
//!    (kernel, object class), the interval between a reclamation
//!    displacement and the kernel's next load of that class is measured
//!    on the class's load clock. When the reuse distance collapses below
//!    the window `thrash_threshold` times consecutively, a
//!    `ThrashDetected` event is raised and the offender temporarily
//!    loses its second chance in clock-hand victim selection — its own
//!    objects are displaced preferentially, which is where the churn
//!    belongs.
//!
//! All state lives in this side table keyed by kernel slot, off the hot
//! object structs, so victim-selection closures can borrow it disjointly
//! from the caches they sweep. Everything defaults off (zero
//! reservations, unbounded writeback queues, detector disabled): the
//! no-overload fast path is a handful of integer compares.

use crate::counters::Counters;
use crate::error::{CkError, CkResult};
use crate::ids::{ObjId, ObjKind};
use crate::objects::ReservedSlots;
use std::collections::BTreeMap;

/// Per-(kernel, class) thrash-detector state. The "clock" is the global
/// per-class load counter (`Counters::loads[class]`), a deterministic
/// stand-in for time that advances exactly when reuse distance is
/// meaningful.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThrashState {
    /// Class-load clock at the kernel's most recent reclamation
    /// displacement of this class (`None` until one happens).
    pub last_displaced_at: Option<u64>,
    /// Consecutive displacement→reload intervals that fell inside the
    /// window.
    pub fast_reloads: u32,
    /// While the class-load clock is below this value the kernel is
    /// penalized in victim selection (no second chance).
    pub penalty_until: u64,
}

/// Per-kernel overload bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct KernelOverload {
    /// SRM-granted slot reservation. Lives here rather than on
    /// `KernelDesc` so the descriptor keeps its Table 2 copy cost and
    /// victim-selection closures read it without touching the kernel
    /// cache.
    pub reserved: ReservedSlots,
    /// Loaded (resident) object counts by stats class
    /// (kernel/space/thread/mapping), maintained at the load and unload
    /// choke points and cross-checked by `check_invariants`.
    pub resident: [u32; 4],
    /// Writebacks addressed to this kernel currently sitting in the
    /// event queue.
    pub wb_pending: u32,
    /// Thrash detector, one per object class.
    pub thrash: [ThrashState; 4],
}

/// Side table of per-kernel overload state, keyed by kernel slot.
#[derive(Clone, Debug, Default)]
pub struct OverloadState {
    kernels: BTreeMap<u16, KernelOverload>,
}

impl OverloadState {
    /// Read-only view of a kernel's overload record, if any activity has
    /// been recorded for it.
    pub fn get(&self, slot: u16) -> Option<&KernelOverload> {
        self.kernels.get(&slot)
    }

    /// Resident object count of `class` for the kernel in `slot`.
    #[inline]
    pub fn resident(&self, slot: u16, class: usize) -> u32 {
        self.kernels.get(&slot).map_or(0, |k| k.resident[class])
    }

    /// Undelivered writebacks addressed to the kernel in `slot`.
    #[inline]
    pub fn wb_pending(&self, slot: u16) -> u32 {
        self.kernels.get(&slot).map_or(0, |k| k.wb_pending)
    }

    /// Slot reservation of the kernel in `slot` (zeros when none set).
    #[inline]
    pub fn reserved(&self, slot: u16) -> ReservedSlots {
        self.kernels
            .get(&slot)
            .map_or_else(ReservedSlots::default, |k| k.reserved)
    }

    pub(crate) fn set_reserved(&mut self, slot: u16, reserved: ReservedSlots) {
        self.kernels.entry(slot).or_default().reserved = reserved;
    }

    /// Sum of `wb_pending` across all kernels (must equal the number of
    /// `Writeback` events in the queue; invariant-checked).
    pub fn wb_pending_total(&self) -> u64 {
        self.kernels.values().map(|k| u64::from(k.wb_pending)).sum()
    }

    pub(crate) fn note_load(&mut self, slot: u16, class: usize) {
        self.kernels.entry(slot).or_default().resident[class] += 1;
    }

    pub(crate) fn note_unload(&mut self, slot: u16, class: usize) {
        if let Some(k) = self.kernels.get_mut(&slot) {
            k.resident[class] = k.resident[class].saturating_sub(1);
        }
    }

    pub(crate) fn note_wb_queued(&mut self, slot: u16) {
        self.kernels.entry(slot).or_default().wb_pending += 1;
    }

    pub(crate) fn note_wb_drained(&mut self, slot: u16) {
        if let Some(k) = self.kernels.get_mut(&slot) {
            k.wb_pending = k.wb_pending.saturating_sub(1);
        }
    }

    /// Clear a kernel's record on unload/recovery. Resident counts and
    /// thrash state die with the kernel, but `wb_pending` tracks
    /// writebacks still sitting in the event queue addressed to this
    /// slot — the record survives until they drain, so the
    /// sum-of-pending invariant stays exact.
    pub(crate) fn reset_kernel(&mut self, slot: u16) {
        if let Some(k) = self.kernels.get_mut(&slot) {
            if k.wb_pending == 0 {
                self.kernels.remove(&slot);
            } else {
                k.reserved = ReservedSlots::default();
                k.resident = [0; 4];
                k.thrash = [ThrashState::default(); 4];
            }
        }
    }

    /// Record a reclamation displacement of `class` owned by `slot` at
    /// class-load clock `now`.
    pub(crate) fn note_displacement(&mut self, slot: u16, class: usize, now: u64) {
        self.kernels.entry(slot).or_default().thrash[class].last_displaced_at = Some(now);
    }

    /// Record a load of `class` by `slot` at class-load clock `now`.
    /// Returns `Some(fast_reloads)` when the detector fires: the
    /// displacement→reload interval stayed inside `window` for
    /// `threshold` consecutive loads. Firing arms the victim-selection
    /// penalty until `now + penalty` and re-arms the detector.
    pub(crate) fn note_reload(
        &mut self,
        slot: u16,
        class: usize,
        now: u64,
        window: u64,
        threshold: u32,
        penalty: u64,
    ) -> Option<u32> {
        if window == 0 {
            return None;
        }
        let t = &mut self.kernels.entry(slot).or_default().thrash[class];
        let Some(displaced) = t.last_displaced_at.take() else {
            // No displacement since the last load of this class: the
            // kernel is growing, not churning.
            t.fast_reloads = 0;
            return None;
        };
        if now.saturating_sub(displaced) <= window {
            t.fast_reloads += 1;
            if t.fast_reloads >= threshold {
                let fired = t.fast_reloads;
                t.fast_reloads = 0;
                t.penalty_until = now + penalty;
                return Some(fired);
            }
        } else {
            t.fast_reloads = 0;
        }
        None
    }

    /// Whether the kernel in `slot` is currently penalized for `class`
    /// at class-load clock `now` (penalized objects get no second chance
    /// from the clock hand).
    #[inline]
    pub fn penalized(&self, slot: u16, class: usize, now: u64) -> bool {
        self.kernels
            .get(&slot)
            .is_some_and(|k| now < k.thrash[class].penalty_until)
    }
}

impl crate::ck::CacheKernel {
    /// Record a shed load — tick the global counter and the shedding
    /// kernel's account — and build the retryable error to return.
    pub(crate) fn shed_load(&mut self, caller: ObjId, backoff: u32) -> CkError {
        self.stats.loads_shed += 1;
        self.accounts.entry(caller.slot).or_default().loads_shed += 1;
        CkError::Again { backoff }
    }

    /// Overload admission for a load of `class` by `caller` into a cache
    /// currently holding `len` of `cap` slots. Runs before any charge or
    /// stats tick, so a shed load leaves no trace beyond `loads_shed`.
    ///
    /// Two sheds live here (the third, reservation defence, sits in
    /// victim selection where the candidate victims are known):
    /// writeback backpressure — a kernel sitting on a full writeback
    /// queue may not load more until it drains — and the share watermark
    /// — past `watermark_pct` occupancy a kernel already holding
    /// `share_cap_pct` of the cache is shed. The first kernel is never
    /// shed; it must stay able to act as recovery and spill target.
    pub(crate) fn admit_load(
        &mut self,
        caller: ObjId,
        class: usize,
        len: usize,
        cap: usize,
    ) -> CkResult<()> {
        if Some(caller) == self.first_kernel {
            return Ok(());
        }
        let bound = self.config.wb_queue_bound;
        if bound != 0 && self.overload.wb_pending(caller.slot) as usize >= bound {
            // Draining a full queue takes longer than a slot coming
            // free: suggest double the base wait.
            let backoff = self.config.shed_backoff.saturating_mul(2);
            return Err(self.shed_load(caller, backoff));
        }
        let cap_pct = usize::from(self.config.share_cap_pct);
        let watermark = usize::from(self.config.watermark_pct);
        if cap_pct < 100
            && cap > 0
            && len * 100 >= cap * watermark
            && usize::try_from(self.overload.resident(caller.slot, class)).unwrap_or(usize::MAX)
                * 100
                >= cap * cap_pct
        {
            let backoff = self.config.shed_backoff;
            return Err(self.shed_load(caller, backoff));
        }
        Ok(())
    }

    /// Post-load bookkeeping: bump the owner's resident count and feed
    /// the thrash detector. Call *after* `stats.loads[class]` ticks so
    /// the class-load clock includes this load.
    pub(crate) fn note_loaded(&mut self, owner: ObjId, class: usize) {
        self.overload.note_load(owner.slot, class);
        let now = self.stats.loads[class];
        if let Some(fast_reloads) = self.overload.note_reload(
            owner.slot,
            class,
            now,
            self.config.thrash_window,
            self.config.thrash_threshold,
            self.config.thrash_penalty,
        ) {
            if let Some(kernel) = self.kernels.id_of_slot(owner.slot) {
                self.emit(crate::events::KernelEvent::ThrashDetected {
                    kernel,
                    class,
                    fast_reloads,
                });
            }
        }
    }

    /// Per-kernel resident object counts (kernel/space/thread/mapping
    /// classes), for the harness and overload tests.
    pub fn kernel_residency(&self, kernel: ObjId) -> CkResult<[u32; 4]> {
        self.kernel(kernel)?;
        Ok(self
            .overload
            .get(kernel.slot)
            .map_or([0; 4], |k| k.resident))
    }

    /// Undelivered writebacks addressed to `kernel` (the per-kernel
    /// writeback queue length the bound applies to).
    pub fn kernel_wb_pending(&self, kernel: ObjId) -> CkResult<u32> {
        self.kernel(kernel)?;
        Ok(self.overload.wb_pending(kernel.slot))
    }

    /// Whether `kernel` is currently penalized by the thrash detector
    /// for the given stats class.
    pub fn kernel_thrash_penalized(&self, kernel: ObjId, class: usize) -> bool {
        self.overload
            .penalized(kernel.slot, class, self.stats.loads[class])
    }

    /// Stats-class index helper re-exported for harness code building
    /// reservation tables.
    pub fn class_of(kind: ObjKind) -> usize {
        Counters::idx_pub(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_counts_track_loads_and_unloads() {
        let mut o = OverloadState::default();
        o.note_load(3, 2);
        o.note_load(3, 2);
        o.note_load(3, 1);
        assert_eq!(o.resident(3, 2), 2);
        assert_eq!(o.resident(3, 1), 1);
        o.note_unload(3, 2);
        assert_eq!(o.resident(3, 2), 1);
        // Underflow saturates instead of wrapping.
        o.note_unload(5, 0);
        assert_eq!(o.resident(5, 0), 0);
    }

    #[test]
    fn wb_pending_balances() {
        let mut o = OverloadState::default();
        o.note_wb_queued(1);
        o.note_wb_queued(1);
        o.note_wb_queued(2);
        assert_eq!(o.wb_pending(1), 2);
        assert_eq!(o.wb_pending_total(), 3);
        o.note_wb_drained(1);
        assert_eq!(o.wb_pending(1), 1);
        assert_eq!(o.wb_pending_total(), 2);
    }

    #[test]
    fn detector_fires_after_threshold_fast_reloads() {
        let mut o = OverloadState::default();
        let (win, thr, pen) = (8, 3, 64);
        let mut now = 100;
        for i in 0..3 {
            o.note_displacement(7, 2, now);
            now += 2; // reload well inside the window
            let fired = o.note_reload(7, 2, now, win, thr, pen);
            if i < 2 {
                assert_eq!(fired, None);
            } else {
                assert_eq!(fired, Some(3));
            }
        }
        assert!(o.penalized(7, 2, now));
        assert!(o.penalized(7, 2, now + pen - 1));
        assert!(!o.penalized(7, 2, now + pen));
    }

    #[test]
    fn slow_reload_resets_the_streak() {
        let mut o = OverloadState::default();
        let (win, thr, pen) = (4, 2, 16);
        o.note_displacement(1, 3, 10);
        assert_eq!(o.note_reload(1, 3, 12, win, thr, pen), None);
        // A reload far outside the window: streak resets.
        o.note_displacement(1, 3, 20);
        assert_eq!(o.note_reload(1, 3, 100, win, thr, pen), None);
        o.note_displacement(1, 3, 102);
        assert_eq!(o.note_reload(1, 3, 104, win, thr, pen), None);
        o.note_displacement(1, 3, 106);
        assert_eq!(o.note_reload(1, 3, 108, win, thr, pen), Some(2));
    }

    #[test]
    fn loads_without_displacement_never_fire() {
        let mut o = OverloadState::default();
        for now in 0..100 {
            assert_eq!(o.note_reload(1, 2, now, 8, 1, 16), None);
        }
    }

    #[test]
    fn window_zero_disables_the_detector() {
        let mut o = OverloadState::default();
        o.note_displacement(1, 2, 10);
        assert_eq!(o.note_reload(1, 2, 10, 0, 1, 16), None);
        assert!(!o.penalized(1, 2, 10));
    }
}
