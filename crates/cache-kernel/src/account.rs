//! Processor-time accounting and quota enforcement (§4.3).
//!
//! "The Cache Kernel monitors the consumption of processor time by each
//! thread and adds that to the total consumed by its kernel for that
//! processor, charging a premium for higher priority execution and a
//! discounted charge for lower priority execution. … If a kernel exceeds
//! its allocation for a given processor, the threads on that processor are
//! reduced to a low priority so that they only run when the processor is
//! otherwise idle."
//!
//! We track an exponentially decayed per-(kernel, CPU) charge and compare
//! it against the quota percentage at each accounting period.

use crate::ck::CacheKernel;
use crate::ids::ObjId;
use crate::objects::{Priority, IDLE_PRIORITY, MAX_CPUS};

/// Priority at and above which the premium rate applies (real-time band).
pub const PREMIUM_PRIORITY: Priority = 24;
/// Priority at and below which the discount rate applies (batch band).
pub const DISCOUNT_PRIORITY: Priority = 8;
/// Premium multiplier numerator/denominator (1.5×).
const PREMIUM_NUM: u64 = 3;
const PREMIUM_DEN: u64 = 2;
/// Discount multiplier (0.5×).
const DISCOUNT_NUM: u64 = 1;
const DISCOUNT_DEN: u64 = 2;

/// Charge `cycles` consumed at `priority`, applying the graduated rate.
pub fn graduated_charge(cycles: u64, priority: Priority) -> u64 {
    if priority >= PREMIUM_PRIORITY {
        cycles * PREMIUM_NUM / PREMIUM_DEN
    } else if priority <= DISCOUNT_PRIORITY {
        cycles * DISCOUNT_NUM / DISCOUNT_DEN
    } else {
        cycles
    }
}

/// Per-kernel, per-CPU accounting state.
#[derive(Clone, Debug, Default)]
pub struct KernelAccount {
    /// Charged cycles accumulated in the current period, per CPU.
    charged: [u64; MAX_CPUS],
    /// Decayed average charge per period, per CPU (fixed-point /256).
    avg: [u64; MAX_CPUS],
    /// Whether the kernel is currently demoted on each CPU.
    demoted: [bool; MAX_CPUS],
    /// Lifetime charged cycles (for reports).
    pub total_charged: u64,
    /// Loads shed with `Again` by overload protection (admission checks
    /// or reservation defence), charged against this kernel.
    pub loads_shed: u64,
}

impl KernelAccount {
    /// Record a graduated charge against `cpu`.
    pub fn charge(&mut self, cpu: usize, charged_cycles: u64) {
        self.charged[cpu] += charged_cycles;
        self.total_charged += charged_cycles;
    }

    /// Close an accounting period of `period_cycles` per CPU: fold the
    /// period's charge into the decayed average and update demotion state
    /// against `quota_pct`. Returns the CPUs whose demotion state changed.
    pub fn end_period(
        &mut self,
        period_cycles: u64,
        quota_pct: &[u8; MAX_CPUS],
    ) -> Vec<(usize, bool)> {
        let mut changed = Vec::new();
        for (cpu, quota) in quota_pct.iter().enumerate().take(MAX_CPUS) {
            let used = core::mem::take(&mut self.charged[cpu]);
            // avg <- 3/4 avg + 1/4 used   (EWMA, fixed point x256)
            self.avg[cpu] = (self.avg[cpu] * 3 + used * 256) / 4;
            let pct_x256 = (self.avg[cpu] * 100)
                .checked_div(period_cycles)
                .unwrap_or(0);
            let over = pct_x256 > *quota as u64 * 256;
            if over != self.demoted[cpu] {
                self.demoted[cpu] = over;
                changed.push((cpu, over));
            }
        }
        changed
    }

    /// Whether the kernel's threads are demoted on `cpu`.
    pub fn is_demoted(&self, cpu: usize) -> bool {
        self.demoted[cpu]
    }

    /// Decayed usage of `cpu` as a percentage of the period.
    pub fn usage_pct(&self, cpu: usize, period_cycles: u64) -> f64 {
        if period_cycles == 0 {
            return 0.0;
        }
        (self.avg[cpu] as f64 / 256.0) * 100.0 / period_cycles as f64
    }
}

impl CacheKernel {
    /// Effective scheduling priority of a thread slot: its descriptor
    /// priority, or idle if its kernel is currently demoted for exceeding
    /// its processor quota.
    pub fn effective_priority(&self, slot: u16) -> Priority {
        let t = match self.threads.get_slot(slot) {
            Some(t) => t,
            None => return IDLE_PRIORITY,
        };
        if self
            .kernels
            .get(t.owner)
            .map(|k| k.demoted)
            .unwrap_or(false)
        {
            IDLE_PRIORITY
        } else {
            t.desc.priority
        }
    }

    /// Enqueue a thread at its effective priority (executive helper).
    pub fn enqueue_thread(&mut self, slot: u16) {
        if self.sched.contains(slot) {
            return;
        }
        let p = self.effective_priority(slot);
        if self.threads.get_slot(slot).is_some() {
            self.sched.enqueue(slot, p);
        }
    }

    /// Record graduated CPU consumption for a thread's kernel (§4.3: a
    /// premium above normal priority, a discount below).
    pub fn account_consumption(&mut self, thread_slot: u16, cpu: usize, cycles: u64) {
        let (owner_slot, priority) = match self.threads.get_slot(thread_slot) {
            Some(t) => (t.owner.slot, t.desc.priority),
            None => return,
        };
        let charged = graduated_charge(cycles, priority);
        self.accounts
            .entry(owner_slot)
            .or_default()
            .charge(cpu.min(MAX_CPUS - 1), charged);
    }

    /// Close an accounting period: update every kernel's decayed usage
    /// against its quota and apply/lift demotions. Returns the kernels
    /// whose demotion state changed.
    pub fn end_accounting_period(&mut self, period_cycles: u64) -> Vec<(ObjId, bool)> {
        let mut changed = Vec::new();
        let slots: Vec<u16> = self.accounts.keys().copied().collect();
        for slot in slots {
            let id = match self.kernels.id_of_slot(slot) {
                Some(id) => id,
                None => continue,
            };
            // The kernel or its account can vanish between the period
            // event's emission and its delivery (a recovery sweep tearing
            // down a dead kernel); skip rather than abort the simulation.
            let Some(quota) = self.kernels.get(id).map(|k| k.desc.cpu_quota_pct) else {
                continue;
            };
            let Some(account) = self.accounts.get_mut(&slot) else {
                continue;
            };
            let transitions = account.end_period(period_cycles, &quota);
            if transitions.is_empty() {
                continue;
            }
            // Any CPU over quota demotes the kernel's threads (we enforce
            // at kernel granularity; the account tracks per-CPU usage).
            let demoted = (0..MAX_CPUS).any(|c| account.is_demoted(c));
            let Some(k) = self.kernels.get_mut(id) else {
                continue;
            };
            if k.demoted != demoted {
                k.demoted = demoted;
                changed.push((id, demoted));
                self.apply_demotion(id);
            }
        }
        changed
    }

    /// Re-queue every ready thread of `kernel` at its (new) effective
    /// priority after a demotion change.
    fn apply_demotion(&mut self, kernel: ObjId) {
        let slots: Vec<u16> = self
            .threads
            .iter()
            .filter(|(_, t)| t.owner == kernel)
            .map(|(id, _)| id.slot)
            .collect();
        for slot in slots {
            let p = self.effective_priority(slot);
            self.sched.requeue(slot, p);
        }
    }

    /// Decayed CPU usage of a kernel on `cpu` as a percentage (reports).
    pub fn kernel_usage_pct(&self, kernel: ObjId, cpu: usize, period_cycles: u64) -> f64 {
        self.accounts
            .get(&kernel.slot)
            .map(|a| a.usage_pct(cpu, period_cycles))
            .unwrap_or(0.0)
    }

    /// Whether a kernel is currently demoted.
    pub fn kernel_demoted(&self, kernel: ObjId) -> bool {
        self.kernels.get(kernel).map(|k| k.demoted).unwrap_or(false)
    }

    /// Loads shed by overload protection charged to `kernel` (the
    /// per-kernel slice of the global `loads_shed` counter).
    pub fn kernel_loads_shed(&self, kernel: ObjId) -> u64 {
        self.accounts
            .get(&kernel.slot)
            .map(|a| a.loads_shed)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graduated_rates() {
        assert_eq!(graduated_charge(100, 31), 150); // premium
        assert_eq!(graduated_charge(100, PREMIUM_PRIORITY), 150);
        assert_eq!(graduated_charge(100, 16), 100); // normal
        assert_eq!(graduated_charge(100, DISCOUNT_PRIORITY), 50); // discount
        assert_eq!(graduated_charge(100, 0), 50);
    }

    #[test]
    fn demotion_when_over_quota() {
        let mut a = KernelAccount::default();
        let quota = {
            let mut q = [0u8; MAX_CPUS];
            q[0] = 50;
            q
        };
        // Consume 100% of a 1000-cycle period repeatedly on CPU 0.
        let mut became_demoted = false;
        for _ in 0..8 {
            a.charge(0, 1000);
            for (cpu, over) in a.end_period(1000, &quota) {
                if cpu == 0 && over {
                    became_demoted = true;
                }
            }
        }
        assert!(became_demoted);
        assert!(a.is_demoted(0));
        assert!(!a.is_demoted(1));
        assert!(a.usage_pct(0, 1000) > 50.0);
    }

    #[test]
    fn demotion_lifts_as_usage_decays() {
        let mut a = KernelAccount::default();
        let quota = {
            let mut q = [0u8; MAX_CPUS];
            q[0] = 50;
            q
        };
        for _ in 0..8 {
            a.charge(0, 1000);
            a.end_period(1000, &quota);
        }
        assert!(a.is_demoted(0));
        // Idle periods decay the average below quota again.
        let mut lifted = false;
        for _ in 0..16 {
            for (cpu, over) in a.end_period(1000, &quota) {
                if cpu == 0 && !over {
                    lifted = true;
                }
            }
        }
        assert!(lifted);
        assert!(!a.is_demoted(0));
    }

    #[test]
    fn under_quota_never_demotes() {
        let mut a = KernelAccount::default();
        let quota = [30u8; MAX_CPUS];
        for _ in 0..32 {
            a.charge(2, 250); // 25% of the period
            let changed = a.end_period(1000, &quota);
            assert!(changed.iter().all(|(_, over)| !over));
        }
        assert!(!a.is_demoted(2));
    }

    #[test]
    fn premium_pushes_over_quota_faster() {
        // Two kernels burn identical raw cycles; the one at premium
        // priority is charged 1.5x and demotes sooner. This is the §4.3
        // incentive to run at lower priority.
        let quota = [60u8; MAX_CPUS];
        let mut hi = KernelAccount::default();
        let mut lo = KernelAccount::default();
        let mut hi_demoted_at = None;
        let mut lo_demoted_at = None;
        for round in 0..16 {
            hi.charge(0, graduated_charge(500, 30));
            lo.charge(0, graduated_charge(500, 16));
            hi.end_period(1000, &quota);
            lo.end_period(1000, &quota);
            if hi.is_demoted(0) && hi_demoted_at.is_none() {
                hi_demoted_at = Some(round);
            }
            if lo.is_demoted(0) && lo_demoted_at.is_none() {
                lo_demoted_at = Some(round);
            }
        }
        assert!(hi_demoted_at.is_some());
        assert!(
            lo_demoted_at.is_none(),
            "50% raw usage under 60% quota stays"
        );
    }
}
