//! Fixed-capacity object caches with generational slots.
//!
//! Each of the three object types lives in one of these: a slab of slots
//! sized at boot (Table 1's "Cache Size" column), a free list, and a clock
//! hand for victim selection when a load finds no free slot. A slot's
//! generation is bumped on every insertion so stale [`ObjId`]s can never
//! resolve to a newer occupant.

use crate::ids::{ObjId, ObjKind};

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A fixed-capacity generational cache for objects of type `T`.
pub struct ObjCache<T> {
    kind: ObjKind,
    slots: Vec<Slot<T>>,
    free: Vec<u16>,
    hand: usize,
    live: usize,
}

impl<T> ObjCache<T> {
    /// A cache of `capacity` slots holding objects of `kind`.
    pub fn new(kind: ObjKind, capacity: usize) -> Self {
        assert!(capacity > 0 && capacity <= u16::MAX as usize);
        ObjCache {
            kind,
            slots: (0..capacity).map(|_| Slot { gen: 0, val: None }).collect(),
            free: (0..capacity as u16).rev().collect(),
            hand: 0,
            live: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of loaded objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are loaded.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.live == self.slots.len()
    }

    /// Insert into a free slot, returning the new id, or `None` when full
    /// (the caller must first select and write back a victim).
    pub fn insert(&mut self, val: T) -> Option<ObjId> {
        let slot = self.free.pop()?;
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.val.is_none());
        s.gen = s.gen.wrapping_add(1);
        s.val = Some(val);
        self.live += 1;
        Some(ObjId::new(self.kind, slot, s.gen))
    }

    fn check(&self, id: ObjId) -> bool {
        id.kind == self.kind
            && (id.slot as usize) < self.slots.len()
            && self.slots[id.slot as usize].gen == id.gen
            && self.slots[id.slot as usize].val.is_some()
    }

    /// Resolve an id to the object, if the id is current.
    pub fn get(&self, id: ObjId) -> Option<&T> {
        if !self.check(id) {
            return None;
        }
        self.slots[id.slot as usize].val.as_ref()
    }

    /// Resolve an id mutably.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut T> {
        if !self.check(id) {
            return None;
        }
        self.slots[id.slot as usize].val.as_mut()
    }

    /// Access by raw slot index regardless of generation (Cache Kernel
    /// internal paths that hold a slot reference, e.g. the scheduler).
    pub fn get_slot(&self, slot: u16) -> Option<&T> {
        self.slots.get(slot as usize)?.val.as_ref()
    }

    /// Mutable access by raw slot index.
    pub fn get_slot_mut(&mut self, slot: u16) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.val.as_mut()
    }

    /// Current id for an occupied slot.
    pub fn id_of_slot(&self, slot: u16) -> Option<ObjId> {
        let s = self.slots.get(slot as usize)?;
        s.val.as_ref()?;
        Some(ObjId::new(self.kind, slot, s.gen))
    }

    /// Remove the object named by `id`, freeing its slot.
    pub fn remove(&mut self, id: ObjId) -> Option<T> {
        if !self.check(id) {
            return None;
        }
        let v = self.slots[id.slot as usize].val.take();
        self.free.push(id.slot);
        self.live -= 1;
        v
    }

    /// Pick a writeback victim with the clock algorithm: sweep slots,
    /// skipping any for which `pinned` returns true; an occupied,
    /// unpinned slot whose `referenced` flag (reported by `referenced`)
    /// is set gets a second chance (the flag is cleared by the caller via
    /// `clear_ref`). Returns `None` if everything is pinned.
    pub fn victim<P, R>(&mut self, mut pinned: P, mut referenced: R) -> Option<ObjId>
    where
        P: FnMut(ObjId, &T) -> bool,
        R: FnMut(&mut T) -> bool, // returns prior referenced bit, clearing it
    {
        let n = self.slots.len();
        // Two full sweeps guarantee a second-chance pass completes.
        for _ in 0..2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let gen = self.slots[i].gen;
            if let Some(v) = self.slots[i].val.as_mut() {
                if pinned(ObjId::new(self.kind, i as u16, gen), v) {
                    continue;
                }
                if referenced(v) {
                    continue; // second chance
                }
                return Some(ObjId::new(self.kind, i as u16, gen));
            }
        }
        None
    }

    /// Iterate over `(id, object)` for all loaded objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            s.val
                .as_ref()
                .map(|v| (ObjId::new(self.kind, i as u16, s.gen), v))
        })
    }

    /// Collect the ids of all loaded objects matching a predicate (used by
    /// dependency-ordered reclamation to find an object's dependents).
    pub fn ids_where<F: FnMut(&T) -> bool>(&self, mut f: F) -> Vec<ObjId> {
        self.iter()
            .filter_map(|(id, v)| f(v).then_some(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> ObjCache<String> {
        ObjCache::new(ObjKind::Thread, cap)
    }

    #[test]
    fn insert_get_remove() {
        let mut c = cache(2);
        let a = c.insert("a".into()).unwrap();
        let b = c.insert("b".into()).unwrap();
        assert!(c.is_full());
        assert_eq!(c.insert("c".into()), None);
        assert_eq!(c.get(a).unwrap(), "a");
        assert_eq!(c.remove(a).unwrap(), "a");
        assert_eq!(c.get(a), None);
        assert_eq!(c.len(), 1);
        let c2 = c.insert("c".into()).unwrap();
        assert_eq!(c.get(c2).unwrap(), "c");
        assert_eq!(c.get(b).unwrap(), "b");
    }

    #[test]
    fn stale_id_never_resolves() {
        let mut c = cache(1);
        let a = c.insert("a".into()).unwrap();
        c.remove(a);
        let b = c.insert("b".into()).unwrap();
        assert_eq!(b.slot, a.slot, "slot reused");
        assert_ne!(b.gen, a.gen, "generation advanced");
        assert_eq!(c.get(a), None, "stale id rejected");
        assert_eq!(c.get_mut(a), None);
        assert_eq!(c.remove(a), None);
        assert_eq!(c.get(b).unwrap(), "b");
    }

    #[test]
    fn wrong_kind_rejected() {
        let mut c = cache(1);
        let a = c.insert("a".into()).unwrap();
        let forged = ObjId::new(ObjKind::Kernel, a.slot, a.gen);
        assert_eq!(c.get(forged), None);
    }

    #[test]
    fn victim_skips_pinned() {
        let mut c = cache(3);
        let _a = c.insert("pinned".into()).unwrap();
        let b = c.insert("plain".into()).unwrap();
        let _c2 = c.insert("pinned".into()).unwrap();
        let v = c.victim(|_, s| s == "pinned", |_| false).unwrap();
        assert_eq!(v, b);
    }

    #[test]
    fn victim_none_when_all_pinned() {
        let mut c = cache(2);
        c.insert("x".into()).unwrap();
        c.insert("y".into()).unwrap();
        assert_eq!(c.victim(|_, _| true, |_| false), None);
    }

    #[test]
    fn victim_second_chance() {
        // Objects whose referenced bit is set survive the first sweep.
        let mut c: ObjCache<(String, bool)> = ObjCache::new(ObjKind::Thread, 2);
        let a = c.insert(("a".into(), true)).unwrap();
        let b = c.insert(("b".into(), false)).unwrap();
        let v = c
            .victim(
                |_, _| false,
                |t| {
                    let r = t.1;
                    t.1 = false;
                    r
                },
            )
            .unwrap();
        assert_eq!(v, b, "unreferenced object chosen first");
        // Now a's bit has been cleared; it is the next victim.
        let v2 = c
            .victim(|_, _| false, |t| core::mem::replace(&mut t.1, false))
            .unwrap();
        assert!(v2 == a || v2 == b);
    }

    #[test]
    fn iter_and_ids_where() {
        let mut c = cache(4);
        let a = c.insert("keep".into()).unwrap();
        let b = c.insert("drop".into()).unwrap();
        c.insert("keep".into()).unwrap();
        c.remove(b);
        let ids = c.ids_where(|s| s == "keep");
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&a));
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn id_of_slot_tracks_generation() {
        let mut c = cache(1);
        let a = c.insert("a".into()).unwrap();
        assert_eq!(c.id_of_slot(0), Some(a));
        c.remove(a);
        assert_eq!(c.id_of_slot(0), None);
    }
}
