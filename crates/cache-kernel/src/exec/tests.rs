use super::*;
use crate::appkernel::NullKernel;
use crate::ck::CkConfig;
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::objects::{KernelDesc, MemoryAccessArray, SpaceDesc, ThreadState};
use crate::program::{Script, Step, ThreadCtx};
use hw::{Fault, MachineConfig, Paddr, Pte, Vaddr};

fn exec() -> (Executive, ObjId) {
    let mut ck = CacheKernel::new(CkConfig::default());
    let mpm = Mpm::new(MachineConfig {
        phys_frames: 2048,
        l2_bytes: 256 * 1024,
        cpus: 2,
        ..MachineConfig::default()
    });
    let srm = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    let mut ex = Executive::new(ck, mpm);
    ex.register_kernel(srm, Box::new(NullKernel));
    (ex, srm)
}

/// A kernel that resolves page faults by identity-mapping the page to
/// a fixed frame region, using the optimized combined call.
struct IdentityPager {
    me: ObjId,
    frame_base: u32,
    faults: usize,
}
impl AppKernel for IdentityPager {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn on_start(&mut self, _env: &mut Env, id: ObjId) {
        self.me = id;
    }
    fn on_page_fault(&mut self, env: &mut Env, thread: ObjId, fault: Fault) -> FaultDisposition {
        self.faults += 1;
        let space = env.ck.thread(thread).unwrap().desc.space;
        let frame = Paddr(self.frame_base + (fault.vaddr.vpn().0 % 64) * hw::PAGE_SIZE);
        env.ck
            .load_mapping_and_resume(
                self.me,
                space,
                fault.vaddr.page_base(),
                frame,
                Pte::WRITABLE | Pte::CACHEABLE,
                None,
                None,
                env.mpm,
                env.cpu,
            )
            .unwrap();
        FaultDisposition::Resume
    }
    fn on_trap(&mut self, _env: &mut Env, _t: ObjId, no: u32, args: [u32; 4]) -> TrapDisposition {
        TrapDisposition::Return(no + args[0])
    }
    fn name(&self) -> &str {
        "identity-pager"
    }
}

#[test]
fn program_runs_with_demand_paging() {
    let (mut ex, srm) = exec();
    let pager = ex
        .ck
        .load_kernel(
            srm,
            KernelDesc {
                memory_access: MemoryAccessArray::all(),
                ..KernelDesc::default()
            },
            &mut ex.mpm,
        )
        .unwrap();
    ex.register_kernel(
        pager,
        Box::new(IdentityPager {
            me: pager,
            frame_base: 0x10_0000,
            faults: 0,
        }),
    );
    let sp = ex
        .ck
        .load_space(pager, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    let pc = ex.code.register(Box::new(Script::new(vec![
        Step::Store(Vaddr(0x4000), 42),
        Step::Load(Vaddr(0x4000)),
        Step::Trap {
            no: 7,
            args: [1, 0, 0, 0],
        },
        Step::Exit(0),
    ])));
    let t = ex
        .ck
        .load_thread(pager, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
        .unwrap();
    ex.run_until_idle(100);
    // The thread exited: unloaded, program removed.
    assert!(ex.ck.thread(t).is_err());
    assert_eq!(ex.code.len(), 0);
    assert_eq!(ex.ck.stats.faults_forwarded, 1, "one demand-paging fault");
    assert_eq!(ex.ck.stats.traps_forwarded, 1);
    // Every forward was delivered through the pipeline, and the pump
    // left nothing queued.
    assert_eq!(ex.ck.pending_events(), 0);
    assert_eq!(ex.ck.stats.events_delivered, ex.ck.stats.events_emitted);
    assert_eq!(ex.ck.stats.thread_exits, 1);
}

#[test]
fn load_and_trap_results_reach_program() {
    let (mut ex, srm) = exec();
    let sp = ex
        .ck
        .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    // Pre-map the page so no fault occurs (NullKernel kills on fault).
    ex.ck
        .load_mapping(
            srm,
            sp,
            Vaddr(0x4000),
            Paddr(0x8000),
            Pte::WRITABLE | Pte::CACHEABLE,
            None,
            None,
            &mut ex.mpm,
        )
        .unwrap();
    let pc = ex.code.register(Box::new(crate::program::FnProgram({
        let mut stage = 0;
        move |ctx: &mut ThreadCtx| {
            stage += 1;
            match stage {
                1 => Step::Store(Vaddr(0x4010), 0xfeed),
                2 => Step::Load(Vaddr(0x4010)),
                3 => {
                    assert_eq!(ctx.loaded, 0xfeed);
                    Step::Trap {
                        no: 100,
                        args: [23, 0, 0, 0],
                    }
                }
                4 => {
                    // NullKernel returns the trap number.
                    assert_eq!(ctx.trap_ret, 100);
                    Step::Exit(5)
                }
                _ => Step::Exit(5),
            }
        }
    })));
    ex.ck
        .load_thread(srm, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
        .unwrap();
    ex.run_until_idle(100);
    assert_eq!(ex.code.len(), 0, "program completed and was removed");
}

#[test]
fn null_kernel_kills_faulting_thread() {
    let (mut ex, srm) = exec();
    let sp = ex
        .ck
        .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    let pc = ex
        .code
        .register(Box::new(Script::new(vec![Step::Load(Vaddr(0xdead_0000))])));
    let t = ex
        .ck
        .load_thread(srm, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
        .unwrap();
    ex.run_until_idle(50);
    assert!(ex.ck.thread(t).is_err(), "thread killed");
}

#[test]
fn signal_ping_pong_between_threads() {
    let (mut ex, srm) = exec();
    // Two spaces sharing a message frame (Fig. 3).
    let frame = Paddr(0x20_0000);
    let sp_a = ex
        .ck
        .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    let sp_b = ex
        .ck
        .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();

    // Receiver thread: waits for one signal, records it, exits.
    let rx_pc = ex.code.register(Box::new(crate::program::FnProgram({
        let mut stage = 0;
        move |ctx: &mut ThreadCtx| {
            stage += 1;
            match stage {
                1 => Step::WaitSignal,
                2 => {
                    let sig = ctx.signal.expect("signal delivered");
                    assert_eq!(sig, Vaddr(0xb010));
                    Step::Exit(0)
                }
                _ => Step::Exit(0),
            }
        }
    })));
    let rx = ex
        .ck
        .load_thread(srm, ThreadDesc::new(sp_b, rx_pc, 12), false, &mut ex.mpm)
        .unwrap();
    // Receiver maps the frame in message mode with itself as the
    // signal thread.
    ex.ck
        .load_mapping(
            srm,
            sp_b,
            Vaddr(0xb000),
            frame,
            Pte::MESSAGE,
            Some(rx),
            None,
            &mut ex.mpm,
        )
        .unwrap();
    // Sender maps the frame writable + message mode.
    ex.ck
        .load_mapping(
            srm,
            sp_a,
            Vaddr(0xa000),
            frame,
            Pte::WRITABLE | Pte::MESSAGE | Pte::CACHEABLE,
            None,
            None,
            &mut ex.mpm,
        )
        .unwrap();
    let tx_pc = ex.code.register(Box::new(Script::new(vec![
        Step::Store(Vaddr(0xa010), 0x1234),
        Step::Exit(0),
    ])));
    ex.ck
        .load_thread(srm, ThreadDesc::new(sp_a, tx_pc, 10), false, &mut ex.mpm)
        .unwrap();

    ex.run_until_idle(100);
    assert_eq!(ex.code.len(), 0, "both programs finished");
    assert_eq!(ex.ck.stats.signals_slow + ex.ck.stats.signals_fast, 1);
    // The message data went through memory, untouched by the kernel.
    assert_eq!(ex.mpm.mem.read_u32(Paddr(0x20_0010)).unwrap(), 0x1234);
}

#[test]
fn higher_priority_wakeup_preempts_within_slice() {
    let (mut ex, srm) = exec();
    let sp = ex
        .ck
        .load_space(srm, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    // A low-priority spinner and a high-priority thread blocked on a
    // signal. When the signal arrives mid-slice, the high-priority
    // thread must run before the spinner's slice would have ended.
    let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let o1 = order.clone();
    let spin_pc = ex.code.register(Box::new(crate::program::FnProgram({
        let mut n = 0u32;
        move |_ctx: &mut ThreadCtx| {
            n += 1;
            o1.lock().unwrap().push("spin");
            if n > 400 {
                Step::Exit(0)
            } else {
                Step::Compute(10)
            }
        }
    })));
    ex.ck
        .load_thread(srm, ThreadDesc::new(sp, spin_pc, 5), false, &mut ex.mpm)
        .unwrap();
    let o2 = order.clone();
    let hi_pc = ex.code.register(Box::new(crate::program::FnProgram({
        let mut stage = 0;
        move |_ctx: &mut ThreadCtx| {
            stage += 1;
            if stage == 1 {
                Step::WaitSignal
            } else {
                o2.lock().unwrap().push("hi");
                Step::Exit(0)
            }
        }
    })));
    let hi = ex
        .ck
        .load_thread(srm, ThreadDesc::new(sp, hi_pc, 25), false, &mut ex.mpm)
        .unwrap();
    ex.ck
        .load_mapping(
            srm,
            sp,
            Vaddr(0xa000),
            Paddr(0x9000),
            Pte::MESSAGE,
            Some(hi),
            None,
            &mut ex.mpm,
        )
        .unwrap();
    // Use a single-CPU machine so the spinner owns the only CPU.
    // (exec() gives two CPUs; the high thread parks first, so only
    // the spinner is runnable; CPU 1 idles.)
    ex.run(2);
    // Mid-run, raise the signal; within the same run call the high
    // thread must appear in the order soon after.
    ex.ck.raise_signal(&mut ex.mpm, 0, Paddr(0x9000));
    ex.run(3);
    let v = order.lock().unwrap().clone();
    let hi_pos = v.iter().position(|s| *s == "hi");
    assert!(hi_pos.is_some(), "high-priority thread ran: {v:?}");
    assert!(
        v.len() > hi_pos.unwrap(),
        "preemption happened before the spinner finished"
    );
    assert!(ex.ck.thread(hi).is_err(), "high thread completed");
}

#[test]
fn quota_demotion_lets_other_kernel_run() {
    // A rogue compute-bound kernel with a small quota shares the MPM
    // with a modest kernel; after demotion the modest kernel's thread
    // gets the CPU even at lower nominal priority.
    let (mut ex, srm) = exec();
    let mk = |q: u8| KernelDesc {
        memory_access: MemoryAccessArray::all(),
        cpu_quota_pct: [q; crate::objects::MAX_CPUS],
        ..KernelDesc::default()
    };
    let rogue = ex.ck.load_kernel(srm, mk(10), &mut ex.mpm).unwrap();
    ex.register_kernel(rogue, Box::new(NullKernel));
    let sp = ex
        .ck
        .load_space(rogue, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    let pc = ex.code.register(Box::new(crate::program::FnProgram(
        move |_ctx: &mut ThreadCtx| Step::Compute(2_000),
    )));
    ex.ck
        .load_thread(rogue, ThreadDesc::new(sp, pc, 20), false, &mut ex.mpm)
        .unwrap();
    // Run enough periods for the EWMA to cross the quota.
    ex.run(200);
    assert!(ex.ck.kernel_demoted(rogue), "rogue kernel demoted");
    // Its thread now sits at idle priority.
    assert_eq!(ex.ck.effective_priority(0), 0);
}

#[test]
fn blocked_trap_suspends_thread() {
    // A kernel that parks threads in their first "system call".
    struct Blocker;
    impl AppKernel for Blocker {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_page_fault(&mut self, _env: &mut Env, _t: ObjId, _f: Fault) -> FaultDisposition {
            FaultDisposition::Kill
        }
        fn on_trap(
            &mut self,
            _env: &mut Env,
            _t: ObjId,
            _no: u32,
            _a: [u32; 4],
        ) -> TrapDisposition {
            TrapDisposition::Block
        }
        fn name(&self) -> &str {
            "blocker"
        }
    }
    let (mut ex, srm) = exec();
    let k = ex
        .ck
        .load_kernel(
            srm,
            KernelDesc {
                memory_access: MemoryAccessArray::all(),
                ..KernelDesc::default()
            },
            &mut ex.mpm,
        )
        .unwrap();
    ex.register_kernel(k, Box::new(Blocker));
    let sp = ex
        .ck
        .load_space(k, SpaceDesc::default(), &mut ex.mpm)
        .unwrap();
    let pc = ex.code.register(Box::new(Script::new(vec![
        Step::Trap {
            no: 1,
            args: [0; 4],
        },
        Step::Exit(0),
    ])));
    let t = ex
        .ck
        .load_thread(k, ThreadDesc::new(sp, pc, 10), false, &mut ex.mpm)
        .unwrap();
    ex.run_until_idle(50);
    // The thread still exists, suspended, off the ready queues.
    assert!(matches!(
        ex.ck.thread(t).unwrap().desc.state,
        ThreadState::Suspended
    ));
    assert!(!ex.ck.sched.contains(t.slot));
    assert_eq!(ex.ck.stats.traps_forwarded, 1);
}

// ----------------------------------------------------------------------
// Cluster determinism
// ----------------------------------------------------------------------

fn trace_node(node: usize) -> (Executive, ObjId) {
    let mut ck = CacheKernel::new(CkConfig::default());
    let mpm = Mpm::new(MachineConfig {
        phys_frames: 2048,
        l2_bytes: 256 * 1024,
        cpus: 2,
        node,
        ..MachineConfig::default()
    });
    let srm = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    let mut ex = Executive::new(ck, mpm);
    ex.trace.enabled = true;
    ex.register_kernel(srm, Box::new(NullKernel));
    (ex, srm)
}

/// Build a two-node, two-CPU-per-node cluster with enough traffic to
/// exercise most event kinds: demand paging, traps, signals, thread
/// exits and cross-node packets.
fn busy_cluster() -> Cluster {
    let mut nodes = Vec::new();
    for n in 0..2 {
        let (mut ex, srm) = trace_node(n);
        let pager = ex
            .ck
            .load_kernel(
                srm,
                KernelDesc {
                    memory_access: MemoryAccessArray::all(),
                    ..KernelDesc::default()
                },
                &mut ex.mpm,
            )
            .unwrap();
        ex.register_kernel(
            pager,
            Box::new(IdentityPager {
                me: pager,
                frame_base: 0x10_0000,
                faults: 0,
            }),
        );
        ex.register_channel(9, srm);
        let sp = ex
            .ck
            .load_space(pager, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        // Several threads per node so both CPUs and the steal path run.
        for i in 0..3u32 {
            let prog = Script::new(vec![
                Step::Store(Vaddr(0x4000 + i * 0x1000), i),
                Step::Load(Vaddr(0x4000 + i * 0x1000)),
                Step::Trap {
                    no: i,
                    args: [i, 0, 0, 0],
                },
                Step::Compute(50),
                Step::Exit(0),
            ]);
            ex.spawn_thread(pager, sp, Box::new(prog), 10 + i as u8)
                .unwrap();
        }
        // A dormant second space the pager owns: written back explicitly
        // so the trace exercises the writeback leg of the pipeline too.
        let dormant = ex
            .ck
            .load_space(pager, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        ex.ck.writeback_space(dormant, &mut ex.mpm).unwrap();
        // A packet for the peer node.
        ex.outbox.push(hw::Packet {
            src: n,
            dst: 1 - n,
            channel: 9,
            data: vec![n as u8; 4],
        });
        nodes.push(ex);
    }
    Cluster::new(nodes)
}

#[test]
fn cluster_event_traces_are_byte_identical() {
    let run = || {
        let mut cl = busy_cluster();
        for _ in 0..10 {
            cl.step(5);
        }
        cl.nodes
            .iter()
            .map(|n| n.trace.lines.join("\n"))
            .collect::<Vec<String>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "repeated runs replay identical event traces");
    assert!(
        a.iter().all(|t| !t.is_empty()),
        "every node recorded events"
    );
    // The traffic covered the pipeline's breadth.
    let joined = a.join("\n");
    for needle in [
        "fault ",
        "trap ",
        "thread-exit ",
        "packet ",
        "writeback ",
        "shootdown ",
    ] {
        assert!(joined.contains(needle), "trace missing {needle:?}");
    }
}

// ----------------------------------------------------------------------
// Crash injection determinism
// ----------------------------------------------------------------------

/// Killing a kernel at its K-th writeback and sweeping it up replays
/// byte-identically from the same fault-plan seed: the trace is a pure
/// function of (workload, seed), including the failure and recovery
/// events.
#[test]
fn crash_and_recovery_trace_is_deterministic() {
    let run = || {
        let (mut ex, srm) = trace_node(0);
        let pager = ex
            .ck
            .load_kernel(
                srm,
                KernelDesc {
                    memory_access: MemoryAccessArray::all(),
                    ..KernelDesc::default()
                },
                &mut ex.mpm,
            )
            .unwrap();
        ex.register_kernel(
            pager,
            Box::new(IdentityPager {
                me: pager,
                frame_base: 0x10_0000,
                faults: 0,
            }),
        );
        let sp = ex
            .ck
            .load_space(pager, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        for i in 0..2u32 {
            let prog = Script::new(vec![
                Step::Store(Vaddr(0x4000 + i * 0x1000), i),
                Step::Compute(200),
                Step::Load(Vaddr(0x4000 + i * 0x1000)),
                Step::Exit(0),
            ]);
            ex.spawn_thread(pager, sp, Box::new(prog), 10).unwrap();
        }
        // The pager dies at its first writeback delivery: the explicit
        // writeback of this dormant space.
        ex.faults = Some(hw::FaultPlan::new(0xC0FFEE).kill_at_writeback(pager.slot, 1));
        let dormant = ex
            .ck
            .load_space(pager, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        ex.ck.writeback_space(dormant, &mut ex.mpm).unwrap();
        ex.run_until_idle(60);
        // The crash left the pager's objects orphaned; sweep them.
        let dead = ex.ck.failed_kernels();
        assert_eq!(dead.len(), 1, "exactly the pager died");
        for id in dead {
            ex.ck.recover_kernel(srm, id, &mut ex.mpm).unwrap();
        }
        ex.run_until_idle(10);
        assert_eq!(ex.ck.stats.kernels_failed, 1);
        assert_eq!(ex.ck.stats.kernels_recovered, 1);
        assert_eq!(ex.ck.stats.faults_injected, 1);
        // Nothing of the pager survives.
        assert!(ex.ck.kernel(pager).is_err());
        assert!(ex.ck.space(sp).is_err());
        ex.trace.lines.join("\n")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "crash replay is byte-identical from the seed");
    for needle in ["kernel-failed ", "kernel-recovered ", "writeback "] {
        assert!(a.contains(needle), "trace missing {needle:?}");
    }
}
