//! The event pump: delivery of pipeline events to application kernels.
//!
//! Everything the Cache Kernel's lower layers want from an application
//! kernel arrives here as a [`KernelEvent`], in emission order. The pump
//! pops one event at a time, so a delivery that emits further events
//! (a fault handler displacing objects, a kill forwarding a thread exit)
//! keeps strict queue order; nested pumps — `terminate_thread` inside a
//! `Kill` disposition — simply drain the same queue and leave the outer
//! pump nothing to do, which makes the pump reentrancy-safe.
//!
//! With [`EventTrace`] enabled the pump records one line per delivered
//! event; identical configurations replay byte-identical traces, which
//! the cluster determinism test pins down.

use super::Executive;
use crate::events::{DeviceSource, KernelEvent};
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::objects::ThreadState;
use hw::FaultKind;

/// A recorded event trace (determinism verification and diagnostics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventTrace {
    /// Whether the pump records delivered events.
    pub enabled: bool,
    /// One line per delivered event: `q<quantum> <description>`.
    pub lines: Vec<String>,
}

impl Executive {
    /// Deliver the events queued in the Cache Kernel *at the time the
    /// pump starts* to the application kernels. The only place
    /// `on_writeback`, `on_page_fault`, `on_exception`, `on_trap`,
    /// `on_thread_exit`, `on_tick` and `on_packet` are invoked from the
    /// executive.
    ///
    /// The pump is bounded to the starting queue length: events emitted
    /// *during* delivery wait for the next pump (next quantum, or the
    /// next fault-path pump). This is what keeps a descriptor-pressure
    /// livelock impossible — a kernel whose `on_writeback` reloads the
    /// object (displacing another) queues the next writeback instead of
    /// delivering it recursively, so threads get to run in between.
    /// Nested pumps (a `Kill` disposition terminating the thread inside
    /// a delivery) share the same queue; the inner pump's consumption
    /// just leaves the outer one fewer events, never duplicates.
    pub fn pump_events(&mut self) {
        let budget = self.ck.pending_events();
        for _ in 0..budget {
            let Some(ev) = self.ck.pop_event() else {
                break; // a nested pump already drained the rest
            };
            if self.trace.enabled {
                self.trace
                    .lines
                    .push(format!("q{} {}", self.quanta_run, ev.describe()));
            }
            self.ck.stats.events_delivered += 1;
            self.deliver_event(ev);
        }
    }

    /// Deliver queued writebacks (and any other pending events) to their
    /// owning application kernels. Retained name from the pre-pipeline
    /// interface; it is now a pump alias.
    pub fn dispatch_writebacks(&mut self) {
        self.pump_events();
    }

    fn deliver_event(&mut self, ev: KernelEvent) {
        match ev {
            KernelEvent::FaultForward {
                owner,
                thread,
                cpu,
                fault,
            } => self.deliver_fault(owner, thread, cpu, fault),
            KernelEvent::TrapForward {
                owner,
                thread,
                cpu,
                no,
                args,
            } => self.deliver_trap(owner, thread, cpu, no, args),
            KernelEvent::Writeback(wb) => {
                let owner = wb.owner();
                self.call_kernel(owner.slot, 0, |k, env| k.on_writeback(env, wb));
                // A fault plan may have this kernel die at its K-th
                // delivered writeback.
                if self
                    .faults
                    .as_mut()
                    .map(|p| p.note_writeback(owner.slot))
                    .unwrap_or(false)
                {
                    self.crash_kernel(owner.slot);
                }
            }
            KernelEvent::Signal { .. } => {
                // Thread wakeup happened synchronously in the messaging
                // layer; the event carried the fact into the ordered
                // pipeline for counters and tracing.
            }
            KernelEvent::Shootdown { .. } => {
                // The TLB/rTLB invalidations were applied synchronously at
                // the batch flush; the event records the round for
                // counters and tracing.
            }
            KernelEvent::DeviceInterrupt { source, paddr } => {
                self.ck.raise_signal(&mut self.mpm, 0, paddr);
                if source == DeviceSource::Clock {
                    // Registered kernels get their rescheduling hook, in
                    // deterministic slot order. Answering the tick is the
                    // liveness heartbeat the SRM's failure detector reads:
                    // a crashed (unregistered) kernel stops being stamped
                    // and its last-seen cycle goes stale.
                    let now = self.mpm.clock.cycles();
                    for ks in self.kernels.slots() {
                        self.ck.note_heartbeat(ks, now);
                        self.call_kernel(ks, 0, |k, env| k.on_tick(env));
                    }
                }
            }
            KernelEvent::PacketArrived { src, channel, data } => {
                if let Some(ks) = self.channel_owners.get(&channel).copied() {
                    self.call_kernel(ks, 0, |k, env| k.on_packet(env, src, channel, &data));
                }
            }
            KernelEvent::AccountingPeriodEnd { period } => {
                self.ck.end_accounting_period(period);
            }
            KernelEvent::ThreadExit {
                owner,
                thread,
                code,
                cpu,
            } => {
                let slot = thread.slot;
                let pc = self.ck.thread(thread).map(|t| t.desc.regs.pc).ok();
                self.call_kernel(owner.slot, cpu, |k, env| {
                    k.on_thread_exit(env, thread, code)
                });
                // The kernel may have already unloaded it in the callback.
                if self.ck.thread_id(slot) == Some(thread) {
                    let _ = self.ck.do_unload_thread(thread, &mut self.mpm);
                }
                if let Some(pc) = pc {
                    self.code.remove(pc);
                }
                if let Some(c) = self.mpm.cpus.get_mut(cpu) {
                    if c.current == Some(slot as u32) {
                        c.current = None;
                    }
                }
            }
            KernelEvent::KernelFailed { .. } | KernelEvent::KernelRecovered { .. } => {
                // Failure/recovery already happened in the Cache Kernel;
                // the events record the episode for counters and tracing.
            }
            KernelEvent::ThrashDetected { .. } => {
                // Informational: the victim-selection penalty was armed
                // when the detector fired; the event carries the episode
                // into counters and traces for the overload harness.
            }
            KernelEvent::CapViolation { .. } => {
                // Informational: the violator already received
                // `CapDenied` synchronously and the counter ticked at
                // emit; the event carries the violation into traces so
                // adversarial runs can audit containment.
            }
            KernelEvent::Cluster(cev) => {
                // Membership transitions fan out to every registered
                // kernel in deterministic slot order, mirroring the clock
                // tick: a DSM kernel re-homes a dead owner's lines, the
                // SRM freezes or thaws its placement.
                for ks in self.kernels.slots() {
                    self.call_kernel(ks, 0, |k, env| k.on_cluster_event(env, cev));
                }
            }
        }
    }

    /// Deliver a forwarded fault (Fig. 2 steps 3–6) and apply the
    /// handler's disposition. The disposition is recorded for the
    /// dispatch loop to read back.
    fn deliver_fault(
        &mut self,
        owner: crate::ids::ObjId,
        thread: crate::ids::ObjId,
        cpu: usize,
        fault: hw::Fault,
    ) {
        let slot = thread.slot;
        self.ck.resume_armed = false;
        let is_mapping_fault = fault.kind == FaultKind::Unmapped;
        let disp = self
            .call_kernel(owner.slot, cpu, |k, env| {
                if is_mapping_fault {
                    k.on_page_fault(env, thread, fault)
                } else {
                    k.on_exception(env, thread, fault)
                }
            })
            .unwrap_or(FaultDisposition::Kill);
        match disp {
            FaultDisposition::Resume => {
                // The combined load-and-resume call already paid the
                // return; otherwise charge the separate completion trap.
                if !self.ck.resume_armed {
                    self.ck.end_forward(&mut self.mpm, cpu);
                }
                self.ck.resume_armed = false;
                if self.ck.thread_id(slot) != Some(thread) {
                    self.clear_current(cpu);
                }
            }
            FaultDisposition::Block => {
                if self.ck.thread_id(slot) == Some(thread) {
                    if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                        if matches!(t.desc.state, ThreadState::Running(_)) {
                            t.desc.state = ThreadState::Suspended;
                        }
                    }
                    self.ck.sched.remove(slot);
                }
                self.clear_current(cpu);
            }
            FaultDisposition::Retry => {
                // The resolving load was shed (`Again`): put the thread
                // back on the ready queue so it refaults after the
                // pressure has had a chance to drain. The charged
                // forward/return is the simulated cost of the backoff.
                self.ck.end_forward(&mut self.mpm, cpu);
                if self.ck.thread_id(slot) == Some(thread) {
                    let mut requeue = false;
                    if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                        if matches!(t.desc.state, ThreadState::Running(_)) {
                            t.desc.state = ThreadState::Ready;
                            requeue = true;
                        }
                    }
                    if requeue {
                        self.ck.enqueue_thread(slot);
                    }
                }
                self.clear_current(cpu);
            }
            FaultDisposition::Kill => {
                if self.ck.thread_id(slot) == Some(thread) {
                    self.terminate_thread(cpu, slot, -11); // SIGSEGV flavor
                } else {
                    self.clear_current(cpu);
                }
            }
        }
        self.last_fault_disp = Some(disp);
    }

    /// Deliver a forwarded trap (§2.3) and apply the disposition.
    fn deliver_trap(
        &mut self,
        owner: crate::ids::ObjId,
        thread: crate::ids::ObjId,
        cpu: usize,
        no: u32,
        args: [u32; 4],
    ) {
        let slot = thread.slot;
        // Capture the program id before the handler runs: it may unload
        // the thread, and a Return value still lands in the code store.
        let pc = self.ck.thread(thread).map(|t| t.desc.regs.pc).ok();
        let disp = self
            .call_kernel(owner.slot, cpu, |k, env| k.on_trap(env, thread, no, args))
            .unwrap_or(TrapDisposition::Exit);
        self.ck.end_forward(&mut self.mpm, cpu);
        match disp {
            TrapDisposition::Return(v) => {
                if let Some(pc) = pc {
                    self.code.set_trap_ret(pc, v);
                }
            }
            TrapDisposition::Block => {
                // The kernel parks the thread (it may also have unloaded
                // it); if still loaded and running, suspend it.
                if self.ck.thread_id(slot) == Some(thread) {
                    if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                        if matches!(t.desc.state, ThreadState::Running(_)) {
                            t.desc.state = ThreadState::Suspended;
                        }
                    }
                    self.ck.sched.remove(slot);
                }
                self.clear_current(cpu);
            }
            TrapDisposition::Exit => {
                self.terminate_thread(cpu, slot, no as i32);
            }
        }
        self.last_trap_disp = Some(disp);
    }

    pub(crate) fn close_accounting_period(&mut self) {
        let period = self.ck.config.accounting_period;
        let now = self.mpm.clock.cycles();
        if now - self.last_period_end >= period {
            self.last_period_end = now;
            self.ck.emit(KernelEvent::AccountingPeriodEnd { period });
        }
    }
}
