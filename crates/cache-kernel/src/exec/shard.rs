//! The sharded machine: N executives, N shards, explicit messages.
//!
//! A [`Machine`] runs several executives. In the **classic** form
//! (built with [`Machine::new`]) the executives are MPM nodes joined by
//! the store-and-forward [`Fabric`] — the multi-MPM cluster of Fig. 4,
//! byte-identical to the pre-sharding `Cluster` (which is now just a
//! type alias). In the **sharded** form (built with
//! [`Machine::sharded`]) each executive owns one shard of a single
//! simulated machine: its object-cache partition, its physmap
//! partition, its per-CPU ready queue and its counter cell. No shard
//! ever touches another's state; every cross-CPU interaction — TLB
//! shootdown rounds, writeback delivery, signal fan-out, idle steal,
//! interconnect packets — is a [`ShardMsg`] on a bounded SPSC ring
//! ([`hw::ring`]) between the two executives.
//!
//! Two run modes sit behind the one `step`/`run_until_idle` seam:
//!
//! * [`RunMode::Lockstep`] — deterministic. Every quantum runs the
//!   shards in index order on the calling thread, then routes messages
//!   in fixed `(dst, src)` order. Trace-pinned tests, property tests
//!   and fault replay use this mode; with the `lockstep` cargo feature
//!   enabled it is forced regardless of configuration.
//! * [`RunMode::Threaded`] — free-running. Each shard runs on its own
//!   OS thread; rings carry the messages; quiescence is detected from
//!   the shared in-flight count (incremented strictly before a message
//!   becomes visible, decremented strictly after it is fully
//!   processed), so the machine can never report idle while a
//!   shootdown round is still in flight.
//!
//! Backpressure, never loss: a send that finds its ring full counts
//! `rings_full` and stays queued on the sender; it is retried until it
//! fits. A shard thread that panics is caught, counted in
//! `threads_panicked`, and its shard halted — the machine stays usable.
//!
//! [`ShardMsg`]: crate::shardmsg::ShardMsg
//! [`Fabric`]: hw::Fabric

use super::Executive;
use crate::ck::{CacheKernel, CkConfig};
use crate::counters::Counters;
use crate::shardmsg::{ShardDst, ShardMsg};
use hw::{
    mpsc, spsc, Fabric, FaultPlan, FrameFate, MachineConfig, Mpm, MpscRx, MpscTx, Paddr, RingRx,
    RingTx,
};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How a sharded machine executes its shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Barrier-stepped on the calling thread, messages routed in fixed
    /// order at quantum boundaries: deterministic, replayable.
    Lockstep,
    /// One OS thread per shard, rings drained as messages arrive:
    /// fast, order-nondeterministic (totals still converge).
    Threaded,
}

/// Configuration of a sharded machine.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of shards (= simulated CPUs; each shard's MPM has one).
    pub shards: usize,
    /// Physical frames owned by each shard's physmap partition.
    pub frames_per_shard: usize,
    /// Capacity of each inter-shard SPSC ring.
    pub ring_capacity: usize,
    /// Start in free-running threaded mode (the `lockstep` cargo
    /// feature overrides this to lockstep).
    pub threads: bool,
    /// Idle shards steal backlog jobs from their peers.
    pub steal: bool,
    /// Wall-clock seconds the free-running quiescence watchdog allows a
    /// run before force-stopping it. Injected delay schedules slow
    /// *simulated* delivery, not host time, so they must extend a run
    /// within this bound — never trip it.
    pub watchdog_secs: u64,
    /// Cache-Kernel configuration template (`shard_fanout` is set to
    /// the shard count automatically).
    pub ck: CkConfig,
    /// Machine configuration template (`node`, `cpus` and
    /// `phys_frames` are overridden per shard).
    pub machine: MachineConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            frames_per_shard: 2048,
            ring_capacity: 256,
            threads: false,
            steal: true,
            watchdog_secs: 60,
            ck: CkConfig::default(),
            machine: MachineConfig::default(),
        }
    }
}

/// One shard's end of the mesh: its transmit ring to every other shard,
/// its receive ring from every other shard, and the per-destination
/// egress queues where messages wait (and are retried) when a ring is
/// full.
pub(crate) struct ShardPort {
    tx: Vec<Option<RingTx<ShardMsg>>>,
    rx: Vec<Option<RingRx<ShardMsg>>>,
    egress: Vec<VecDeque<ShardMsg>>,
    /// Producer ends of the other shards' signal fan-out rings.
    sig_tx: Vec<Option<MpscTx<Paddr>>>,
    /// Consumer end of this shard's signal fan-out ring.
    sig_rx: Option<MpscRx<Paddr>>,
    /// Per-destination deferred signals (full fan-out ring).
    sig_egress: Vec<VecDeque<Paddr>>,
    /// Reusable drain buffer for one sweep of the fan-out ring.
    sig_sweep: Vec<Paddr>,
}

impl ShardPort {
    fn egress_empty(&self) -> bool {
        self.egress.iter().all(|q| q.is_empty()) && self.sig_egress.iter().all(|q| q.is_empty())
    }
}

/// The full mesh: N×(N−1) SPSC rings plus the shared in-flight count.
/// A message is "in flight" from the moment it is queued for egress to
/// the moment its receiver has fully processed it, so
/// `in_flight == 0 && all shards idle` really means quiescent.
pub(crate) struct RingMesh {
    ports: Vec<ShardPort>,
    in_flight: Arc<AtomicU64>,
    /// Ring capacity (diagnostics).
    pub(crate) capacity: usize,
}

impl RingMesh {
    fn new(shards: usize, capacity: usize) -> Self {
        let mut ports: Vec<ShardPort> = (0..shards)
            .map(|_| ShardPort {
                tx: (0..shards).map(|_| None).collect(),
                rx: (0..shards).map(|_| None).collect(),
                egress: (0..shards).map(|_| VecDeque::new()).collect(),
                sig_tx: (0..shards).map(|_| None).collect(),
                sig_rx: None,
                sig_egress: (0..shards).map(|_| VecDeque::new()).collect(),
                sig_sweep: Vec::new(),
            })
            .collect();
        for src in 0..shards {
            for dst in 0..shards {
                if src == dst {
                    continue;
                }
                let (tx, rx) = spsc::<ShardMsg>(capacity);
                ports[src].tx[dst] = Some(tx);
                ports[dst].rx[src] = Some(rx);
            }
        }
        // One MPSC fan-out ring per shard for shipped signals: every
        // other shard holds a producer handle, so a broadcast signal is
        // one cheap `Paddr` push per peer instead of a full `ShardMsg`,
        // and the receiver drains the whole ring in one wakeup sweep.
        for dst in 0..shards {
            if shards < 2 {
                break;
            }
            let (tx, rx) = mpsc::<Paddr>(capacity);
            for (src, port) in ports.iter_mut().enumerate() {
                if src != dst {
                    port.sig_tx[dst] = Some(tx.clone());
                }
            }
            ports[dst].sig_rx = Some(rx);
        }
        RingMesh {
            ports,
            in_flight: Arc::new(AtomicU64::new(0)),
            capacity,
        }
    }
}

/// Coordination flags shared with the worker threads of one
/// free-running run. Scoped threads borrow it; nothing escapes the run.
struct RunFlags {
    /// Shard i has nothing to do right now (may wake again).
    idle: Vec<AtomicBool>,
    /// Shard i has exhausted its quantum budget.
    done: Vec<AtomicBool>,
    /// Shard i's worker panicked (shard will be halted after the join).
    panicked: Vec<AtomicBool>,
    /// Coordinator verdict: everyone go home.
    stop: AtomicBool,
}

impl RunFlags {
    fn new(n: usize) -> Self {
        RunFlags {
            idle: (0..n).map(|_| AtomicBool::new(false)).collect(),
            done: (0..n).map(|_| AtomicBool::new(false)).collect(),
            panicked: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stop: AtomicBool::new(false),
        }
    }

    fn settled(&self, n: usize) -> bool {
        (0..n).all(|i| self.idle[i].load(Ordering::SeqCst) || self.done[i].load(Ordering::SeqCst))
    }
}

/// A machine of several executives: a classic fabric-connected cluster,
/// or a sharded multiprocessor whose shards exchange explicit messages.
pub struct Machine {
    /// The per-node (per-shard) executives.
    pub nodes: Vec<Executive>,
    /// The interconnect (classic clusters; sharded machines route
    /// packets over the rings instead).
    pub fabric: Fabric,
    /// Cluster-level fault schedule: partitions, heals and whole-node
    /// failures, applied at step boundaries against simulated time.
    /// `None` keeps the fault-free fast path exactly as before.
    pub net_faults: Option<FaultPlan>,
    /// The ring mesh (`Some` iff the machine is sharded).
    pub(crate) mesh: Option<RingMesh>,
    /// Configured run mode (see [`Machine::run_mode`] for the effective
    /// one).
    pub mode: RunMode,
    /// Idle shards steal backlog jobs from their peers.
    pub steal: bool,
    /// Free-running watchdog bound in wall-clock seconds (see
    /// [`ShardConfig::watchdog_secs`]).
    pub watchdog_secs: u64,
}

/// The historical name for the classic multi-MPM configuration: every
/// pre-sharding test and workload built a `Cluster`, and they all still
/// do — the classic [`Machine`] paths are byte-identical.
pub type Cluster = Machine;

impl Machine {
    /// Assemble a classic cluster from executives (their machine
    /// configs should carry distinct node indices).
    pub fn new(nodes: Vec<Executive>) -> Self {
        let fabric = Fabric::new(nodes.len());
        Machine {
            nodes,
            fabric,
            net_faults: None,
            mesh: None,
            mode: RunMode::Lockstep,
            steal: false,
            watchdog_secs: 60,
        }
    }

    /// Build a sharded machine: `cfg.shards` single-CPU executives,
    /// each owning `frames_per_shard` physical frames and one shard of
    /// every kernel structure, connected by a full mesh of bounded
    /// SPSC rings.
    pub fn sharded(cfg: ShardConfig) -> Self {
        let n = cfg.shards.max(1);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let mut ckc = cfg.ck.clone();
            ckc.shard_fanout = n;
            let mpm = Mpm::new(MachineConfig {
                node: i,
                cpus: 1,
                phys_frames: cfg.frames_per_shard,
                ..cfg.machine.clone()
            });
            nodes.push(Executive::new(CacheKernel::new(ckc), mpm));
        }
        Machine {
            nodes,
            fabric: Fabric::new(n),
            net_faults: None,
            mesh: Some(RingMesh::new(n, cfg.ring_capacity.max(2))),
            mode: if cfg.threads {
                RunMode::Threaded
            } else {
                RunMode::Lockstep
            },
            steal: cfg.steal,
            watchdog_secs: cfg.watchdog_secs.max(1),
        }
    }

    /// Number of shards (or cluster nodes).
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// Whether this machine is sharded (vs. a classic cluster).
    pub fn is_sharded(&self) -> bool {
        self.mesh.is_some()
    }

    /// The mode the machine will actually run in: the configured mode,
    /// except that the `lockstep` cargo feature pins everything to
    /// lockstep (so a trace-pinned test suite can force determinism
    /// across the whole tree with one feature flag).
    pub fn run_mode(&self) -> RunMode {
        if cfg!(feature = "lockstep") {
            RunMode::Lockstep
        } else {
            self.mode
        }
    }

    /// Messages currently in flight between shards (queued for egress,
    /// riding a ring, or being processed).
    pub fn in_flight(&self) -> u64 {
        self.mesh
            .as_ref()
            .map(|m| m.in_flight.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Capacity of each inter-shard ring (0 for classic clusters).
    pub fn ring_capacity(&self) -> usize {
        self.mesh.as_ref().map(|m| m.capacity).unwrap_or(0)
    }

    /// The machine's counters: every shard's cell merged into one.
    /// Shards never share a counter cache line; totals exist only at
    /// read time.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::default();
        for node in &self.nodes {
            total.merge_from(&node.ck.stats);
        }
        total
    }

    /// Run every node for `quanta`, then move cross-node traffic. A
    /// failed (halted) node simply stops executing; its traffic is
    /// dropped (fault containment, §3).
    pub fn step(&mut self, quanta: usize) {
        if self.mesh.is_some() {
            match self.run_mode() {
                RunMode::Lockstep => self.lockstep_rounds(quanta),
                RunMode::Threaded => {
                    self.run_threaded(quanta, false);
                }
            }
            return;
        }
        self.classic_step(quanta);
    }

    /// Run until every executive is idle and no message is in flight,
    /// or `max_quanta` elapse. Returns the quanta used (per shard).
    ///
    /// Quiescence is cross-executive: all shards locally idle *and*
    /// the in-flight count zero *and* every outbox/export queue empty.
    /// The in-flight count covers a message from egress-queue to
    /// fully-processed, so the machine cannot report idle while a
    /// shootdown round or steal grant is still travelling.
    pub fn run_until_idle(&mut self, max_quanta: usize) -> usize {
        if self.mesh.is_some() {
            match self.run_mode() {
                RunMode::Lockstep => {
                    for q in 0..max_quanta {
                        if self.sharded_quiescent() {
                            return q;
                        }
                        self.lockstep_rounds(1);
                    }
                    max_quanta
                }
                RunMode::Threaded => self.run_threaded(max_quanta, true),
            }
        } else {
            for q in 0..max_quanta {
                if self.classic_quiescent() {
                    return q;
                }
                self.classic_step(1);
            }
            max_quanta
        }
    }

    /// Halt a node (simulated MPM hardware failure) and stop its
    /// traffic.
    pub fn fail_node(&mut self, node: usize) {
        self.nodes[node].mpm.halt();
        self.fabric.fail_node(node);
    }

    // ------------------------------------------------------------------
    // Classic cluster path (pre-sharding semantics, unchanged)
    // ------------------------------------------------------------------

    fn classic_step(&mut self, quanta: usize) {
        // Fire due fabric schedule entries before the quantum, so every
        // protocol on every node sees the same seeded network cut at the
        // same simulated instant.
        if let Some(plan) = self.net_faults.as_mut() {
            let now = self
                .nodes
                .iter()
                .map(|n| n.mpm.clock.cycles())
                .max()
                .unwrap_or(0);
            for ev in plan.due_fabric_events(now) {
                match ev {
                    hw::FabricEvent::Partition(groups) => self.fabric.set_partition(&groups),
                    hw::FabricEvent::Heal => self.fabric.heal(),
                    hw::FabricEvent::NodeDown(n) => {
                        if n < self.nodes.len() {
                            self.fail_node(n);
                        }
                    }
                    hw::FabricEvent::DelayLink { groups, extra } => {
                        self.fabric.set_link_delay(&groups, extra);
                    }
                    hw::FabricEvent::SlowNode { node, extra } => {
                        self.fabric.set_node_extra(node, extra);
                    }
                    hw::FabricEvent::ClearDelays => self.fabric.clear_delays(),
                    hw::FabricEvent::DelayJitter { permille, seed } => {
                        self.fabric.set_delay_jitter(permille, seed);
                    }
                }
            }
            // Advance the fabric clock so delayed frames whose delivery
            // cycle has arrived mature into the FIFO queues below.
            self.fabric.set_now(now);
        }
        for node in self.nodes.iter_mut() {
            node.run(quanta);
        }
        // Drain outboxes into the fabric, with the sending node's fault
        // plan deciding each frame's fate (loss/duplication injection).
        for node in self.nodes.iter_mut() {
            let halted = node.mpm.halted;
            for pkt in node.outbox.drain(..) {
                if halted {
                    continue;
                }
                let fate = node
                    .faults
                    .as_mut()
                    .map(|p| p.frame_fate())
                    .unwrap_or(FrameFate::Deliver);
                match fate {
                    FrameFate::Deliver => {
                        self.fabric.send(pkt);
                    }
                    FrameFate::Drop => {
                        node.ck.stats.faults_injected += 1;
                    }
                    FrameFate::Duplicate => {
                        node.ck.stats.faults_injected += 1;
                        self.fabric.send(pkt.clone());
                        self.fabric.send(pkt);
                    }
                }
            }
        }
        // Deliver incoming traffic.
        for i in 0..self.nodes.len() {
            if self.fabric.is_failed(i) || self.nodes[i].mpm.halted {
                continue;
            }
            while let Some(pkt) = self.fabric.recv(i) {
                self.nodes[i].deliver_packet(pkt);
            }
        }
    }

    fn classic_quiescent(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.mpm.halted || (n.idle() && n.outbox.is_empty()))
            && self.fabric.total_pending() == 0
    }

    // ------------------------------------------------------------------
    // Sharded lockstep path
    // ------------------------------------------------------------------

    fn sharded_quiescent(&self) -> bool {
        self.in_flight() == 0
            && self.nodes.iter().all(|n| {
                n.mpm.halted || (n.idle() && n.outbox.is_empty() && n.ck.shard_exports.is_empty())
            })
    }

    /// One deterministic round per quantum: run every shard in index
    /// order, collect and flush every shard's exports in index order,
    /// then deliver in fixed `(dst, src)` order. Replies generated
    /// while processing are collected at the end of the round and flow
    /// next round, so the whole schedule is a pure function of the
    /// initial state.
    fn lockstep_rounds(&mut self, quanta: usize) {
        let n = self.nodes.len();
        let steal = self.steal;
        let Some(mesh) = self.mesh.as_mut() else {
            return;
        };
        for _ in 0..quanta {
            for node in self.nodes.iter_mut() {
                node.run(1);
            }
            for (node, port) in self.nodes.iter_mut().zip(mesh.ports.iter_mut()) {
                collect_exports(node, port, &mesh.in_flight, steal, n);
                flush_egress(node, port);
            }
            for dst in 0..n {
                for src in 0..n {
                    if src == dst {
                        continue;
                    }
                    let Some(rx) = mesh.ports[dst].rx[src].as_ref() else {
                        continue;
                    };
                    // Halted shards still drain their rings (a dead CPU
                    // cannot wedge its senders) but drop the messages.
                    let halted = self.nodes[dst].mpm.halted;
                    while let Some(msg) = rx.pop() {
                        if !halted {
                            self.nodes[dst].process_shard_msg(msg);
                        }
                        mesh.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                // The signal fan-out ring drains after the SPSC rings,
                // delivered as one batched sweep. Producers pushed in
                // index order under the lockstep schedule, so the sweep
                // contents are deterministic.
                let port = &mut mesh.ports[dst];
                if let Some(rx) = port.sig_rx.as_ref() {
                    let mut sweep = core::mem::take(&mut port.sig_sweep);
                    sweep.clear();
                    while let Some(paddr) = rx.pop() {
                        sweep.push(paddr);
                    }
                    if !sweep.is_empty() {
                        if !self.nodes[dst].mpm.halted {
                            self.nodes[dst].deliver_signal_sweep(&sweep);
                        }
                        mesh.in_flight
                            .fetch_sub(sweep.len() as u64, Ordering::SeqCst);
                    }
                    port.sig_sweep = sweep;
                }
            }
            for (node, port) in self.nodes.iter_mut().zip(mesh.ports.iter_mut()) {
                collect_exports(node, port, &mesh.in_flight, steal, n);
                flush_egress(node, port);
            }
        }
    }

    // ------------------------------------------------------------------
    // Sharded free-running path
    // ------------------------------------------------------------------

    /// Run the shards on their own OS threads. With `until_idle` the
    /// workers run until global quiescence (or their quantum budget);
    /// otherwise each runs exactly `quanta` quanta and then keeps
    /// draining its rings until the whole machine settles. Returns the
    /// largest per-shard quantum count.
    fn run_threaded(&mut self, quanta: usize, until_idle: bool) -> usize {
        let n = self.nodes.len();
        if n == 0 {
            return 0;
        }
        let steal = self.steal;
        let flags = RunFlags::new(n);
        let Some(mesh) = self.mesh.as_mut() else {
            return 0;
        };
        let in_flight = Arc::clone(&mesh.in_flight);
        let mut used = 0usize;
        std::thread::scope(|s| {
            let flags = &flags;
            let in_flight = &in_flight;
            let handles: Vec<_> = self
                .nodes
                .iter_mut()
                .zip(mesh.ports.iter_mut())
                .enumerate()
                .map(|(i, (node, port))| {
                    s.spawn(move || {
                        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            shard_worker(
                                i, node, port, flags, in_flight, quanta, until_idle, steal, n,
                            )
                        }));
                        match caught {
                            Ok(q) => q,
                            Err(_) => {
                                // The shard is lost but the machine is
                                // not: flag it so the owner halts it
                                // after the join, and unblock the
                                // coordinator. Until the coordinator
                                // calls the run, keep draining (and
                                // dropping) this shard's receive rings —
                                // a dead CPU must not wedge its senders
                                // or hold the in-flight count above
                                // zero forever.
                                flags.panicked[i].store(true, Ordering::SeqCst);
                                flags.idle[i].store(true, Ordering::SeqCst);
                                flags.done[i].store(true, Ordering::SeqCst);
                                drain_after_panic(port, flags, in_flight);
                                0
                            }
                        }
                    })
                })
                .collect();
            coordinate(flags, in_flight, n, self.watchdog_secs);
            for h in handles {
                used = used.max(h.join().unwrap_or(0));
            }
        });
        for i in 0..n {
            if flags.panicked[i].load(Ordering::SeqCst) {
                self.nodes[i].mpm.halt();
                self.nodes[i].ck.stats.threads_panicked += 1;
            }
        }
        used
    }
}

/// The termination coordinator for one free-running run. It never
/// touches shard state; it only watches the flags and the in-flight
/// count, and raises `stop` once the machine has settled: every shard
/// idle or out of budget, nothing in flight — checked twice across a
/// yield so a shard caught mid-transition cannot slip through (a shard
/// clears its idle flag *before* it processes a popped message, and the
/// in-flight count covers the message until processing completes, so a
/// stable double-read really is quiescence). A generous wall-clock
/// watchdog bounds the run even if a worker misbehaves — the machine
/// degrades, it never hangs.
fn coordinate(flags: &RunFlags, in_flight: &AtomicU64, n: usize, watchdog_secs: u64) {
    let start = std::time::Instant::now();
    loop {
        if flags.settled(n) && in_flight.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
            if flags.settled(n) && in_flight.load(Ordering::SeqCst) == 0 {
                flags.stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        if start.elapsed().as_secs() >= watchdog_secs {
            flags.stop.store(true, Ordering::SeqCst);
            return;
        }
        // Sleep-poll: the coordinator must not compete with the shard
        // workers for cycles (the whole machine may share one core).
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
}

/// Quanta a busy worker runs between ring services: amortizes the
/// drain/collect/flush cycle (and, on an oversubscribed host, the
/// context switch) over several quanta. Ring capacity bounds how stale
/// a peer's view can get; 8 quanta of egress fits comfortably.
const RUN_BURST: usize = 8;

/// One shard's worker loop (free-running mode). Invariants that make
/// the coordinator's quiescence check sound:
///
/// * the idle flag is cleared *before* a popped message is processed
///   and before a quantum runs;
/// * a message's in-flight increment happens when it enters the egress
///   queue (before it is ever visible to the receiver) and its
///   decrement strictly after `process_shard_msg` returns;
/// * the idle flag is set only when nothing was processed, the shard
///   has no runnable work, and its egress queues are empty.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    i: usize,
    node: &mut Executive,
    port: &mut ShardPort,
    flags: &RunFlags,
    in_flight: &AtomicU64,
    max_quanta: usize,
    until_idle: bool,
    steal: bool,
    shards: usize,
) -> usize {
    let mut used = 0usize;
    loop {
        if flags.stop.load(Ordering::SeqCst) {
            break;
        }
        let processed = drain_rings(i, node, port, flags, in_flight);
        let budget_left = used < max_quanta && !node.mpm.halted;
        let should_run = budget_left && (!until_idle || processed > 0 || !node.idle());
        if should_run {
            flags.idle[i].store(false, Ordering::SeqCst);
            // Run a burst: re-checking the rings after every single
            // quantum costs more than the quantum itself. Stop early if
            // the shard drains its own work.
            for _ in 0..RUN_BURST {
                if used >= max_quanta {
                    break;
                }
                node.run(1);
                used += 1;
                if until_idle && node.idle() {
                    break;
                }
            }
        }
        collect_exports(node, port, in_flight, steal, shards);
        let flushed_all = flush_egress(node, port);
        if !budget_left {
            flags.done[i].store(true, Ordering::SeqCst);
        }
        if processed == 0 && !should_run {
            // No progress this pass. Only an empty egress queue counts
            // as idle (queued messages are in-flight work), but either
            // way surrender the CPU: spinning here starves the very
            // peer whose full ring we are waiting on.
            if port.egress_empty() {
                flags.idle[i].store(true, Ordering::SeqCst);
            }
            std::thread::yield_now();
        } else if !flushed_all {
            // Made progress but a peer's ring is full: yield so the
            // consumer gets cycles to drain it before we retry.
            std::thread::yield_now();
        }
    }
    used
}

/// Post-panic containment: the worker's state may be arbitrary, but the
/// port is intact (the panic propagated out of `shard_worker`, ending
/// its borrows). Undo the in-flight charges of anything still queued
/// for egress (it will never be sent), then keep draining and dropping
/// the receive rings until the coordinator stops the run, so peers
/// pushing to this shard never see a permanently full ring and the
/// in-flight count can reach zero.
fn drain_after_panic(port: &mut ShardPort, flags: &RunFlags, in_flight: &AtomicU64) {
    for q in port.egress.iter_mut() {
        while q.pop_front().is_some() {
            in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
    for q in port.sig_egress.iter_mut() {
        while q.pop_front().is_some() {
            in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
    while !flags.stop.load(Ordering::SeqCst) {
        let mut drained = 0usize;
        for src in 0..port.rx.len() {
            let Some(rx) = port.rx[src].as_ref() else {
                continue;
            };
            while rx.pop().is_some() {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                drained += 1;
            }
        }
        if let Some(rx) = port.sig_rx.as_ref() {
            while rx.pop().is_some() {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                drained += 1;
            }
        }
        if drained == 0 {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }
}

/// Pop and process every message currently queued on `node`'s receive
/// rings. Clears the idle flag before processing (see the worker-loop
/// invariants); decrements the in-flight count only after processing.
fn drain_rings(
    i: usize,
    node: &mut Executive,
    port: &mut ShardPort,
    flags: &RunFlags,
    in_flight: &AtomicU64,
) -> usize {
    let mut processed = 0usize;
    let halted = node.mpm.halted;
    for src in 0..port.rx.len() {
        let Some(rx) = port.rx[src].as_ref() else {
            continue;
        };
        while let Some(msg) = rx.pop() {
            flags.idle[i].store(false, Ordering::SeqCst);
            if !halted {
                node.process_shard_msg(msg);
            }
            in_flight.fetch_sub(1, Ordering::SeqCst);
            processed += 1;
        }
    }
    // Drain the signal fan-out ring into one sweep and deliver it as a
    // batch: N shipped signals cost one wakeup pass, not N. The
    // in-flight decrement happens only after the sweep is processed, so
    // quiescence still covers every shipped signal end to end.
    if let Some(rx) = port.sig_rx.as_ref() {
        let mut sweep = core::mem::take(&mut port.sig_sweep);
        sweep.clear();
        while let Some(paddr) = rx.pop() {
            sweep.push(paddr);
        }
        if !sweep.is_empty() {
            flags.idle[i].store(false, Ordering::SeqCst);
            if !halted {
                node.deliver_signal_sweep(&sweep);
            }
            in_flight.fetch_sub(sweep.len() as u64, Ordering::SeqCst);
            processed += sweep.len();
        }
        port.sig_sweep = sweep;
    }
    processed
}

/// Move the executive's pending cross-shard traffic into the port's
/// egress queues: Cache-Kernel exports (shootdown broadcasts, steal
/// protocol, anything an application kernel queued through its `Env`)
/// and outbox packets bound for other shards. Also lets an idle shard
/// ask a peer for work. Each queued message counts into the shared
/// in-flight total immediately, so quiescence detection sees it from
/// the instant it exists.
fn collect_exports(
    node: &mut Executive,
    port: &mut ShardPort,
    in_flight: &AtomicU64,
    steal: bool,
    shards: usize,
) {
    let me = node.node();
    if steal && !node.mpm.halted {
        node.maybe_request_steal(shards);
    }
    for export in std::mem::take(&mut node.ck.shard_exports) {
        match export.dst {
            ShardDst::Node(dst) => {
                if dst == me || dst >= shards {
                    // Self- or out-of-range addressed: process locally
                    // rather than dropping (a shard is always allowed
                    // to talk to itself).
                    node.process_shard_msg(export.msg);
                    continue;
                }
                if let ShardMsg::Writeback(_) = &export.msg {
                    node.ck.stats.wb_shipped += 1;
                }
                in_flight.fetch_add(1, Ordering::SeqCst);
                port.egress[dst].push_back(export.msg);
            }
            ShardDst::All => match &export.msg {
                ShardMsg::Shootdown(rs) => {
                    for dst in 0..shards {
                        if dst == me {
                            continue;
                        }
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        port.egress[dst].push_back(ShardMsg::Shootdown(rs.clone()));
                    }
                }
                ShardMsg::Signal { paddr } => {
                    // Broadcast signals ride the per-shard MPSC fan-out
                    // ring: one `Paddr` per peer, drained in one sweep.
                    for dst in 0..shards {
                        if dst == me {
                            continue;
                        }
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        port.sig_egress[dst].push_back(*paddr);
                    }
                }
                // Jobs and writebacks are not broadcastable (they carry
                // unique ownership); a broadcast of one is a caller bug
                // handled by delivering it locally.
                _ => node.process_shard_msg(export.msg),
            },
        }
    }
    let mut kept = Vec::new();
    for pkt in node.outbox.drain(..) {
        if pkt.dst == me {
            kept.push(pkt);
        } else if pkt.dst < shards {
            in_flight.fetch_add(1, Ordering::SeqCst);
            port.egress[pkt.dst].push_back(ShardMsg::Packet(pkt));
        }
        // Packets addressed outside the machine are dropped, as the
        // classic fabric would refuse them.
    }
    node.outbox = kept;
}

/// Try to push every queued egress message onto its ring. A full ring
/// counts `rings_full` once per deferred message per pass and leaves
/// the message queued — backpressure, never loss, never panic.
fn flush_egress(node: &mut Executive, port: &mut ShardPort) -> bool {
    let mut all = true;
    for dst in 0..port.egress.len() {
        let Some(tx) = port.tx[dst].as_ref() else {
            continue;
        };
        while let Some(msg) = port.egress[dst].pop_front() {
            match tx.push(msg) {
                Ok(()) => node.ck.stats.shard_msgs_sent += 1,
                Err(msg) => {
                    node.ck.stats.rings_full += 1;
                    port.egress[dst].push_front(msg);
                    all = false;
                    break;
                }
            }
        }
    }
    for dst in 0..port.sig_egress.len() {
        let Some(tx) = port.sig_tx[dst].as_ref() else {
            continue;
        };
        while let Some(paddr) = port.sig_egress[dst].pop_front() {
            match tx.push(paddr) {
                Ok(()) => node.ck.stats.shard_msgs_sent += 1,
                Err(paddr) => {
                    node.ck.stats.rings_full += 1;
                    port.sig_egress[dst].push_front(paddr);
                    all = false;
                    break;
                }
            }
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appkernel::{AppKernel, Env};
    use crate::fault::{FaultDisposition, TrapDisposition};
    use crate::ids::ObjId;
    use crate::objects::{KernelDesc, MemoryAccessArray, SpaceDesc, ThreadDesc};
    use crate::program::{Script, Step};
    use hw::{Fault, Paddr};

    const SIG_FRAME: Paddr = Paddr(0x20_0000);

    /// Shard 0's kernel: each trap broadcasts `args[0]` signals on the
    /// fan-out ring.
    struct Caster;

    impl AppKernel for Caster {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_page_fault(&mut self, _e: &mut Env, _t: ObjId, _f: Fault) -> FaultDisposition {
            FaultDisposition::Kill
        }
        fn on_trap(&mut self, e: &mut Env, _t: ObjId, _no: u32, args: [u32; 4]) -> TrapDisposition {
            for _ in 0..args[0] {
                e.ck.broadcast_signal(e.mpm, e.cpu, SIG_FRAME);
            }
            TrapDisposition::Return(0)
        }
        fn name(&self) -> &str {
            "caster"
        }
    }

    /// Shard 1's kernel: the first trap panics the shard worker.
    struct Bomb;

    impl AppKernel for Bomb {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_page_fault(&mut self, _e: &mut Env, _t: ObjId, _f: Fault) -> FaultDisposition {
            FaultDisposition::Kill
        }
        fn on_trap(&mut self, _e: &mut Env, _t: ObjId, _no: u32, _a: [u32; 4]) -> TrapDisposition {
            panic!("induced shard panic");
        }
        fn name(&self) -> &str {
            "bomb"
        }
    }

    fn boot_shard(node: &mut Executive, steps: Vec<Step>, kernel: Box<dyn AppKernel>) {
        let k = node.ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let sp = node
            .ck
            .load_space(k, SpaceDesc::default(), &mut node.mpm)
            .unwrap();
        let pc = node.code.register(Box::new(Script::new(steps)));
        node.ck
            .load_thread(k, ThreadDesc::new(sp, pc, 10), false, &mut node.mpm)
            .unwrap();
        node.register_kernel(k, kernel);
    }

    /// A panicked free-running shard must not wedge the machine: its
    /// post-panic drain keeps consuming both its SPSC mesh rings and its
    /// fan-out ring (dropping the messages) so the in-flight count
    /// reaches zero and the coordinator stops without the wall-clock
    /// watchdog.
    #[test]
    fn panicked_shard_drains_fanout_ring() {
        let mut m = Machine::sharded(ShardConfig {
            shards: 2,
            threads: true,
            ring_capacity: 8,
            steal: false,
            ..ShardConfig::default()
        });
        // Shard 0: publish 64 bursts of 8 broadcast signals — far more
        // fan-out traffic than a capacity-8 ring holds, so the run only
        // quiesces if the dead peer keeps draining.
        let mut steps = Vec::new();
        for _ in 0..64 {
            steps.push(Step::Trap {
                no: 1,
                args: [8, 0, 0, 0],
            });
        }
        steps.push(Step::Exit(0));
        boot_shard(&mut m.nodes[0], steps, Box::new(Caster));
        // Shard 1: dies on its first quantum.
        boot_shard(
            &mut m.nodes[1],
            vec![
                Step::Trap {
                    no: 9,
                    args: [0; 4],
                },
                Step::Exit(0),
            ],
            Box::new(Bomb),
        );

        let start = std::time::Instant::now();
        m.run_until_idle(10_000);
        assert!(
            start.elapsed().as_secs() < 30,
            "panicked shard wedged quiescence until the watchdog"
        );
        assert_eq!(m.in_flight(), 0);
        let c = m.counters();
        assert_eq!(c.threads_panicked, 1);
        // The publisher ran to completion despite the dead peer.
        assert_eq!(c.thread_exits, 1);
        assert!(m.nodes[1].mpm.halted);
    }

    /// The quiescence watchdog is a config knob, not a 60-second
    /// constant: the bound plumbs through `ShardConfig`, zero clamps to
    /// a one-second floor, and a healthy threaded run settles through
    /// real quiescence well inside even a tight bound — injected delay
    /// schedules stretch *simulated* delivery, never host time, so they
    /// extend a run without tripping the wall clock.
    #[test]
    fn watchdog_bound_is_configurable() {
        let m = Machine::sharded(ShardConfig {
            shards: 2,
            watchdog_secs: 7,
            ..ShardConfig::default()
        });
        assert_eq!(m.watchdog_secs, 7);
        let m = Machine::sharded(ShardConfig {
            shards: 2,
            watchdog_secs: 0,
            ..ShardConfig::default()
        });
        assert_eq!(m.watchdog_secs, 1, "zero clamps to the one-second floor");

        let mut m = Machine::sharded(ShardConfig {
            shards: 2,
            threads: true,
            ring_capacity: 8,
            steal: false,
            watchdog_secs: 20,
            ..ShardConfig::default()
        });
        let mut steps = Vec::new();
        for _ in 0..16 {
            steps.push(Step::Trap {
                no: 1,
                args: [4, 0, 0, 0],
            });
        }
        steps.push(Step::Exit(0));
        boot_shard(&mut m.nodes[0], steps, Box::new(Caster));
        let start = std::time::Instant::now();
        m.run_until_idle(10_000);
        assert!(
            start.elapsed().as_secs() < 20,
            "healthy run quiesced via settling, not the watchdog"
        );
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.counters().thread_exits, 1);
    }
}
