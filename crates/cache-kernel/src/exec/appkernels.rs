//! The application-kernel registry.
//!
//! Application kernels are trait objects keyed by the slot of the kernel
//! object they are registered under. The table is ordered (a `BTreeMap`)
//! so that broadcast deliveries — clock ticks, for one — visit kernels
//! in a deterministic order regardless of registration history; this is
//! load-bearing for the byte-identical event traces the executive
//! guarantees.

use crate::appkernel::AppKernel;
use std::collections::BTreeMap;

/// Registered application-kernel objects, keyed by kernel-object slot.
#[derive(Default)]
pub struct AppKernelTable {
    kernels: BTreeMap<u16, Box<dyn AppKernel>>,
}

impl AppKernelTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `k` under the kernel-object `slot`.
    pub fn insert(&mut self, slot: u16, k: Box<dyn AppKernel>) {
        self.kernels.insert(slot, k);
    }

    /// Remove and return the kernel registered under `slot`.
    pub fn remove(&mut self, slot: u16) -> Option<Box<dyn AppKernel>> {
        self.kernels.remove(&slot)
    }

    /// Take a kernel out for a call; return it with [`put`] afterwards
    /// (take-out/put-back lets the callee re-enter the executive).
    ///
    /// [`put`]: AppKernelTable::put
    pub fn take(&mut self, slot: u16) -> Option<Box<dyn AppKernel>> {
        self.kernels.remove(&slot)
    }

    /// Return a kernel taken with [`take`].
    ///
    /// [`take`]: AppKernelTable::take
    pub fn put(&mut self, slot: u16, k: Box<dyn AppKernel>) {
        self.kernels.insert(slot, k);
    }

    /// Registered slots in ascending (deterministic) order.
    pub fn slots(&self) -> Vec<u16> {
        self.kernels.keys().copied().collect()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}
