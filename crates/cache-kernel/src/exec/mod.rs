//! The executive: the per-MPM simulation loop, as an event pipeline.
//!
//! Stands in for the hardware's instruction stream: it dispatches loaded
//! threads onto simulated CPUs at fixed priority with round-robin time
//! slicing ([`dispatch`]), executes their [`Program`] steps against the
//! machine (with real TLB misses, page faults and message-mode signals),
//! and drives everything the Cache Kernel *emits* — fault and trap
//! forwards (Fig. 2), writebacks, device interrupts, packet arrivals,
//! accounting-period ends — through one ordered [`KernelEvent`] queue
//! drained by the event pump ([`events`]). The application kernels only
//! ever hear from the pump; the fault, reclaim and device layers never
//! call them directly.
//!
//! Module layout:
//!
//! * [`appkernels`] — the registered application-kernel table;
//! * [`dispatch`] — per-CPU slices, program stepping, memory accesses;
//! * [`faultpath`] — fault/trap forwarding and thread termination;
//! * [`events`] — the pump: event delivery and the trace recorder;
//! * [`devices`] — device polling and fabric packet movement.
//!
//! A [`Cluster`] connects several executives through the fabric for
//! multi-MPM configurations (Fig. 4/5).
//!
//! [`KernelEvent`]: crate::events::KernelEvent
//! [`Program`]: crate::program::Program

pub mod appkernels;
mod devices;
mod dispatch;
pub mod events;
mod faultpath;
pub mod shard;
#[cfg(test)]
mod tests;

pub use appkernels::AppKernelTable;
pub use events::EventTrace;
pub use shard::{Cluster, Machine, RunMode, ShardConfig};

use crate::appkernel::{AppKernel, Env};
use crate::ck::CacheKernel;
use crate::error::CkResult;
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::ids::ObjId;
use crate::objects::{Priority, ThreadDesc};
use crate::program::{CodeStore, Program};
use hw::{FaultPlan, Mpm, Packet};
use std::collections::{HashMap, VecDeque};

/// Factory re-instantiating an application kernel after an SRM restart.
pub type RestartFactory = Box<dyn FnMut(ObjId) -> Box<dyn AppKernel> + Send>;

/// One MPM's executive.
pub struct Executive {
    /// The node's Cache Kernel.
    pub ck: CacheKernel,
    /// The node's hardware.
    pub mpm: Mpm,
    /// Program store.
    pub code: CodeStore,
    /// Registered application kernels (delivery order is slot order).
    pub(crate) kernels: AppKernelTable,
    /// Network channel → owning kernel slot (stand-in for the SRM channel
    /// manager's registry).
    pub channel_owners: HashMap<u32, u16>,
    /// Packets awaiting the fabric.
    pub outbox: Vec<Packet>,
    /// Optional Ethernet driver (the DMA-to-messaging adaptation).
    pub ether_driver: Option<crate::drivers::EtherDriver>,
    /// Channels routed through the Ethernet interface instead of the
    /// fiber channel.
    pub ether_channels: std::collections::HashSet<u32>,
    pub(crate) last_period_end: u64,
    /// Quanta executed (diagnostics).
    pub quanta_run: u64,
    /// Event trace recorder (off by default).
    pub trace: EventTrace,
    /// Disposition of the most recently pumped fault forward, read back
    /// by the faulting CPU's dispatch loop.
    pub(crate) last_fault_disp: Option<FaultDisposition>,
    /// Disposition of the most recently pumped trap forward.
    pub(crate) last_trap_disp: Option<TrapDisposition>,
    /// Active fault-injection plan, if any (chaos testing). Consulted at
    /// quantum boundaries for due kills and device errors, at writeback
    /// delivery for writeback-count kills, and by [`Cluster::step`] for
    /// frame loss/duplication on this node's outbound traffic.
    pub faults: Option<FaultPlan>,
    /// Restart factories by kernel name: when the SRM reloads a crashed
    /// kernel, the executive re-instantiates its application-kernel
    /// object through the matching factory.
    pub(crate) restart_factories: HashMap<String, RestartFactory>,
    /// Deferred jobs awaiting admission into the thread cache. Jobs
    /// migrate between the shards of a sharded machine via idle steal.
    pub jobs: VecDeque<crate::shardmsg::Job>,
    /// Kernel and address space that admitted jobs spawn into (`None`
    /// disables admission entirely — the pre-sharding behavior).
    pub job_target: Option<(ObjId, ObjId)>,
    /// Jobs admitted from the backlog per quantum (the thread cache is
    /// the scarce resource; the backlog is not).
    pub job_admit: usize,
    /// Writeback shipments archived on this shard (the home shard keeps
    /// displaced descriptors the way the SRM keeps restart state).
    pub wb_archive: Vec<crate::shardmsg::WbShipment>,
    /// Last steal victim (rotates).
    pub(crate) steal_victim: usize,
    /// A steal request is outstanding; don't send another.
    pub(crate) steal_outstanding: bool,
    /// Consecutive empty steal grants; a full rotation's worth stops
    /// the stealing until work appears again.
    pub(crate) steal_empty_rounds: usize,
}

impl Executive {
    /// An executive over a booted Cache Kernel and machine.
    pub fn new(mut ck: CacheKernel, mpm: Mpm) -> Self {
        ck.sched.set_cpus(mpm.cpus.len());
        Executive {
            ck,
            mpm,
            code: CodeStore::new(),
            kernels: AppKernelTable::new(),
            channel_owners: HashMap::new(),
            outbox: Vec::new(),
            ether_driver: None,
            ether_channels: std::collections::HashSet::new(),
            last_period_end: 0,
            quanta_run: 0,
            trace: EventTrace::default(),
            last_fault_disp: None,
            last_trap_disp: None,
            faults: None,
            restart_factories: HashMap::new(),
            jobs: VecDeque::new(),
            job_target: None,
            job_admit: 4,
            wb_archive: Vec::new(),
            steal_victim: 0,
            steal_outstanding: false,
            steal_empty_rounds: 0,
        }
    }

    /// Node index.
    pub fn node(&self) -> usize {
        self.mpm.node()
    }

    /// Register the application-kernel object behind a loaded kernel id.
    pub fn register_kernel(&mut self, id: ObjId, mut k: Box<dyn AppKernel>) {
        {
            let mut env = Env {
                ck: &mut self.ck,
                mpm: &mut self.mpm,
                code: &mut self.code,
                cpu: 0,
                node: 0,
                outbox: &mut self.outbox,
            };
            env.node = env.mpm.node();
            k.on_start(&mut env, id);
        }
        self.kernels.insert(id.slot, k);
    }

    /// Remove an application kernel object (after unloading its kernel).
    pub fn unregister_kernel(&mut self, id: ObjId) -> Option<Box<dyn AppKernel>> {
        self.kernels.remove(id.slot)
    }

    /// Route `channel` to `kernel` for incoming packets.
    pub fn register_channel(&mut self, channel: u32, kernel: ObjId) {
        self.channel_owners.insert(channel, kernel.slot);
    }

    /// Invoke a registered kernel with an [`Env`] (take-out/put-back so
    /// the kernel can re-enter the Cache Kernel).
    pub fn call_kernel<R>(
        &mut self,
        kslot: u16,
        cpu: usize,
        f: impl FnOnce(&mut dyn AppKernel, &mut Env) -> R,
    ) -> Option<R> {
        let mut k = self.kernels.take(kslot)?;
        let node = self.mpm.node();
        let r = {
            let mut env = Env {
                ck: &mut self.ck,
                mpm: &mut self.mpm,
                code: &mut self.code,
                cpu,
                node,
                outbox: &mut self.outbox,
            };
            f(k.as_mut(), &mut env)
        };
        self.kernels.put(kslot, k);
        Some(r)
    }

    /// Invoke a registered kernel downcast to its concrete type (tests,
    /// examples and the report harness drive kernels this way).
    pub fn with_kernel<T: 'static, R>(
        &mut self,
        id: ObjId,
        f: impl FnOnce(&mut T, &mut Env) -> R,
    ) -> Option<R> {
        self.call_kernel(id.slot, 0, |k, env| {
            k.as_any().downcast_mut::<T>().map(|t| f(t, env))
        })
        .flatten()
    }

    /// Convenience: install `program` and load a thread running it.
    pub fn spawn_thread(
        &mut self,
        kernel: ObjId,
        space: ObjId,
        program: Box<dyn Program>,
        priority: Priority,
    ) -> CkResult<ObjId> {
        let pc = self.code.register(program);
        let desc = ThreadDesc::new(space, pc, priority);
        match self.ck.load_thread(kernel, desc, false, &mut self.mpm) {
            Ok(id) => Ok(id),
            Err(e) => {
                self.code.remove(pc);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection and restart
    // ------------------------------------------------------------------

    /// Register a restart factory: if the SRM restarts a crashed kernel
    /// saved under `name`, the executive re-instantiates its
    /// application-kernel object by calling `f` with the new identifier.
    pub fn on_restart(
        &mut self,
        name: &str,
        f: impl FnMut(ObjId) -> Box<dyn AppKernel> + Send + 'static,
    ) {
        self.restart_factories.insert(name.to_string(), Box::new(f));
    }

    /// Crash the application kernel in `slot`: its in-memory instance is
    /// dropped (the crash — all volatile state is lost) and the kernel
    /// object is declared dead so its writebacks redirect to the SRM. The
    /// first kernel cannot crash this way. Dead kernels' threads die
    /// organically: their next fault or trap finds no handler and gets
    /// the default Kill/Exit disposition.
    pub fn crash_kernel(&mut self, slot: u16) {
        let Some(id) = self.ck.kernel_id(slot) else {
            return;
        };
        if id == self.ck.first_kernel() {
            return;
        }
        if self.kernels.remove(slot).is_none() {
            return; // already dead
        }
        self.ck.stats.faults_injected += 1;
        let _ = self.ck.mark_kernel_failed(id);
    }

    /// Apply the fault plan's quantum-boundary triggers: due cycle kills
    /// and device error interrupts.
    fn apply_fault_plan(&mut self) {
        let Some(plan) = self.faults.as_mut() else {
            return;
        };
        let now = self.mpm.clock.cycles();
        let kills = plan.due_cycle_kills(now);
        let errors = plan.due_device_errors(now);
        for _ in 0..errors {
            let pa = self.mpm.clockdev.time_page();
            self.ck.stats.faults_injected += 1;
            self.ck.emit(crate::events::KernelEvent::DeviceInterrupt {
                source: crate::events::DeviceSource::Error,
                paddr: pa,
            });
        }
        for slot in kills {
            self.crash_kernel(slot);
        }
    }

    /// Re-register application kernels the SRM restarted: drain the
    /// restart notices and run the matching factories.
    fn process_restarts(&mut self) {
        while let Some((name, id)) = self.ck.take_restart_notice() {
            if let Some(mut f) = self.restart_factories.remove(&name) {
                let k = f(id);
                self.register_kernel(id, k);
                self.restart_factories.insert(name, f);
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run `quanta` scheduling quanta. Each quantum polls devices, pumps
    /// the resulting events to the application kernels, gives every CPU
    /// one time slice, closes the accounting period when due, and pumps
    /// again so the quantum ends with an empty queue.
    pub fn run(&mut self, quanta: usize) {
        for _ in 0..quanta {
            if self.mpm.halted {
                return;
            }
            self.quanta_run += 1;
            self.apply_fault_plan();
            self.admit_jobs();
            self.poll_devices();
            self.pump_events();
            for cpu in 0..self.mpm.cpus.len() {
                self.run_cpu_slice(cpu);
            }
            self.close_accounting_period();
            self.loopback_outbox();
            self.pump_events();
            self.process_restarts();
        }
    }

    /// Run until no thread is runnable or `max_quanta` elapse. Returns
    /// the number of quanta used.
    pub fn run_until_idle(&mut self, max_quanta: usize) -> usize {
        for q in 0..max_quanta {
            if self.mpm.halted {
                return q;
            }
            if self.idle() {
                return q;
            }
            self.run(1);
        }
        max_quanta
    }
}

impl Executive {
    // ------------------------------------------------------------------
    // Shard protocol (see `exec::shard`)
    // ------------------------------------------------------------------

    /// Nothing runnable, nothing pending, nothing backlogged: the
    /// executive has no work it could make progress on by itself.
    pub fn idle(&self) -> bool {
        self.ck.sched.ready_count() == 0
            && self.mpm.cpus.iter().all(|c| c.current.is_none())
            && self.ck.pending_events() == 0
            && self.jobs.is_empty()
    }

    /// Admit backlog jobs into the thread cache, up to `job_admit` per
    /// quantum and only while the ready queue has headroom (backlog
    /// depth is free; cached-thread pressure is not). A load the Cache
    /// Kernel refuses (cache full, overload shed) puts the job back and
    /// ends admission for this quantum — jobs are never lost.
    fn admit_jobs(&mut self) {
        let Some((kernel, space)) = self.job_target else {
            return;
        };
        if self.job_admit == 0 {
            return;
        }
        let headroom = self.job_admit + self.mpm.cpus.len();
        let mut admitted = 0;
        while admitted < self.job_admit && self.ck.sched.ready_count() < headroom {
            let Some(job) = self.jobs.pop_front() else {
                break;
            };
            let pc = self.code.register(job.program);
            let desc = ThreadDesc::new(space, pc, job.priority);
            match self.ck.load_thread(kernel, desc, false, &mut self.mpm) {
                Ok(_) => {
                    self.ck.stats.jobs_admitted += 1;
                    admitted += 1;
                }
                Err(_) => {
                    if let Some(program) = self.code.remove(pc) {
                        self.jobs.push_front(crate::shardmsg::Job {
                            program,
                            priority: job.priority,
                        });
                    }
                    break;
                }
            }
        }
    }

    /// Queue a deferred job on this shard's backlog.
    pub fn push_job(&mut self, program: Box<dyn Program>, priority: Priority) {
        self.jobs
            .push_back(crate::shardmsg::Job { program, priority });
    }

    /// If this shard is idle with an empty backlog, ask the next victim
    /// in rotation for work — at most one request outstanding, and
    /// after a full rotation of empty-handed answers the shard stops
    /// asking until work shows up again.
    pub(crate) fn maybe_request_steal(&mut self, shards: usize) {
        if shards < 2 {
            return;
        }
        if !self.idle() {
            self.steal_empty_rounds = 0;
            return;
        }
        if self.steal_outstanding || self.steal_empty_rounds >= shards - 1 {
            return;
        }
        let me = self.node();
        let mut victim = (self.steal_victim + 1) % shards;
        if victim == me {
            victim = (victim + 1) % shards;
        }
        self.steal_victim = victim;
        self.steal_outstanding = true;
        self.ck.shard_exports.push(crate::shardmsg::ShardExport {
            dst: crate::shardmsg::ShardDst::Node(victim),
            msg: crate::shardmsg::ShardMsg::StealRequest { thief: me },
        });
    }

    /// Clear a CPU's current-thread latch, tolerating an out-of-range
    /// index: the `cpu` in an event payload may describe a wider
    /// machine than this shard (every shard of a sharded build runs
    /// one CPU), and a stale index must never panic a worker thread.
    pub(crate) fn clear_current(&mut self, cpu: usize) {
        if let Some(c) = self.mpm.cpus.get_mut(cpu) {
            c.current = None;
        }
    }

    /// Apply one message from another shard. Replies (steal grants) go
    /// out through `ck.shard_exports` like any other cross-shard
    /// traffic; nothing here can panic on a malformed or late message.
    pub fn process_shard_msg(&mut self, msg: crate::shardmsg::ShardMsg) {
        use crate::shardmsg::{ShardDst, ShardExport, ShardMsg};
        self.ck.stats.shard_msgs_delivered += 1;
        match msg {
            ShardMsg::Packet(pkt) => self.deliver_packet(pkt),
            ShardMsg::Shootdown(rs) => {
                self.ck.stats.remote_shootdowns += 1;
                self.mpm.flush_pages_all_cpus(&rs.pages);
                self.mpm.flush_asids_all_cpus(&rs.asids);
                if rs.rtlb_clear {
                    self.mpm.rtlb_clear_all_cpus();
                } else {
                    self.mpm.rtlb_invalidate_many(&rs.frames);
                }
                self.mpm.rtlb_invalidate_threads_all_cpus(&rs.threads);
                // The remote half of the round is a kernel event on
                // this CPU, symmetric with the issuing side's local
                // Shootdown event (same tracepoint-style gate).
                if self.ck.shootdown_events {
                    self.ck.emit(crate::KernelEvent::Shootdown {
                        pages: rs.pages.len() as u32,
                        frames: rs.frames.len() as u32,
                        asids: rs.asids.len() as u32,
                    });
                } else {
                    self.ck.stats.note_shootdown_round(rs.pages.len() as u64);
                }
            }
            ShardMsg::Signal { paddr } => {
                let _ = self.ck.raise_signal(&mut self.mpm, 0, paddr);
            }
            ShardMsg::Writeback(ws) => {
                self.wb_archive.push(ws);
            }
            ShardMsg::StealRequest { thief } => {
                // Grant the younger half of the backlog (possibly
                // nothing); an empty grant still answers, so the thief
                // can move on to its next victim.
                let grant = self.jobs.len() / 2;
                let split = self.jobs.len() - grant;
                let jobs: Vec<crate::shardmsg::Job> = self.jobs.split_off(split).into();
                self.ck.shard_exports.push(ShardExport {
                    dst: ShardDst::Node(thief),
                    msg: ShardMsg::Work(jobs),
                });
            }
            ShardMsg::Work(jobs) => {
                self.steal_outstanding = false;
                if jobs.is_empty() {
                    self.steal_empty_rounds += 1;
                } else {
                    self.steal_empty_rounds = 0;
                    self.ck.stats.shard_steals += jobs.len() as u64;
                    self.jobs.extend(jobs);
                }
            }
        }
    }

    /// Deliver every signal drained off this shard's fan-out ring in one
    /// pass. A sweep of one keeps the eager path (reverse-TLB fast path
    /// included); two or more coalesce through a [`SignalBatch`]: one
    /// two-stage lookup per unique page, one wakeup per receiving
    /// thread, instead of the full cost per shipped signal.
    ///
    /// [`SignalBatch`]: crate::sigbatch::SignalBatch
    pub(crate) fn deliver_signal_sweep(&mut self, paddrs: &[hw::Paddr]) {
        self.ck.stats.shard_msgs_delivered += paddrs.len() as u64;
        match paddrs {
            [] => {}
            [paddr] => {
                let _ = self.ck.raise_signal(&mut self.mpm, 0, *paddr);
            }
            _ => {
                let mut batch = self.ck.take_signal_batch();
                for &paddr in paddrs {
                    batch.add(paddr);
                }
                self.ck.finish_signal_batch(batch, &mut self.mpm, 0);
            }
        }
    }
}
