//! The executive: the per-MPM simulation loop, as an event pipeline.
//!
//! Stands in for the hardware's instruction stream: it dispatches loaded
//! threads onto simulated CPUs at fixed priority with round-robin time
//! slicing ([`dispatch`]), executes their [`Program`] steps against the
//! machine (with real TLB misses, page faults and message-mode signals),
//! and drives everything the Cache Kernel *emits* — fault and trap
//! forwards (Fig. 2), writebacks, device interrupts, packet arrivals,
//! accounting-period ends — through one ordered [`KernelEvent`] queue
//! drained by the event pump ([`events`]). The application kernels only
//! ever hear from the pump; the fault, reclaim and device layers never
//! call them directly.
//!
//! Module layout:
//!
//! * [`appkernels`] — the registered application-kernel table;
//! * [`dispatch`] — per-CPU slices, program stepping, memory accesses;
//! * [`faultpath`] — fault/trap forwarding and thread termination;
//! * [`events`] — the pump: event delivery and the trace recorder;
//! * [`devices`] — device polling and fabric packet movement.
//!
//! A [`Cluster`] connects several executives through the fabric for
//! multi-MPM configurations (Fig. 4/5).
//!
//! [`KernelEvent`]: crate::events::KernelEvent
//! [`Program`]: crate::program::Program

pub mod appkernels;
mod devices;
mod dispatch;
pub mod events;
mod faultpath;
#[cfg(test)]
mod tests;

pub use appkernels::AppKernelTable;
pub use events::EventTrace;

use crate::appkernel::{AppKernel, Env};
use crate::ck::CacheKernel;
use crate::error::CkResult;
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::ids::ObjId;
use crate::objects::{Priority, ThreadDesc};
use crate::program::{CodeStore, Program};
use hw::{Fabric, FaultPlan, FrameFate, Mpm, Packet};
use std::collections::HashMap;

/// Factory re-instantiating an application kernel after an SRM restart.
pub type RestartFactory = Box<dyn FnMut(ObjId) -> Box<dyn AppKernel> + Send>;

/// One MPM's executive.
pub struct Executive {
    /// The node's Cache Kernel.
    pub ck: CacheKernel,
    /// The node's hardware.
    pub mpm: Mpm,
    /// Program store.
    pub code: CodeStore,
    /// Registered application kernels (delivery order is slot order).
    pub(crate) kernels: AppKernelTable,
    /// Network channel → owning kernel slot (stand-in for the SRM channel
    /// manager's registry).
    pub channel_owners: HashMap<u32, u16>,
    /// Packets awaiting the fabric.
    pub outbox: Vec<Packet>,
    /// Optional Ethernet driver (the DMA-to-messaging adaptation).
    pub ether_driver: Option<crate::drivers::EtherDriver>,
    /// Channels routed through the Ethernet interface instead of the
    /// fiber channel.
    pub ether_channels: std::collections::HashSet<u32>,
    pub(crate) last_period_end: u64,
    /// Quanta executed (diagnostics).
    pub quanta_run: u64,
    /// Event trace recorder (off by default).
    pub trace: EventTrace,
    /// Disposition of the most recently pumped fault forward, read back
    /// by the faulting CPU's dispatch loop.
    pub(crate) last_fault_disp: Option<FaultDisposition>,
    /// Disposition of the most recently pumped trap forward.
    pub(crate) last_trap_disp: Option<TrapDisposition>,
    /// Active fault-injection plan, if any (chaos testing). Consulted at
    /// quantum boundaries for due kills and device errors, at writeback
    /// delivery for writeback-count kills, and by [`Cluster::step`] for
    /// frame loss/duplication on this node's outbound traffic.
    pub faults: Option<FaultPlan>,
    /// Restart factories by kernel name: when the SRM reloads a crashed
    /// kernel, the executive re-instantiates its application-kernel
    /// object through the matching factory.
    pub(crate) restart_factories: HashMap<String, RestartFactory>,
}

impl Executive {
    /// An executive over a booted Cache Kernel and machine.
    pub fn new(mut ck: CacheKernel, mpm: Mpm) -> Self {
        ck.sched.set_cpus(mpm.cpus.len());
        Executive {
            ck,
            mpm,
            code: CodeStore::new(),
            kernels: AppKernelTable::new(),
            channel_owners: HashMap::new(),
            outbox: Vec::new(),
            ether_driver: None,
            ether_channels: std::collections::HashSet::new(),
            last_period_end: 0,
            quanta_run: 0,
            trace: EventTrace::default(),
            last_fault_disp: None,
            last_trap_disp: None,
            faults: None,
            restart_factories: HashMap::new(),
        }
    }

    /// Node index.
    pub fn node(&self) -> usize {
        self.mpm.node()
    }

    /// Register the application-kernel object behind a loaded kernel id.
    pub fn register_kernel(&mut self, id: ObjId, mut k: Box<dyn AppKernel>) {
        {
            let mut env = Env {
                ck: &mut self.ck,
                mpm: &mut self.mpm,
                code: &mut self.code,
                cpu: 0,
                node: 0,
                outbox: &mut self.outbox,
            };
            env.node = env.mpm.node();
            k.on_start(&mut env, id);
        }
        self.kernels.insert(id.slot, k);
    }

    /// Remove an application kernel object (after unloading its kernel).
    pub fn unregister_kernel(&mut self, id: ObjId) -> Option<Box<dyn AppKernel>> {
        self.kernels.remove(id.slot)
    }

    /// Route `channel` to `kernel` for incoming packets.
    pub fn register_channel(&mut self, channel: u32, kernel: ObjId) {
        self.channel_owners.insert(channel, kernel.slot);
    }

    /// Invoke a registered kernel with an [`Env`] (take-out/put-back so
    /// the kernel can re-enter the Cache Kernel).
    pub fn call_kernel<R>(
        &mut self,
        kslot: u16,
        cpu: usize,
        f: impl FnOnce(&mut dyn AppKernel, &mut Env) -> R,
    ) -> Option<R> {
        let mut k = self.kernels.take(kslot)?;
        let node = self.mpm.node();
        let r = {
            let mut env = Env {
                ck: &mut self.ck,
                mpm: &mut self.mpm,
                code: &mut self.code,
                cpu,
                node,
                outbox: &mut self.outbox,
            };
            f(k.as_mut(), &mut env)
        };
        self.kernels.put(kslot, k);
        Some(r)
    }

    /// Invoke a registered kernel downcast to its concrete type (tests,
    /// examples and the report harness drive kernels this way).
    pub fn with_kernel<T: 'static, R>(
        &mut self,
        id: ObjId,
        f: impl FnOnce(&mut T, &mut Env) -> R,
    ) -> Option<R> {
        self.call_kernel(id.slot, 0, |k, env| {
            k.as_any().downcast_mut::<T>().map(|t| f(t, env))
        })
        .flatten()
    }

    /// Convenience: install `program` and load a thread running it.
    pub fn spawn_thread(
        &mut self,
        kernel: ObjId,
        space: ObjId,
        program: Box<dyn Program>,
        priority: Priority,
    ) -> CkResult<ObjId> {
        let pc = self.code.register(program);
        let desc = ThreadDesc::new(space, pc, priority);
        match self.ck.load_thread(kernel, desc, false, &mut self.mpm) {
            Ok(id) => Ok(id),
            Err(e) => {
                self.code.remove(pc);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection and restart
    // ------------------------------------------------------------------

    /// Register a restart factory: if the SRM restarts a crashed kernel
    /// saved under `name`, the executive re-instantiates its
    /// application-kernel object by calling `f` with the new identifier.
    pub fn on_restart(
        &mut self,
        name: &str,
        f: impl FnMut(ObjId) -> Box<dyn AppKernel> + Send + 'static,
    ) {
        self.restart_factories.insert(name.to_string(), Box::new(f));
    }

    /// Crash the application kernel in `slot`: its in-memory instance is
    /// dropped (the crash — all volatile state is lost) and the kernel
    /// object is declared dead so its writebacks redirect to the SRM. The
    /// first kernel cannot crash this way. Dead kernels' threads die
    /// organically: their next fault or trap finds no handler and gets
    /// the default Kill/Exit disposition.
    pub fn crash_kernel(&mut self, slot: u16) {
        let Some(id) = self.ck.kernel_id(slot) else {
            return;
        };
        if id == self.ck.first_kernel() {
            return;
        }
        if self.kernels.remove(slot).is_none() {
            return; // already dead
        }
        self.ck.stats.faults_injected += 1;
        let _ = self.ck.mark_kernel_failed(id);
    }

    /// Apply the fault plan's quantum-boundary triggers: due cycle kills
    /// and device error interrupts.
    fn apply_fault_plan(&mut self) {
        let Some(plan) = self.faults.as_mut() else {
            return;
        };
        let now = self.mpm.clock.cycles();
        let kills = plan.due_cycle_kills(now);
        let errors = plan.due_device_errors(now);
        for _ in 0..errors {
            let pa = self.mpm.clockdev.time_page();
            self.ck.stats.faults_injected += 1;
            self.ck.emit(crate::events::KernelEvent::DeviceInterrupt {
                source: crate::events::DeviceSource::Error,
                paddr: pa,
            });
        }
        for slot in kills {
            self.crash_kernel(slot);
        }
    }

    /// Re-register application kernels the SRM restarted: drain the
    /// restart notices and run the matching factories.
    fn process_restarts(&mut self) {
        while let Some((name, id)) = self.ck.take_restart_notice() {
            if let Some(mut f) = self.restart_factories.remove(&name) {
                let k = f(id);
                self.register_kernel(id, k);
                self.restart_factories.insert(name, f);
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run `quanta` scheduling quanta. Each quantum polls devices, pumps
    /// the resulting events to the application kernels, gives every CPU
    /// one time slice, closes the accounting period when due, and pumps
    /// again so the quantum ends with an empty queue.
    pub fn run(&mut self, quanta: usize) {
        for _ in 0..quanta {
            if self.mpm.halted {
                return;
            }
            self.quanta_run += 1;
            self.apply_fault_plan();
            self.poll_devices();
            self.pump_events();
            for cpu in 0..self.mpm.cpus.len() {
                self.run_cpu_slice(cpu);
            }
            self.close_accounting_period();
            self.loopback_outbox();
            self.pump_events();
            self.process_restarts();
        }
    }

    /// Run until no thread is runnable or `max_quanta` elapse. Returns
    /// the number of quanta used.
    pub fn run_until_idle(&mut self, max_quanta: usize) -> usize {
        for q in 0..max_quanta {
            if self.mpm.halted {
                return q;
            }
            let busy = self.ck.sched.ready_count() > 0
                || self.mpm.cpus.iter().any(|c| c.current.is_some())
                || self.ck.pending_events() > 0;
            if !busy {
                return q;
            }
            self.run(1);
        }
        max_quanta
    }
}

/// A cluster of MPMs connected by the fabric (Fig. 4).
pub struct Cluster {
    /// The per-node executives.
    pub nodes: Vec<Executive>,
    /// The interconnect.
    pub fabric: Fabric,
    /// Cluster-level fault schedule: partitions, heals and whole-node
    /// failures, applied at step boundaries against simulated time.
    /// `None` keeps the fault-free fast path exactly as before.
    pub net_faults: Option<FaultPlan>,
}

impl Cluster {
    /// Assemble a cluster from executives (their machine configs should
    /// carry distinct node indices).
    pub fn new(nodes: Vec<Executive>) -> Self {
        let fabric = Fabric::new(nodes.len());
        Cluster {
            nodes,
            fabric,
            net_faults: None,
        }
    }

    /// Run every node for `quanta`, then move fabric traffic. A failed
    /// (halted) MPM simply stops executing; the fabric drops its traffic
    /// (fault containment, §3).
    pub fn step(&mut self, quanta: usize) {
        // Fire due fabric schedule entries before the quantum, so every
        // protocol on every node sees the same seeded network cut at the
        // same simulated instant.
        if let Some(plan) = self.net_faults.as_mut() {
            let now = self
                .nodes
                .iter()
                .map(|n| n.mpm.clock.cycles())
                .max()
                .unwrap_or(0);
            for ev in plan.due_fabric_events(now) {
                match ev {
                    hw::FabricEvent::Partition(groups) => self.fabric.set_partition(&groups),
                    hw::FabricEvent::Heal => self.fabric.heal(),
                    hw::FabricEvent::NodeDown(n) => {
                        if n < self.nodes.len() {
                            self.fail_node(n);
                        }
                    }
                }
            }
        }
        for node in self.nodes.iter_mut() {
            node.run(quanta);
        }
        // Drain outboxes into the fabric, with the sending node's fault
        // plan deciding each frame's fate (loss/duplication injection).
        for node in self.nodes.iter_mut() {
            let halted = node.mpm.halted;
            for pkt in node.outbox.drain(..) {
                if halted {
                    continue;
                }
                let fate = node
                    .faults
                    .as_mut()
                    .map(|p| p.frame_fate())
                    .unwrap_or(FrameFate::Deliver);
                match fate {
                    FrameFate::Deliver => {
                        self.fabric.send(pkt);
                    }
                    FrameFate::Drop => {
                        node.ck.stats.faults_injected += 1;
                    }
                    FrameFate::Duplicate => {
                        node.ck.stats.faults_injected += 1;
                        self.fabric.send(pkt.clone());
                        self.fabric.send(pkt);
                    }
                }
            }
        }
        // Deliver incoming traffic.
        for i in 0..self.nodes.len() {
            if self.fabric.is_failed(i) || self.nodes[i].mpm.halted {
                continue;
            }
            while let Some(pkt) = self.fabric.recv(i) {
                self.nodes[i].deliver_packet(pkt);
            }
        }
    }

    /// Halt a node (simulated MPM hardware failure) and stop its traffic.
    pub fn fail_node(&mut self, node: usize) {
        self.nodes[node].mpm.halt();
        self.fabric.fail_node(node);
    }
}
