//! CPU dispatch: per-CPU time slices and program stepping.
//!
//! Each quantum gives every CPU one slice. An idle CPU asks the per-CPU
//! scheduler for a pick (own ready queues first, then a deterministic
//! steal sweep), then steps the chosen thread's [`Program`] against the
//! machine — real TLB misses, page faults and message-mode signals —
//! until the slice expires, a higher-priority thread preempts, or the
//! thread stops.
//!
//! [`Program`]: crate::program::Program

use super::Executive;
use crate::ck::CacheKernel;
use crate::objects::ThreadState;
use crate::program::Step;
use hw::{Access, Fault, FaultKind, Pte, Vaddr};

/// Outcome of executing one program step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Keep running within the slice.
    Continue,
    /// The thread stopped (blocked, yielded, exited, or was unloaded).
    Stopped,
}

/// How many times a single access is retried through fault handling
/// before the thread is killed (guards against handlers that never
/// actually resolve the fault).
const MAX_FAULT_RETRIES: usize = 4;

/// The operation to perform once an access translates.
pub(crate) enum AccessOp {
    ReadU32,
    WriteU32(u32),
    ReadBytes(u32),
    WriteBytes(Vec<u8>),
}

impl Executive {
    pub(crate) fn run_cpu_slice(&mut self, cpu: usize) {
        let slot = match self.mpm.cpus[cpu].current {
            Some(s) => s as u16,
            None => {
                let Some(pick) = self.ck.sched.pick(cpu) else {
                    // Idle: real time still passes on this CPU.
                    self.mpm.clock.charge(self.mpm.config.cost.idle_slice);
                    return;
                };
                let slot = pick.slot;
                let cost = self.mpm.config.cost.context_switch;
                self.mpm.clock.charge(cost);
                self.mpm.cpus[cpu].consume(cost);
                self.mpm.cpus[cpu].current = Some(slot as u32);
                if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                    t.desc.state = ThreadState::Running(cpu as u8);
                    t.referenced = true;
                }
                slot
            }
        };
        let slice = self.ck.sched.slice;
        for _ in 0..slice {
            match self.exec_one(cpu, slot) {
                Outcome::Continue => {}
                Outcome::Stopped => {
                    return;
                }
            }
            if self.mpm.cpus[cpu].current != Some(slot as u32) {
                return; // thread vanished under a handler
            }
            // Fixed-priority preemption: a strictly higher-priority thread
            // that became ready (a signal arrival, a wakeup) takes the CPU
            // at the next step boundary.
            if let Some(top) = self.ck.sched.top_priority() {
                if top > self.ck.effective_priority(slot) {
                    let cost = self.mpm.config.cost.context_switch;
                    self.mpm.clock.charge(cost);
                    self.mpm.cpus[cpu].consume(cost);
                    break;
                }
            }
        }
        // Slice expired: back to the tail of its priority queue.
        self.mpm.cpus[cpu].current = None;
        if let Some(t) = self.ck.threads.get_slot_mut(slot) {
            t.desc.state = ThreadState::Ready;
            self.ck.enqueue_thread(slot);
        }
    }

    /// Execute one program step for the thread in `slot` on `cpu`.
    fn exec_one(&mut self, cpu: usize, slot: u16) -> Outcome {
        let Some(tid) = self.ck.thread_id(slot) else {
            self.mpm.cpus[cpu].current = None;
            return Outcome::Stopped;
        };
        let pc = match self.ck.thread(tid) {
            Ok(t) => t.desc.regs.pc,
            Err(_) => {
                self.mpm.cpus[cpu].current = None;
                return Outcome::Stopped;
            }
        };
        let Some((mut prog, mut ctx)) = self.code.take(pc) else {
            // No program behind the pc: treat as an exited thread.
            self.terminate_thread(cpu, slot, -1);
            return Outcome::Stopped;
        };
        ctx.thread = Some(tid);
        ctx.cpu = cpu;

        // Fulfil a pending signal wait before stepping again.
        if ctx.waiting {
            match self.ck.take_signal(slot) {
                Some(va) => {
                    ctx.signal = Some(va);
                    ctx.waiting = false;
                }
                None => {
                    // Spurious wakeup: block again.
                    self.ck.wait_signal(slot);
                    self.mpm.cpus[cpu].current = None;
                    self.code.put(pc, prog, ctx);
                    return Outcome::Stopped;
                }
            }
        }

        let consumed_before = self.mpm.cpus[cpu].consumed;
        self.mpm.clock.charge(1);
        self.mpm.cpus[cpu].consume(1);

        let step = prog.step(&mut ctx);
        // The program and its context go back into the store *before* the
        // step is processed, so application-kernel handlers see it there
        // (fork duplicates it, blocked traps park it).
        self.code.put(pc, prog, ctx);

        let outcome = match step {
            Step::Compute(n) => {
                self.mpm.clock.charge(n);
                self.mpm.cpus[cpu].consume(n);
                Outcome::Continue
            }
            Step::Privileged => {
                // Privilege violation: forwarded like any exception.
                let fault = Fault {
                    kind: FaultKind::Privilege,
                    vaddr: Vaddr(0),
                    write: false,
                };
                match self.forward_fault(cpu, slot, tid, fault) {
                    Outcome::Continue => Outcome::Continue,
                    Outcome::Stopped => Outcome::Stopped,
                }
            }
            Step::Load(va) => self.do_access(cpu, slot, pc, va, Access::Read, AccessOp::ReadU32),
            Step::Store(va, v) => {
                self.do_access(cpu, slot, pc, va, Access::Write, AccessOp::WriteU32(v))
            }
            Step::LoadBytes(va, len) => {
                self.do_access(cpu, slot, pc, va, Access::Read, AccessOp::ReadBytes(len))
            }
            Step::StoreBytes(va, bytes) => self.do_access(
                cpu,
                slot,
                pc,
                va,
                Access::Write,
                AccessOp::WriteBytes(bytes),
            ),
            Step::Trap { no, args } => self.do_trap(cpu, slot, pc, tid, no, args),
            Step::WaitSignal => {
                self.ck.signal_return(slot);
                match self.ck.take_signal(slot) {
                    Some(va) => {
                        self.code.with_ctx(pc, |c| c.signal = Some(va));
                        Outcome::Continue
                    }
                    None => {
                        self.code.with_ctx(pc, |c| c.waiting = true);
                        self.ck.wait_signal(slot);
                        self.mpm.cpus[cpu].current = None;
                        Outcome::Stopped
                    }
                }
            }
            Step::Yield => {
                self.mpm.cpus[cpu].current = None;
                if let Some(t) = self.ck.threads.get_slot_mut(slot) {
                    t.desc.state = ThreadState::Ready;
                    self.ck.enqueue_thread(slot);
                }
                Outcome::Stopped
            }
            Step::Exit(code) => {
                self.terminate_thread(cpu, slot, code);
                return Outcome::Stopped;
            }
        };

        // Attribute the consumed cycles to the owning kernel (§4.3).
        let delta = self.mpm.cpus[cpu].consumed - consumed_before;
        self.ck.account_consumption(slot, cpu, delta);

        // The handler may have unloaded the thread; its program state
        // stays in the store for the reload.
        if self.ck.thread_id(slot) != Some(tid) {
            if self.mpm.cpus[cpu].current == Some(slot as u32) {
                self.mpm.cpus[cpu].current = None;
            }
            return Outcome::Stopped;
        }
        outcome
    }

    fn do_access(
        &mut self,
        cpu: usize,
        slot: u16,
        pc: crate::program::ProgId,
        vaddr: Vaddr,
        access: Access,
        op: AccessOp,
    ) -> Outcome {
        self.code.with_ctx(pc, |c| c.faulted = false);
        for _attempt in 0..MAX_FAULT_RETRIES {
            let Some(tid) = self.ck.thread_id(slot) else {
                self.mpm.cpus[cpu].current = None;
                return Outcome::Stopped;
            };
            let space = match self.ck.thread(tid) {
                Ok(t) => t.desc.space,
                Err(_) => return Outcome::Stopped,
            };
            let asid = CacheKernel::asid_of(space);
            let result = match self.ck.spaces.get_mut(space) {
                Some(s) => self.mpm.translate(cpu, asid, &mut s.pt, vaddr, access),
                None => {
                    // Address space vanished: fatal for the thread.
                    self.terminate_thread(cpu, slot, -2);
                    return Outcome::Stopped;
                }
            };
            match result {
                Ok(tr) => {
                    match &op {
                        AccessOp::ReadU32 => {
                            let v = self.mpm.mem.read_u32(tr.paddr).unwrap_or(0);
                            self.code.with_ctx(pc, |c| c.loaded = v);
                        }
                        AccessOp::WriteU32(v) => {
                            let _ = self.mpm.mem.write_u32(tr.paddr, *v);
                        }
                        AccessOp::ReadBytes(len) => {
                            let mut buf = vec![0u8; *len as usize];
                            let _ = self.mpm.mem.read(tr.paddr, &mut buf);
                            self.code.with_ctx(pc, |c| c.data = buf);
                        }
                        AccessOp::WriteBytes(bytes) => {
                            let _ = self.mpm.mem.write(tr.paddr, bytes);
                        }
                    }
                    // A store to a message-mode page raises an
                    // address-valued signal — or rings a device doorbell
                    // if the page belongs to a device region.
                    if access == Access::Write && tr.pte.has(Pte::MESSAGE) {
                        self.message_store(cpu, tr.paddr);
                    }
                    return Outcome::Continue;
                }
                Err(fault) => {
                    self.code.with_ctx(pc, |c| c.faulted = true);
                    match self.forward_fault(cpu, slot, tid, fault) {
                        Outcome::Continue => continue, // retry the access
                        Outcome::Stopped => return Outcome::Stopped,
                    }
                }
            }
        }
        // The handler kept "resolving" without fixing the fault.
        self.terminate_thread(cpu, slot, -3);
        Outcome::Stopped
    }

    /// A store hit a message-mode page: device doorbell or thread signal.
    fn message_store(&mut self, cpu: usize, paddr: hw::Paddr) {
        // Fiber-channel transmit region?
        let fiber_tx0 = self.mpm.fiber.tx_slot(0);
        let slots = self.mpm.fiber.slots();
        let tx_end = fiber_tx0.0 + slots * hw::PAGE_SIZE;
        if paddr.0 >= fiber_tx0.0 && paddr.0 < tx_end {
            let cost = self.mpm.config.cost.device_cmd;
            self.mpm.clock.charge(cost);
            self.mpm.cpus[cpu].consume(cost);
            if let Some(pkt) = self.mpm.fiber.transmit(&self.mpm.mem, paddr) {
                self.outbox.push(pkt);
            }
            return;
        }
        self.ck.raise_signal(&mut self.mpm, cpu, paddr);
    }
}
