//! Device polling and fabric packet movement.
//!
//! Devices never touch application kernels directly either: the clock's
//! tick and the Ethernet driver's receive completions enter the pipeline
//! as [`KernelEvent::DeviceInterrupt`]s, and arriving fabric packets as
//! [`KernelEvent::PacketArrived`]; the pump turns them into the
//! address-valued signals and kernel hooks.
//!
//! [`KernelEvent::DeviceInterrupt`]: crate::events::KernelEvent
//! [`KernelEvent::PacketArrived`]: crate::events::KernelEvent

use super::Executive;
use crate::events::{DeviceSource, KernelEvent};
use hw::Packet;

impl Executive {
    pub(crate) fn poll_devices(&mut self) {
        // Interval clock: its tick refreshes the time page; the pump
        // raises the address-valued signal on it and runs the registered
        // kernels' rescheduling hooks.
        let now = self.mpm.clock.cycles();
        let tick = self.mpm.clockdev.poll(&mut self.mpm.mem, now);
        if let Some(pa) = tick {
            self.ck.emit(KernelEvent::DeviceInterrupt {
                source: DeviceSource::Clock,
                paddr: pa,
            });
        }
        // Ethernet driver: reclaim transmit descriptors and turn receive
        // completions into interrupt events on the buffer pages.
        if let Some(drv) = self.ether_driver.as_mut() {
            drv.poll(&mut self.ck, &mut self.mpm);
        }
    }

    /// Packets addressed to this very node are delivered locally at the
    /// end of a quantum; the rest wait for the cluster loop.
    pub(crate) fn loopback_outbox(&mut self) {
        let node = self.mpm.node();
        let (local, remote): (Vec<Packet>, Vec<Packet>) =
            self.outbox.drain(..).partition(|p| p.dst == node);
        self.outbox = remote;
        for pkt in local {
            self.deliver_packet(pkt);
        }
    }

    /// Deliver an incoming fabric packet through the fiber interface: it
    /// lands in a reception slot and raises an address-valued signal on
    /// the slot page (§2.2 device model). The arrival is pumped through
    /// the event pipeline immediately, so callers observe the same
    /// synchronous behavior as before the pipeline refactor.
    pub fn deliver_packet(&mut self, pkt: Packet) {
        if self.ether_driver.is_some() && self.ether_channels.contains(&pkt.channel) {
            // DMA into the Ethernet receive ring; the driver emits the
            // interrupt event at the next poll.
            self.mpm.ether.deliver(&mut self.mpm.mem, &pkt);
        } else if let Some(pa) = self.mpm.fiber.deliver(&mut self.mpm.mem, &pkt) {
            self.ck.emit(KernelEvent::DeviceInterrupt {
                source: DeviceSource::Fiber,
                paddr: pa,
            });
        }
        self.ck.emit(KernelEvent::PacketArrived {
            src: pkt.src,
            channel: pkt.channel,
            data: pkt.data,
        });
        self.pump_events();
    }
}
