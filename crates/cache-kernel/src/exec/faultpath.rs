//! The fault path: forwarding faults, traps and thread exits.
//!
//! These routines never call an application kernel directly. They emit
//! the corresponding [`KernelEvent`] into the Cache Kernel's queue
//! (which is where the forwarding costs are charged, Fig. 2 steps 1–2)
//! and then run the event pump; the pump performs the delivery and
//! records the handler's disposition, which the dispatch loop reads back
//! to decide whether the thread continues. Emission-then-pump keeps the
//! fault path synchronous — the thread resumes in the same step — while
//! every forward still flows through the one ordered pipeline.
//!
//! [`KernelEvent`]: crate::events::KernelEvent

use super::dispatch::Outcome;
use super::Executive;
use crate::events::KernelEvent;
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::ids::ObjId;
use hw::Fault;

impl Executive {
    pub(crate) fn forward_fault(
        &mut self,
        cpu: usize,
        slot: u16,
        tid: ObjId,
        fault: Fault,
    ) -> Outcome {
        self.last_fault_disp = None;
        if self
            .ck
            .begin_fault_forward(&mut self.mpm, cpu, slot, fault)
            .is_none()
        {
            self.terminate_thread(cpu, slot, -1);
            return Outcome::Stopped;
        }
        self.pump_events();
        match self.last_fault_disp.take() {
            Some(FaultDisposition::Resume) => {
                if self.ck.thread_id(slot) == Some(tid) {
                    Outcome::Continue
                } else {
                    Outcome::Stopped
                }
            }
            _ => Outcome::Stopped,
        }
    }

    pub(crate) fn do_trap(
        &mut self,
        cpu: usize,
        slot: u16,
        pc: crate::program::ProgId,
        tid: ObjId,
        no: u32,
        args: [u32; 4],
    ) -> Outcome {
        let _ = (pc, tid);
        self.last_trap_disp = None;
        if self
            .ck
            .begin_trap_forward(&mut self.mpm, cpu, slot, no, args)
            .is_none()
        {
            self.terminate_thread(cpu, slot, -1);
            return Outcome::Stopped;
        }
        self.pump_events();
        match self.last_trap_disp.take() {
            Some(TrapDisposition::Return(_)) => Outcome::Continue,
            _ => Outcome::Stopped,
        }
    }

    /// Tear down a thread: emit its exit into the pipeline; the pump
    /// notifies the owning kernel, unloads the thread and drops its
    /// program.
    pub fn terminate_thread(&mut self, cpu: usize, slot: u16, code: i32) {
        if let Some(tid) = self.ck.thread_id(slot) {
            if let Some(owner) = self.ck.thread_owner(slot) {
                self.ck.emit(KernelEvent::ThreadExit {
                    owner,
                    thread: tid,
                    code,
                    cpu,
                });
                self.pump_events();
            } else {
                // Ownerless thread (defensive): unload directly.
                let pc = self.ck.thread(tid).map(|t| t.desc.regs.pc).ok();
                let _ = self.ck.do_unload_thread(tid, &mut self.mpm);
                if let Some(pc) = pc {
                    self.code.remove(pc);
                }
            }
        }
        if let Some(c) = self.mpm.cpus.get_mut(cpu) {
            if c.current == Some(slot as u32) {
                c.current = None;
            }
        }
    }
}
