//! Object replacement: dependency-ordered unload and writeback (§4.2).
//!
//! The caches hold objects with relationships among themselves, with the
//! hardware and internally (Fig. 6):
//!
//! ```text
//!   signal mapping ─▶ thread ─▶ address space ─▶ kernel
//!   p2v mapping ────────────────▲
//! ```
//!
//! "When an object is unloaded … the object first unloads the objects that
//! directly depend on it." Unloading an address space therefore unloads
//! its threads and page mappings first; unloading a thread unloads the
//! signal mappings registered on it; unloading a mapping removes its TLB
//! entries and dependency records and — if it carried a signal — flushes
//! all writable mappings of the frame for multi-mapping consistency.
//!
//! Locking protects an object from *reclamation* only while the objects it
//! depends on are locked as well; explicit unloads always proceed.

use crate::ck::{CacheKernel, CkStats, MappingState, Writeback, STAT_MAPPING};
use crate::error::{CkError, CkResult};
use crate::ids::{ObjId, ObjKind};
use crate::objects::{KernelDesc, ThreadDesc, ThreadState};
use crate::shootdown::ShootdownBatch;
use hw::{Mpm, Pte, Vpn};

impl CacheKernel {
    // ------------------------------------------------------------------
    // Mapping unload
    // ------------------------------------------------------------------

    /// Unload the mapping at `vpn` in `space`, flushing TLBs and removing
    /// dependency records. If `queue_wb` the state is queued on the
    /// writeback channel; either way it is returned. Eager single-page
    /// form: one shootdown round, the Table 2 unload shape.
    pub(crate) fn do_unload_mapping(
        &mut self,
        space: ObjId,
        vpn: Vpn,
        mpm: &mut Mpm,
        queue_wb: bool,
    ) -> Option<MappingState> {
        self.unload_mapping_impl(space, vpn, mpm, queue_wb, None)
    }

    /// Unload one mapping, either eagerly (`batch` = `None`: charge and
    /// broadcast its own shootdown round) or as part of a compound
    /// operation (`batch` = `Some`: record the invalidations, the caller
    /// issues one round for the whole batch).
    ///
    /// Multi-mapping consistency (§4.2): if the mapping carried a signal
    /// registration, every *writable* mapping of the same frame is flushed
    /// too, so a sender can never signal on an address whose receivers
    /// have silently lost their mappings. The siblings join the enclosing
    /// batch; an eager unload opens a local batch so the cascade costs one
    /// extra round, not one per sibling.
    pub(crate) fn unload_mapping_impl(
        &mut self,
        space: ObjId,
        vpn: Vpn,
        mpm: &mut Mpm,
        queue_wb: bool,
        mut batch: Option<&mut ShootdownBatch>,
    ) -> Option<MappingState> {
        let (owner, locked_bit, pte) = {
            let s = self.spaces.get_mut(space)?;
            let pte = s.pt.remove(vpn)?;
            (s.owner, pte.has(Pte::LOCKED), pte)
        };
        if locked_bit {
            if let Some(k) = self.kernels.get_mut(owner) {
                k.locked_mappings = k.locked_mappings.saturating_sub(1);
            }
        }
        self.overload.note_unload(owner.slot, STAT_MAPPING);
        let asid = CacheKernel::asid_of(space);
        let vaddr = vpn.base();
        let paddr = pte.pfn().base();

        // Hardware coherence: drop the translation and any reverse-TLB
        // entry for the frame on every CPU — the shootdown dominates the
        // cost of a mapping unload (Table 2's unload > load). A batched
        // unload pays only the lookup probes here and shares the round
        // issued at the batch flush.
        match batch.as_deref_mut() {
            Some(b) => {
                mpm.clock.charge(2 * mpm.config.cost.hash_probe);
                b.add_page(asid, vpn, pte.pfn());
            }
            None => {
                mpm.clock
                    .charge(CacheKernel::shootdown_cost(mpm) + 2 * mpm.config.cost.hash_probe);
                mpm.flush_page_all_cpus(asid, vaddr);
                mpm.rtlb_invalidate_all_cpus(pte.pfn());
                self.stats.shootdown_rounds += 1;
            }
        }

        // Remove the dependency records; note whether a signal was
        // registered before they go.
        let had_signal = self
            .physmap
            .find_p2v_exact(paddr, asid as u32, vaddr)
            .map(|h| {
                let sig = self.physmap.signal_of(h).is_some();
                self.physmap.remove_p2v(h);
                sig
            })
            .unwrap_or(false);

        let state = MappingState {
            vaddr,
            paddr,
            flags: pte.flags(),
        };
        if queue_wb {
            // Metadata-only mode: the Cache Kernel cannot read the page,
            // so the writeback carries a content-free handle the owner
            // joins against its own backing store.
            let payload = if self.config.metadata_only {
                self.stats.metadata_writebacks += 1;
                crate::caps::opaque_payload(paddr)
            } else {
                0
            };
            self.queue_writeback(Writeback::Mapping {
                owner,
                space,
                vaddr,
                paddr,
                flags: pte.flags(),
                payload,
            });
        }

        if had_signal {
            // Flush all writable mappings of this frame, in any space.
            let mut others = core::mem::take(&mut self.p2v_scratch);
            others.clear();
            self.physmap.visit_p2v(paddr, |m| others.push(m));
            let mut local: Option<ShootdownBatch> = match batch {
                Some(_) => None,
                None => Some(self.take_shootdown_batch()),
            };
            for m in &others {
                let sp = match self.spaces.id_of_slot(m.asid as u16) {
                    Some(id) => id,
                    None => continue,
                };
                let opte = self.spaces.get(sp).map(|s| s.pt.lookup(m.vaddr.vpn()));
                if let Some(opte) = opte {
                    if opte.is_valid() && opte.has(Pte::WRITABLE) {
                        self.stats.consistency_flushes += 1;
                        let b = batch.as_deref_mut().or(local.as_mut());
                        self.unload_mapping_impl(sp, m.vaddr.vpn(), mpm, true, b);
                    }
                }
            }
            others.clear();
            self.p2v_scratch = others;
            if let Some(lb) = local {
                self.finish_shootdown(lb, mpm);
            }
        }
        Some(state)
    }

    /// Reclaim one mapping descriptor to make room for a load by
    /// `for_kernel`, honoring lock rules and giving referenced mappings a
    /// second chance — with two overload twists: a bystander kernel at or
    /// below its mapping reservation is not displaceable by another
    /// kernel's load (the load is shed with [`CkError::Again`]), and a
    /// kernel under thrash penalty forfeits the second chance for its own
    /// mappings. Fails with [`CkError::CacheFull`] only when everything
    /// is pinned by locks.
    pub(crate) fn reclaim_one_mapping(&mut self, for_kernel: ObjId, mpm: &mut Mpm) -> CkResult<()> {
        let now = self.stats.loads[STAT_MAPPING];
        let mut protected = false;
        let budget = self.mapping_fifo.len();
        for _ in 0..=budget {
            let (slot, gen, vpn) = match self.mapping_fifo.pop_front() {
                Some(e) => e,
                None => break,
            };
            // Entry may be stale: space reloaded or mapping replaced.
            let space = ObjId::new(ObjKind::AddrSpace, slot, gen);
            let (owner, pte) = match self.spaces.get(space) {
                Some(s) => (s.owner, s.pt.lookup(vpn)),
                None => continue,
            };
            if !pte.is_valid() {
                continue;
            }
            if self.mapping_pinned(space, vpn, pte) {
                self.mapping_fifo.push_back((slot, gen, vpn));
                continue;
            }
            if owner != for_kernel {
                let reserved = u32::from(self.overload.reserved(owner.slot).mappings);
                if reserved != 0 && self.overload.resident(owner.slot, STAT_MAPPING) <= reserved {
                    protected = true;
                    self.mapping_fifo.push_back((slot, gen, vpn));
                    continue;
                }
            }
            if pte.has(Pte::REFERENCED) && !self.overload.penalized(owner.slot, STAT_MAPPING, now) {
                // Second chance: clear and requeue.
                if let Some(s) = self.spaces.get_mut(space) {
                    s.pt.update(vpn, |p| p.without(Pte::REFERENCED));
                }
                self.mapping_fifo.push_back((slot, gen, vpn));
                continue;
            }
            if self.do_unload_mapping(space, vpn, mpm, true).is_some() {
                self.stats.writebacks[STAT_MAPPING] += 1;
                self.overload
                    .note_displacement(owner.slot, STAT_MAPPING, now);
                return Ok(());
            }
        }
        if protected {
            let backoff = self.config.shed_backoff;
            Err(self.shed_load(for_kernel, backoff))
        } else {
            Err(CkError::CacheFull)
        }
    }

    /// Whether a mapping is protected from reclamation: it is locked *and*
    /// its address space, owning kernel and signal thread (if any) are all
    /// locked (§4.2: "a locked mapping can be reclaimed unless its address
    /// space, its kernel object and its signal thread … are locked").
    fn mapping_pinned(&self, space: ObjId, vpn: Vpn, pte: Pte) -> bool {
        if !pte.has(Pte::LOCKED) {
            return false;
        }
        let s = match self.spaces.get(space) {
            Some(s) => s,
            None => return false,
        };
        if !s.locked {
            return false;
        }
        let k = match self.kernels.get(s.owner) {
            Some(k) => k,
            None => return false,
        };
        if !k.locked {
            return false;
        }
        let asid = CacheKernel::asid_of(space) as u32;
        if let Some(h) = self
            .physmap
            .find_p2v_exact(pte.pfn().base(), asid, vpn.base())
        {
            if let Some(tslot) = self.physmap.signal_of(h) {
                match self.threads.get_slot(tslot as u16) {
                    Some(t) if t.locked => {}
                    _ => return false,
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Thread unload
    // ------------------------------------------------------------------

    /// Unload a thread: first the signal mappings that depend on it, then
    /// the thread itself (descheduled, reverse-TLB entries invalidated).
    /// Fails with [`CkError::StaleId`] if the identifier no longer names a
    /// live thread — checked up front, *before* side effects, so a stale
    /// id can never strip signal mappings off an unrelated thread that
    /// reused the slot. Eager form: the whole teardown rides one
    /// shootdown round.
    pub(crate) fn do_unload_thread(
        &mut self,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<Box<ThreadDesc>> {
        let mut batch = self.take_shootdown_batch();
        let res = self.unload_thread_batched(id, mpm, &mut batch);
        self.finish_shootdown(batch, mpm);
        res
    }

    /// Thread unload body with the invalidations deferred to `batch`. The
    /// caller issues (and pays for) the cross-CPU round.
    pub(crate) fn unload_thread_batched(
        &mut self,
        id: ObjId,
        mpm: &mut Mpm,
        batch: &mut ShootdownBatch,
    ) -> CkResult<Box<ThreadDesc>> {
        if self.threads.get(id).is_none() {
            return Err(CkError::StaleId(id));
        }
        // Copy the context out; the reverse-TLB invalidations join the
        // enclosing batch's single round.
        mpm.clock.charge(CacheKernel::copy_cost(
            mpm,
            core::mem::size_of::<ThreadDesc>(),
        ));
        // Signal mappings depending on this thread go first (Fig. 6).
        for (paddr, vaddr, asid) in self.physmap.signal_mappings_of_thread(id.slot as u32) {
            let _ = paddr;
            if let Some(sp) = self.spaces.id_of_slot(asid as u16) {
                self.unload_mapping_impl(sp, vaddr.vpn(), mpm, true, Some(batch));
            }
        }
        // Defensive: drop any orphan signal records.
        self.physmap.remove_signals_of_thread(id.slot as u32);

        self.sched.remove(id.slot);
        // Scheduling state clears immediately; only the reverse-TLB sweep
        // is deferred to the batch round.
        for cpu in mpm.cpus.iter_mut() {
            if cpu.current == Some(id.slot as u32) {
                cpu.current = None;
            }
        }
        batch.add_thread(id.slot as u32);
        let t = self.threads.remove(id).ok_or(CkError::StaleId(id))?;
        self.overload
            .note_unload(t.owner.slot, CkStats::idx_pub(ObjKind::Thread));
        if t.locked {
            if let Some(k) = self.kernels.get_mut(t.owner) {
                k.locked_threads = k.locked_threads.saturating_sub(1);
            }
        }
        Ok(Box::new(t.desc))
    }

    /// Reclamation writeback of a thread: unload and queue its state to
    /// its owner.
    pub(crate) fn writeback_thread(&mut self, id: ObjId, mpm: &mut Mpm) -> CkResult<()> {
        let owner = self
            .threads
            .get(id)
            .map(|t| t.owner)
            .ok_or(CkError::StaleId(id))?;
        // Writeback channel message: copy the descriptor out and signal.
        mpm.clock.charge(
            CacheKernel::copy_cost(mpm, core::mem::size_of::<ThreadDesc>())
                + mpm.config.cost.signal_fast,
        );
        let desc = self.do_unload_thread(id, mpm)?;
        let class = CkStats::idx_pub(ObjKind::Thread);
        self.stats.writebacks[class] += 1;
        self.overload
            .note_displacement(owner.slot, class, self.stats.loads[class]);
        self.queue_writeback(Writeback::Thread { owner, id, desc });
        Ok(())
    }

    /// Choose a thread to displace with the shared clock sweep
    /// ([`crate::cache::ObjCache::victim`]), on behalf of a load by
    /// `for_kernel`. A thread is pinned if it is currently running, or if
    /// it is locked *and* its address space and owning kernel are locked
    /// too; referenced threads get a second chance. Overload rules: a
    /// bystander kernel at or below its thread reservation is protected
    /// (shedding the greedy load with [`CkError::Again`] if nothing else
    /// is displaceable), and a kernel under thrash penalty forfeits the
    /// second chance for its own threads.
    pub(crate) fn thread_victim(&mut self, for_kernel: ObjId) -> CkResult<ObjId> {
        let spaces = &self.spaces;
        let kernels = &self.kernels;
        let overload = &self.overload;
        let class = CkStats::idx_pub(ObjKind::Thread);
        let now = self.stats.loads[class];
        let mut protected = false;
        let victim = self.threads.victim(
            |_, t| {
                if matches!(t.desc.state, ThreadState::Running(_)) {
                    return true;
                }
                if t.owner != for_kernel {
                    let reserved = u32::from(overload.reserved(t.owner.slot).threads);
                    if reserved != 0 && overload.resident(t.owner.slot, class) <= reserved {
                        protected = true;
                        return true;
                    }
                }
                t.locked
                    && spaces
                        .get(t.desc.space)
                        .map(|s| {
                            s.locked && kernels.get(s.owner).map(|k| k.locked).unwrap_or(false)
                        })
                        .unwrap_or(false)
            },
            |t| {
                if overload.penalized(t.owner.slot, class, now) {
                    t.referenced = false;
                    return false;
                }
                core::mem::replace(&mut t.referenced, false)
            },
        );
        match victim {
            Some(id) => Ok(id),
            None if protected => {
                let backoff = self.config.shed_backoff;
                Err(self.shed_load(for_kernel, backoff))
            }
            None => Err(CkError::CacheFull),
        }
    }

    // ------------------------------------------------------------------
    // Address-space unload
    // ------------------------------------------------------------------

    /// Unload an address space: all threads in it, then all its page
    /// mappings, then the space itself. If `queue_space_wb`, a `Space`
    /// writeback is queued (reclamation); explicit unloads skip it.
    /// Eager form: one shootdown round covers the whole teardown.
    pub(crate) fn do_unload_space(
        &mut self,
        id: ObjId,
        mpm: &mut Mpm,
        queue_space_wb: bool,
    ) -> CkResult<()> {
        let mut batch = self.take_shootdown_batch();
        let res = self.unload_space_batched(id, mpm, queue_space_wb, &mut batch);
        // On error the partial teardown's invalidations still must reach
        // the other CPUs; flush whatever was collected.
        self.finish_shootdown(batch, mpm);
        res
    }

    /// Space unload body with the invalidations deferred to `batch`.
    pub(crate) fn unload_space_batched(
        &mut self,
        id: ObjId,
        mpm: &mut Mpm,
        queue_space_wb: bool,
        batch: &mut ShootdownBatch,
    ) -> CkResult<()> {
        let owner = self
            .spaces
            .get(id)
            .map(|s| s.owner)
            .ok_or(CkError::StaleId(id))?;
        // Threads first: "before an address space object is written back,
        // all the page mappings in the address space and all the
        // associated threads are written back" (§2.1).
        for tid in self.threads.ids_where(|t| t.desc.space == id) {
            let Some(towner) = self.threads.get(tid).map(|t| t.owner) else {
                continue;
            };
            let desc = self.unload_thread_batched(tid, mpm, batch)?;
            self.queue_writeback(Writeback::Thread {
                owner: towner,
                id: tid,
                desc,
            });
        }
        // Then every mapping.
        let mut vpns = core::mem::take(&mut self.vpn_scratch);
        vpns.clear();
        if let Some(s) = self.spaces.get(id) {
            vpns.extend(s.pt.iter().map(|(v, _)| v));
        }
        for &vpn in &vpns {
            self.unload_mapping_impl(id, vpn, mpm, true, Some(batch));
        }
        vpns.clear();
        self.vpn_scratch = vpns;
        // The whole-ASID flush subsumes this space's per-page entries at
        // the batch flush.
        batch.flush_asid(CacheKernel::asid_of(id));
        if let Some(s) = self.spaces.remove(id) {
            self.overload
                .note_unload(owner.slot, CkStats::idx_pub(ObjKind::AddrSpace));
            if s.locked {
                if let Some(k) = self.kernels.get_mut(owner) {
                    k.locked_spaces = k.locked_spaces.saturating_sub(1);
                }
            }
        }
        if queue_space_wb {
            self.queue_writeback(Writeback::Space { owner, id });
        }
        Ok(())
    }

    /// Reclamation writeback of a space. The shootdown is charged once at
    /// the teardown's batch flush, not here.
    pub(crate) fn writeback_space(&mut self, id: ObjId, mpm: &mut Mpm) -> CkResult<()> {
        let owner = self
            .spaces
            .get(id)
            .map(|s| s.owner)
            .ok_or(CkError::StaleId(id))?;
        mpm.clock.charge(mpm.config.cost.signal_fast);
        self.do_unload_space(id, mpm, true)?;
        let class = CkStats::idx_pub(ObjKind::AddrSpace);
        self.stats.writebacks[class] += 1;
        self.overload
            .note_displacement(owner.slot, class, self.stats.loads[class]);
        Ok(())
    }

    /// Choose an address space to displace with the shared clock sweep,
    /// on behalf of a load by `for_kernel`. A space is pinned if locked
    /// with a locked owner kernel, or if it contains a running thread;
    /// referenced spaces get a second chance. Overload rules as in
    /// [`CacheKernel::thread_victim`]: bystanders at or below their space
    /// reservation are protected, thrash-penalized owners forfeit the
    /// second chance.
    pub(crate) fn space_victim(&mut self, for_kernel: ObjId) -> CkResult<ObjId> {
        let threads = &self.threads;
        let kernels = &self.kernels;
        let overload = &self.overload;
        let class = CkStats::idx_pub(ObjKind::AddrSpace);
        let now = self.stats.loads[class];
        let mut protected = false;
        let victim = self.spaces.victim(
            |id, s| {
                if s.owner != for_kernel {
                    let reserved = u32::from(overload.reserved(s.owner.slot).spaces);
                    if reserved != 0 && overload.resident(s.owner.slot, class) <= reserved {
                        protected = true;
                        return true;
                    }
                }
                let fully_locked =
                    s.locked && kernels.get(s.owner).map(|k| k.locked).unwrap_or(false);
                let has_running = threads.iter().any(|(_, t)| {
                    t.desc.space == id && matches!(t.desc.state, ThreadState::Running(_))
                });
                fully_locked || has_running
            },
            |s| {
                if overload.penalized(s.owner.slot, class, now) {
                    s.referenced = false;
                    return false;
                }
                core::mem::replace(&mut s.referenced, false)
            },
        );
        match victim {
            Some(id) => Ok(id),
            None if protected => {
                let backoff = self.config.shed_backoff;
                Err(self.shed_load(for_kernel, backoff))
            }
            None => Err(CkError::CacheFull),
        }
    }

    // ------------------------------------------------------------------
    // Kernel unload
    // ------------------------------------------------------------------

    /// Unload a kernel object with all its spaces (and their threads and
    /// mappings). One batched shootdown round covers every space.
    pub(crate) fn do_unload_kernel(
        &mut self,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> CkResult<Box<KernelDesc>> {
        if self.kernels.get(id).is_none() {
            return Err(CkError::StaleId(id));
        }
        let mut batch = self.take_shootdown_batch();
        let mut err = None;
        for sp in self.spaces.ids_where(|s| s.owner == id) {
            if let Err(e) = self.unload_space_batched(sp, mpm, true, &mut batch) {
                err = Some(e);
                break;
            }
        }
        self.finish_shootdown(batch, mpm);
        if let Some(e) = err {
            return Err(e);
        }
        self.accounts.remove(&id.slot);
        let k = self.kernels.remove(id).ok_or(CkError::StaleId(id))?;
        self.overload
            .note_unload(k.owner.slot, CkStats::idx_pub(ObjKind::Kernel));
        // The unloaded kernel's reservation and thrash state die with it;
        // its pending-writeback count survives until the queue drains
        // (the sum-of-pending invariant tracks queued events, not loaded
        // kernels).
        self.overload.reset_kernel(id.slot);
        Ok(Box::new(k.desc))
    }

    /// Reclamation writeback of a kernel object (to the first kernel).
    pub(crate) fn writeback_kernel(
        &mut self,
        id: ObjId,
        mpm: &mut Mpm,
    ) -> crate::error::CkResult<()> {
        let owner = self
            .kernels
            .get(id)
            .map(|k| k.owner)
            .ok_or(crate::error::CkError::StaleId(id))?;
        mpm.clock.charge(
            CacheKernel::copy_cost(mpm, core::mem::size_of::<crate::objects::KernelDesc>())
                + mpm.config.cost.signal_fast,
        );
        let desc = self.do_unload_kernel(id, mpm)?;
        let class = CkStats::idx_pub(ObjKind::Kernel);
        self.stats.writebacks[class] += 1;
        self.overload
            .note_displacement(owner.slot, class, self.stats.loads[class]);
        self.queue_writeback(Writeback::Kernel { owner, id, desc });
        Ok(())
    }

    /// Choose a kernel object to displace with the shared clock sweep:
    /// never the first kernel, never a locked kernel (a kernel has no
    /// dependencies, so its lock alone pins it); referenced kernels get a
    /// second chance. Returns `None` before boot instead of panicking
    /// (nothing is displaceable in an unbooted Cache Kernel).
    pub(crate) fn kernel_victim(&mut self) -> Option<ObjId> {
        let first = self.first_kernel?;
        self.kernels.victim(
            |id, k| id == first || k.locked,
            |k| core::mem::replace(&mut k.referenced, false),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ck::CkConfig;
    use crate::error::CkError;
    use crate::objects::*;
    use hw::{MachineConfig, Paddr, Rights};

    fn setup(cfg: CkConfig) -> (CacheKernel, Mpm, ObjId) {
        let mut ck = CacheKernel::new(cfg);
        let mpm = Mpm::new(MachineConfig {
            phys_frames: 4096,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        (ck, mpm, srm)
    }

    fn small() -> CkConfig {
        CkConfig {
            kernel_slots: 3,
            space_slots: 3,
            thread_slots: 4,
            mapping_capacity: 8,
            ..CkConfig::default()
        }
    }

    #[test]
    fn mapping_capacity_triggers_writeback() {
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        // Fill the 8-descriptor pool, then load one more.
        for i in 0..9u32 {
            ck.load_mapping(
                srm,
                sp,
                hw::Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x20_0000 + i * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        assert_eq!(ck.physmap.len(), 8);
        assert_eq!(ck.stats.writebacks[STAT_MAPPING], 1);
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 1);
        match &wbs[0] {
            Writeback::Mapping { vaddr, .. } => assert_eq!(*vaddr, hw::Vaddr(0x10_0000)),
            other => panic!("unexpected {other:?}"),
        }
        // The oldest mapping is gone from the page table too.
        assert_eq!(
            ck.query_mapping(srm, sp, hw::Vaddr(0x10_0000)),
            Err(CkError::NoMapping)
        );
    }

    #[test]
    fn referenced_mappings_get_second_chance() {
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        for i in 0..8u32 {
            ck.load_mapping(
                srm,
                sp,
                hw::Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x20_0000 + i * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        // Touch the oldest mapping so its REFERENCED bit is set.
        ck.space_mut(sp)
            .unwrap()
            .pt
            .update(hw::Vaddr(0x10_0000).vpn(), |p| p.with(Pte::REFERENCED));
        ck.load_mapping(
            srm,
            sp,
            hw::Vaddr(0x30_0000),
            Paddr(0x40_0000),
            Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        // The referenced first mapping survived; the second-oldest went.
        assert!(ck.query_mapping(srm, sp, hw::Vaddr(0x10_0000)).is_ok());
        assert_eq!(
            ck.query_mapping(srm, sp, hw::Vaddr(0x10_1000)),
            Err(CkError::NoMapping)
        );
    }

    #[test]
    fn space_unload_cascades_threads_and_mappings() {
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let _t1 = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        let _t2 = ck
            .load_thread(srm, ThreadDesc::new(sp, 2, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            hw::Vaddr(0x1000),
            Paddr(0x2000),
            0,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        ck.unload_space(srm, sp, &mut mpm).unwrap();
        assert!(ck.threads.is_empty());
        assert!(ck.physmap.is_empty());
        assert_eq!(ck.sched.ready_count(), 0);
        // Two thread writebacks + one mapping writeback (explicit space
        // unload itself returns no Space record).
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 3);
    }

    #[test]
    fn thread_unload_removes_its_signal_mappings() {
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            hw::Vaddr(0x5000),
            Paddr(0x6000),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        assert_eq!(ck.physmap.len(), 2); // p2v + signal record
        ck.unload_thread(srm, t, &mut mpm).unwrap();
        assert!(ck.physmap.is_empty(), "signal mapping unloaded with thread");
        assert_eq!(
            ck.query_mapping(srm, sp, hw::Vaddr(0x5000)),
            Err(CkError::NoMapping)
        );
    }

    #[test]
    fn multi_mapping_consistency_flush() {
        // Receiver holds a signal mapping; sender holds a writable mapping
        // of the same frame. Unloading the receiver's signal mapping must
        // flush the sender's writable mapping (§4.2).
        let (mut ck, mut mpm, srm) = setup(small());
        let recv_sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let send_sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(recv_sp, 1, 5), false, &mut mpm)
            .unwrap();
        let frame = Paddr(0x9000);
        ck.load_mapping(
            srm,
            recv_sp,
            hw::Vaddr(0xa000),
            frame,
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        ck.load_mapping(
            srm,
            send_sp,
            hw::Vaddr(0xb000),
            frame,
            Pte::WRITABLE | Pte::MESSAGE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        ck.unload_mapping_range(srm, recv_sp, hw::Vaddr(0xa000), 0x1000, &mut mpm)
            .unwrap();
        assert_eq!(ck.stats.consistency_flushes, 1);
        assert_eq!(
            ck.query_mapping(srm, send_sp, hw::Vaddr(0xb000)),
            Err(CkError::NoMapping),
            "sender's writable mapping flushed for consistency"
        );
    }

    #[test]
    fn kernel_cache_reclaims_on_pressure() {
        let (mut ck, mut mpm, srm) = setup(small());
        let all = || KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        };
        let k1 = ck.load_kernel(srm, all(), &mut mpm).unwrap();
        let _k2 = ck.load_kernel(srm, all(), &mut mpm).unwrap();
        // Cache is full (srm + k1 + k2 = 3 slots). Next load displaces one.
        let sp = ck.load_space(k1, SpaceDesc::default(), &mut mpm).unwrap();
        ck.load_mapping(
            k1,
            sp,
            hw::Vaddr(0x1000),
            Paddr(0x2000),
            0,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        let _k3 = ck.load_kernel(srm, all(), &mut mpm).unwrap();
        let wbs = ck.take_writebacks();
        // k1 (least recently loaded unlocked kernel) was displaced along
        // with its space and mapping.
        assert!(wbs
            .iter()
            .any(|w| matches!(w, Writeback::Kernel { id, .. } if *id == k1)));
        assert!(wbs.iter().any(|w| matches!(w, Writeback::Space { .. })));
        assert!(wbs.iter().any(|w| matches!(w, Writeback::Mapping { .. })));
        assert!(ck.kernel(k1).is_err());
        assert!(ck.space(sp).is_err());
    }

    #[test]
    fn locked_kernel_not_reclaimed() {
        let (mut ck, mut mpm, srm) = setup(small());
        let all = || KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        };
        let k1 = ck.load_kernel(srm, all(), &mut mpm).unwrap();
        let k2 = ck.load_kernel(srm, all(), &mut mpm).unwrap();
        ck.lock(srm, k1).unwrap();
        let _k3 = ck.load_kernel(srm, all(), &mut mpm).unwrap();
        assert!(ck.kernel(k1).is_ok(), "locked kernel survived");
        assert!(ck.kernel(k2).is_err(), "unlocked kernel displaced");
        // With every kernel locked, a further load fails CacheFull.
        let k3 = ck.kernels.ids_where(|_| true);
        for id in k3 {
            let _ = ck.lock(srm, id);
        }
        assert_eq!(
            ck.load_kernel(srm, all(), &mut mpm),
            Err(CkError::CacheFull)
        );
    }

    #[test]
    fn thread_cache_reclaims_on_pressure() {
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(
                ck.load_thread(srm, ThreadDesc::new(sp, i, 5), false, &mut mpm)
                    .unwrap(),
            );
        }
        // Fifth thread displaces one (they are all Ready, none running).
        let t5 = ck
            .load_thread(srm, ThreadDesc::new(sp, 99, 5), false, &mut mpm)
            .unwrap();
        assert!(ck.thread(t5).is_ok());
        assert_eq!(ck.threads.len(), 4);
        let wbs = ck.take_writebacks();
        assert_eq!(wbs.len(), 1);
        match &wbs[0] {
            Writeback::Thread { desc, .. } => assert!(desc.regs.pc < 4),
            other => panic!("unexpected {other:?}"),
        }
        // Scheduler no longer references the displaced slot's stale entry.
        assert_eq!(ck.sched.ready_count(), 4);
    }

    #[test]
    fn space_cache_reclaims_on_pressure() {
        let (mut ck, mut mpm, srm) = setup(small());
        let s1 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let _s2 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let _s3 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let _t = ck
            .load_thread(srm, ThreadDesc::new(s1, 1, 5), false, &mut mpm)
            .unwrap();
        let s4 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        assert!(ck.space(s4).is_ok());
        let wbs = ck.take_writebacks();
        assert!(wbs.iter().any(|w| matches!(w, Writeback::Space { .. })));
        // If s1 was the victim, its thread was written back first.
        if ck.space(s1).is_err() {
            assert!(wbs.iter().any(|w| matches!(w, Writeback::Thread { .. })));
        }
    }

    #[test]
    fn victim_selection_shares_the_clock_sweep() {
        // thread/space/kernel victim selection all ride the one
        // ObjCache::victim clock helper: a referenced object survives the
        // first sweep (bit cleared in passing), a running thread is pinned.
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t1 = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        let t2 = ck
            .load_thread(srm, ThreadDesc::new(sp, 2, 5), false, &mut mpm)
            .unwrap();
        ck.threads.get_mut(t1).unwrap().referenced = true;
        ck.threads.get_mut(t2).unwrap().referenced = false;
        assert_eq!(ck.thread_victim(srm), Ok(t2), "unreferenced taken first");
        // The sweep cleared t1's bit in passing; it is the next victim.
        assert_eq!(ck.thread_victim(srm), Ok(t1));
        // Running threads are pinned outright.
        ck.threads.get_mut(t1).unwrap().desc.state = ThreadState::Running(0);
        ck.threads.get_mut(t2).unwrap().desc.state = ThreadState::Running(1);
        assert_eq!(ck.thread_victim(srm), Err(CkError::CacheFull));
    }

    #[test]
    fn unload_of_stale_id_is_an_error_not_a_panic() {
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.unload_thread(srm, t, &mut mpm).unwrap();
        assert_eq!(
            ck.do_unload_thread(t, &mut mpm).map(|_| ()),
            Err(CkError::StaleId(t))
        );
        assert_eq!(ck.writeback_thread(t, &mut mpm), Err(CkError::StaleId(t)));
        ck.unload_space(srm, sp, &mut mpm).unwrap();
        assert_eq!(
            ck.do_unload_space(sp, &mut mpm, true),
            Err(CkError::StaleId(sp))
        );
        let bogus = ObjId::new(ObjKind::Kernel, 2, 9);
        assert!(matches!(
            ck.do_unload_kernel(bogus, &mut mpm),
            Err(CkError::StaleId(_))
        ));
    }

    #[test]
    fn fully_locked_mapping_survives_pool_pressure() {
        // §4.2: "a locked mapping can be reclaimed unless its address
        // space, its kernel object and its signal thread (if any) are
        // locked" — lock the whole chain and squeeze the pool.
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            kernel_slots: 3,
            space_slots: 3,
            thread_slots: 4,
            mapping_capacity: 4,
            ..CkConfig::default()
        });
        let sp = ck
            .load_space(srm, SpaceDesc { locked: true }, &mut mpm)
            .unwrap();
        // srm is locked at boot; space is locked; mapping locked below.
        ck.load_mapping(
            srm,
            sp,
            hw::Vaddr(0x1000),
            Paddr(0x2000),
            Pte::LOCKED | Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        // Flood the pool with plain mappings.
        for i in 0..12u32 {
            ck.load_mapping(
                srm,
                sp,
                hw::Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x20_0000 + i * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        assert!(
            ck.query_mapping(srm, sp, hw::Vaddr(0x1000)).is_ok(),
            "fully locked mapping never reclaimed"
        );
        ck.check_invariants().unwrap();

        // Unlock the space: the mapping's chain is broken, so pressure
        // may now take it.
        ck.unlock(srm, sp).unwrap();
        for i in 0..8u32 {
            ck.load_mapping(
                srm,
                sp,
                hw::Vaddr(0x30_0000 + i * 0x1000),
                Paddr(0x40_0000 + i * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        assert!(
            ck.query_mapping(srm, sp, hw::Vaddr(0x1000)).is_err(),
            "once the chain is unlocked the mapping is reclaimable"
        );
        ck.check_invariants().unwrap();
    }

    #[test]
    fn grant_modification_ops() {
        let (mut ck, mut mpm, srm) = setup(small());
        let k = ck
            .load_kernel(srm, KernelDesc::default(), &mut mpm)
            .unwrap();
        ck.modify_kernel_grant(srm, k, 0, 2, Rights::ReadWrite, &mut mpm)
            .unwrap();
        assert_eq!(
            ck.kernel(k).unwrap().desc.memory_access.get(1),
            Rights::ReadWrite
        );
        ck.set_kernel_cpu_quota(srm, k, [25; MAX_CPUS]).unwrap();
        ck.set_kernel_max_priority(srm, k, 12).unwrap();
        assert_eq!(ck.kernel(k).unwrap().desc.max_priority, 12);
        // Non-first kernels may not call these.
        assert_eq!(
            ck.modify_kernel_grant(k, k, 0, 1, Rights::Read, &mut mpm),
            Err(CkError::FirstKernelOnly)
        );
    }

    // ------------------------------------------------------------------
    // Overload protection: reserved slots, backpressure, thrash detector.

    fn app_kernel_desc() -> KernelDesc {
        KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        }
    }

    #[test]
    fn reservation_protects_bystander_and_sheds_greedy_load() {
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            kernel_slots: 4,
            space_slots: 4,
            thread_slots: 4,
            mapping_capacity: 2,
            shed_backoff: 123,
            ..CkConfig::default()
        });
        let a = ck.load_kernel(srm, app_kernel_desc(), &mut mpm).unwrap();
        let b = ck.load_kernel(srm, app_kernel_desc(), &mut mpm).unwrap();
        ck.set_kernel_reservation(
            srm,
            a,
            ReservedSlots {
                mappings: 2,
                ..ReservedSlots::default()
            },
        )
        .unwrap();
        let sp_a = ck.load_space(a, SpaceDesc::default(), &mut mpm).unwrap();
        let sp_b = ck.load_space(b, SpaceDesc::default(), &mut mpm).unwrap();
        for i in 0..2u32 {
            ck.load_mapping(
                a,
                sp_a,
                hw::Vaddr(0x10_0000 + i * 0x1000),
                Paddr(0x20_0000 + i * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        // B's load finds only A's reservation-protected mappings to
        // displace: shed with the configured backoff, nothing evicted.
        let r = ck.load_mapping(
            b,
            sp_b,
            hw::Vaddr(0x30_0000),
            Paddr(0x40_0000),
            Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        );
        assert_eq!(r, Err(CkError::Again { backoff: 123 }));
        assert_eq!(ck.stats.loads_shed, 1);
        assert_eq!(ck.kernel_loads_shed(b), 1);
        assert_eq!(ck.kernel_residency(a).unwrap()[STAT_MAPPING], 2);
        // A displacing its own objects is still allowed (self-churn).
        ck.load_mapping(
            a,
            sp_a,
            hw::Vaddr(0x50_0000),
            Paddr(0x60_0000),
            Pte::CACHEABLE,
            None,
            None,
            &mut mpm,
        )
        .unwrap();
        ck.check_invariants().unwrap();
    }

    #[test]
    fn reservation_oversubscription_is_rejected() {
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            kernel_slots: 4,
            space_slots: 3,
            thread_slots: 4,
            mapping_capacity: 8,
            ..CkConfig::default()
        });
        let a = ck.load_kernel(srm, app_kernel_desc(), &mut mpm).unwrap();
        let b = ck.load_kernel(srm, app_kernel_desc(), &mut mpm).unwrap();
        let two_spaces = ReservedSlots {
            spaces: 2,
            ..ReservedSlots::default()
        };
        ck.set_kernel_reservation(srm, a, two_spaces).unwrap();
        // 2 + 2 > 3 space slots: rejected.
        assert_eq!(
            ck.set_kernel_reservation(srm, b, two_spaces),
            Err(CkError::Invalid)
        );
        // Only the first kernel may set reservations.
        assert_eq!(
            ck.set_kernel_reservation(a, b, two_spaces),
            Err(CkError::FirstKernelOnly)
        );
    }

    #[test]
    fn writeback_backpressure_sheds_loads_and_spills_to_first() {
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            kernel_slots: 4,
            space_slots: 8,
            thread_slots: 4,
            mapping_capacity: 16,
            wb_queue_bound: 2,
            shed_backoff: 50,
            ..CkConfig::default()
        });
        let b = ck.load_kernel(srm, app_kernel_desc(), &mut mpm).unwrap();
        // B fills the space cache beyond capacity; each extra load
        // displaces one of B's own spaces, queueing a writeback to B.
        let mut loaded = 0u32;
        let mut shed = false;
        for _ in 0..12 {
            match ck.load_space(b, SpaceDesc::default(), &mut mpm) {
                Ok(_) => loaded += 1,
                Err(CkError::Again { backoff }) => {
                    assert_eq!(backoff, 100, "wb backpressure doubles the base wait");
                    shed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
            assert!(
                ck.kernel_wb_pending(b).unwrap() <= 2,
                "per-kernel wb queue length must never exceed the bound"
            );
        }
        assert!(shed, "B was never shed (loaded {loaded})");
        assert_eq!(ck.kernel_wb_pending(b).unwrap(), 2);
        // Pressure from a third party while B sits at its bound spills
        // the displaced state to the first kernel instead of B.
        let redirects_before = ck.stats.wb_overflow_redirects;
        for _ in 0..4 {
            ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        }
        assert!(ck.stats.wb_overflow_redirects > redirects_before);
        assert_eq!(ck.kernel_wb_pending(b).unwrap(), 2);
        ck.check_invariants().unwrap();
        // Draining the queue releases the backpressure.
        while ck.pop_event().is_some() {}
        assert_eq!(ck.kernel_wb_pending(b).unwrap(), 0);
        ck.load_space(b, SpaceDesc::default(), &mut mpm).unwrap();
        ck.check_invariants().unwrap();
    }

    #[test]
    fn thrash_detector_fires_and_penalizes_the_offender() {
        let (mut ck, mut mpm, srm) = setup(CkConfig {
            kernel_slots: 4,
            space_slots: 4,
            thread_slots: 4,
            mapping_capacity: 2,
            thrash_window: 64,
            thrash_threshold: 3,
            thrash_penalty: 64,
            ..CkConfig::default()
        });
        let a = ck.load_kernel(srm, app_kernel_desc(), &mut mpm).unwrap();
        let sp = ck.load_space(a, SpaceDesc::default(), &mut mpm).unwrap();
        // A's working set (3 pages) exceeds the 2-descriptor pool: every
        // load displaces and immediately reloads — textbook thrash.
        for i in 0..8u32 {
            ck.load_mapping(
                a,
                sp,
                hw::Vaddr(0x10_0000 + (i % 3) * 0x1000),
                Paddr(0x20_0000 + (i % 3) * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        assert!(
            ck.stats.thrash_detected >= 1,
            "detector must fire: {} fast reloads never reached threshold",
            ck.stats.thrash_detected
        );
        assert!(ck.kernel_thrash_penalized(a, STAT_MAPPING));
        // The event made it into the pipeline.
        let evs = ck.drain_events();
        assert!(evs.iter().any(|e| matches!(
            e,
            crate::events::KernelEvent::ThrashDetected { kernel, class, .. }
                if *kernel == a && *class == STAT_MAPPING
        )));
        ck.check_invariants().unwrap();
    }

    #[test]
    fn defaults_keep_the_fast_path_inert() {
        // With everything at defaults no load is ever shed and no
        // detector fires, whatever the churn.
        let (mut ck, mut mpm, srm) = setup(small());
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        for i in 0..64u32 {
            ck.load_mapping(
                srm,
                sp,
                hw::Vaddr(0x10_0000 + (i % 12) * 0x1000),
                Paddr(0x20_0000 + (i % 12) * 0x1000),
                Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
        }
        assert_eq!(ck.stats.loads_shed, 0);
        assert_eq!(ck.stats.thrash_detected, 0);
        assert_eq!(ck.stats.wb_overflow_redirects, 0);
        assert_eq!(ck.stats.events_dropped, 0);
        ck.check_invariants().unwrap();
    }
}
