//! Object locking (§2): pinning objects against reclamation under
//! per-kernel locked-object quotas.
//!
//! A locked object is only actually protected while everything it depends
//! on is locked too (reclaim.rs checks the full chain); the quota stops a
//! kernel from pinning the whole cache.

use crate::ck::CacheKernel;
use crate::error::{CkError, CkResult};
use crate::ids::{ObjId, ObjKind};

impl CacheKernel {
    /// Lock an object against reclamation, subject to the kernel's
    /// locked-object quota.
    pub fn lock(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        match id.kind {
            ObjKind::Kernel => {
                self.require_first(caller)?;
                self.kernel_mut(id)?.locked = true;
            }
            ObjKind::AddrSpace => {
                let s = self.space(id)?;
                if s.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if !s.locked {
                    let k = self.kernel(caller)?;
                    if k.locked_spaces >= k.desc.locked_quota.spaces {
                        return Err(CkError::LockQuota);
                    }
                    self.space_mut(id)?.locked = true;
                    self.kernel_mut(caller)?.locked_spaces += 1;
                }
            }
            ObjKind::Thread => {
                let t = self.thread(id)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if !t.locked {
                    let k = self.kernel(caller)?;
                    if k.locked_threads >= k.desc.locked_quota.threads {
                        return Err(CkError::LockQuota);
                    }
                    self.thread_mut(id)?.locked = true;
                    self.kernel_mut(caller)?.locked_threads += 1;
                }
            }
        }
        Ok(())
    }

    /// Unlock an object.
    pub fn unlock(&mut self, caller: ObjId, id: ObjId) -> CkResult<()> {
        match id.kind {
            ObjKind::Kernel => {
                self.require_first(caller)?;
                if Some(id) == self.first_kernel {
                    return Err(CkError::Invalid);
                }
                self.kernel_mut(id)?.locked = false;
            }
            ObjKind::AddrSpace => {
                let s = self.space(id)?;
                if s.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if s.locked {
                    self.space_mut(id)?.locked = false;
                    self.kernel_mut(caller)?.locked_spaces -= 1;
                }
            }
            ObjKind::Thread => {
                let t = self.thread(id)?;
                if t.owner != caller {
                    return Err(CkError::NotOwner(id));
                }
                if t.locked {
                    self.thread_mut(id)?.locked = false;
                    self.kernel_mut(caller)?.locked_threads -= 1;
                }
            }
        }
        Ok(())
    }
}
