//! Whole-kernel invariant checking.
//!
//! The §4.2 dependency discipline (Fig. 6) is only worth anything if it
//! holds after *every* interleaving of loads, unloads, writebacks and
//! signals. This module states the invariants once; unit tests, property
//! tests and the integration suite all call
//! [`CacheKernel::check_invariants`] after arbitrary operation sequences.

use crate::ck::CacheKernel;
use crate::counters::{Counters, STAT_MAPPING};
use crate::ids::ObjKind;
use crate::objects::ThreadState;
use crate::physmap::{CTX_COW, CTX_SIGNAL};
use hw::{Mpm, Vaddr};
use std::collections::{BTreeMap, HashSet};

impl CacheKernel {
    /// Verify every cross-structure invariant; returns a description of
    /// the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1. Occupancy within capacity.
        let occ = self.occupancy();
        for (i, (used, cap)) in occ.iter().enumerate() {
            if used > cap {
                return Err(format!("cache {i} over capacity: {used}/{cap}"));
            }
        }

        // 2. Every loaded thread references a loaded space owned by the
        //    same kernel; every loaded space references a loaded kernel.
        for (tid, t) in self.threads.iter() {
            let s = self.spaces.get(t.desc.space).ok_or_else(|| {
                format!("thread {tid:?} references missing space {:?}", t.desc.space)
            })?;
            if s.owner != t.owner {
                return Err(format!(
                    "thread {tid:?} and its space have different owners"
                ));
            }
            self.kernels
                .get(t.owner)
                .ok_or_else(|| format!("thread {tid:?} references missing kernel {:?}", t.owner))?;
        }
        for (sid, s) in self.spaces.iter() {
            self.kernels
                .get(s.owner)
                .ok_or_else(|| format!("space {sid:?} references missing kernel {:?}", s.owner))?;
        }

        // 3. Page tables and the physical memory map agree exactly.
        let mut pt_pairs: HashSet<(u32, u32, u32)> = HashSet::new(); // (asid, vpage, ppage)
        for (sid, s) in self.spaces.iter() {
            let asid = CacheKernel::asid_of(sid) as u32;
            for (vpn, pte) in s.pt.iter() {
                pt_pairs.insert((asid, vpn.base().0, pte.pfn().base().0));
            }
        }
        // Walk the arena in place (visit_records) instead of snapshotting
        // it: the checker runs inside property-test loops.
        let mut p2v_handles: HashSet<u32> = HashSet::new();
        let mut p2v_pairs: HashSet<(u32, u32, u32)> = HashSet::new();
        let mut dup: Option<(u32, u32)> = None;
        self.physmap.visit_records(|h, r| {
            if r.context < CTX_COW {
                p2v_handles.insert(h);
                if !p2v_pairs.insert((r.context, r.dependent, r.key)) && dup.is_none() {
                    dup = Some((r.context, r.dependent));
                }
            }
        });
        if let Some(d) = dup {
            return Err(format!("duplicate p2v record for {d:?}"));
        }
        if pt_pairs != p2v_pairs {
            let missing: Vec<_> = pt_pairs.difference(&p2v_pairs).take(3).collect();
            let orphans: Vec<_> = p2v_pairs.difference(&pt_pairs).take(3).collect();
            return Err(format!(
                "page tables and physmap disagree; pt-only={missing:?} physmap-only={orphans:?}"
            ));
        }

        // 4. Signal and COW records attach to live p2v records; signal
        //    targets are loaded threads (Fig. 6: signal mapping → thread).
        let mut attach_err: Option<String> = None;
        self.physmap.visit_records(|_, r| {
            if attach_err.is_some() {
                return;
            }
            if r.context == CTX_SIGNAL {
                if !p2v_handles.contains(&r.key) {
                    attach_err = Some(format!(
                        "signal record attached to dead p2v handle {}",
                        r.key
                    ));
                } else if self.threads.get_slot(r.dependent as u16).is_none() {
                    attach_err = Some(format!(
                        "signal record targets unloaded thread slot {}",
                        r.dependent
                    ));
                }
            } else if r.context == CTX_COW && !p2v_handles.contains(&r.key) {
                attach_err = Some(format!("COW record attached to dead p2v handle {}", r.key));
            }
        });
        if let Some(e) = attach_err {
            return Err(e);
        }
        // 4b. The per-thread signal index mirrors the arena exactly.
        self.physmap.check_signal_index()?;

        // 5. Locked-object counts match reality.
        for (kid, k) in self.kernels.iter() {
            let spaces = self
                .spaces
                .iter()
                .filter(|(_, s)| s.owner == kid && s.locked)
                .count() as u16;
            if spaces != k.locked_spaces {
                return Err(format!(
                    "kernel {kid:?} locked_spaces={} actual={}",
                    k.locked_spaces, spaces
                ));
            }
            let threads = self
                .threads
                .iter()
                .filter(|(_, t)| t.owner == kid && t.locked)
                .count() as u16;
            if threads != k.locked_threads {
                return Err(format!(
                    "kernel {kid:?} locked_threads={} actual={}",
                    k.locked_threads, threads
                ));
            }
            let mut mappings = 0u16;
            for (sid, s) in self.spaces.iter() {
                if s.owner == kid {
                    mappings += s.pt.iter().filter(|(_, p)| p.has(hw::Pte::LOCKED)).count() as u16;
                }
                let _ = sid;
            }
            if mappings != k.locked_mappings {
                return Err(format!(
                    "kernel {kid:?} locked_mappings={} actual={}",
                    k.locked_mappings, mappings
                ));
            }
        }

        // 6. Scheduler holds only loaded Ready threads, no duplicates.
        let mut seen = HashSet::new();
        for slot in 0..self.threads.capacity() as u16 {
            if self.sched.contains(slot) {
                if !seen.insert(slot) {
                    return Err(format!("slot {slot} queued twice"));
                }
                match self.threads.get_slot(slot) {
                    Some(t) => {
                        if !matches!(t.desc.state, ThreadState::Ready) {
                            return Err(format!(
                                "queued slot {slot} is {:?}, not Ready",
                                t.desc.state
                            ));
                        }
                    }
                    None => return Err(format!("scheduler references empty slot {slot}")),
                }
            }
        }

        // 7. The first kernel exists, is locked, owns itself.
        let first = self.first_kernel();
        debug_assert_eq!(first.kind, ObjKind::Kernel);
        let fk = self
            .kernels
            .get(first)
            .ok_or_else(|| "first kernel unloaded".to_string())?;
        if !fk.locked || fk.owner != first {
            return Err("first kernel must stay locked and self-owned".into());
        }

        // 8. Thread signal queues hold page-aligned-or-offset addresses
        //    within the 32-bit space (sanity; Vaddr is u32 by type).
        for (_, t) in self.threads.iter() {
            for va in &t.signal_queue {
                let _: Vaddr = *va;
            }
        }

        // 9. The overload side table mirrors reality. Resident counts per
        //    (owning kernel, class) recompute exactly from the caches,
        //    and per-kernel pending-writeback counts equal the Writeback
        //    events actually sitting in the queue.
        let kidx = Counters::idx_pub(ObjKind::Kernel);
        let sidx = Counters::idx_pub(ObjKind::AddrSpace);
        let tidx = Counters::idx_pub(ObjKind::Thread);
        let mut resident: BTreeMap<u16, [u32; 4]> = BTreeMap::new();
        for (_, k) in self.kernels.iter() {
            resident.entry(k.owner.slot).or_default()[kidx] += 1;
        }
        for (_, s) in self.spaces.iter() {
            let r = resident.entry(s.owner.slot).or_default();
            r[sidx] += 1;
            r[STAT_MAPPING] += s.pt.iter().count() as u32;
        }
        for (_, t) in self.threads.iter() {
            resident.entry(t.owner.slot).or_default()[tidx] += 1;
        }
        let mut wb_queued: BTreeMap<u16, u32> = BTreeMap::new();
        for ev in &self.events {
            if let crate::events::KernelEvent::Writeback(wb) = ev {
                *wb_queued.entry(wb.owner().slot).or_default() += 1;
            }
        }
        for slot in 0..self.kernels.capacity() as u16 {
            let actual = resident.get(&slot).copied().unwrap_or([0; 4]);
            let tracked: [u32; 4] =
                core::array::from_fn(|class| self.overload.resident(slot, class));
            if tracked != actual {
                return Err(format!(
                    "overload residency for kernel slot {slot} drifted: \
                     tracked={tracked:?} actual={actual:?}"
                ));
            }
            let queued = wb_queued.get(&slot).copied().unwrap_or(0);
            if self.overload.wb_pending(slot) != queued {
                return Err(format!(
                    "wb_pending for kernel slot {slot} drifted: tracked={} queued={queued}",
                    self.overload.wb_pending(slot)
                ));
            }
        }
        if self.overload.wb_pending_total()
            != wb_queued.values().map(|&n| u64::from(n)).sum::<u64>()
        {
            return Err("wb_pending total does not match queued writebacks".into());
        }

        // 10. Capability visibility (`caps_enforce` only, first kernel
        //     exempt): no PTE and no signal registration of a non-first
        //     kernel may reference a physical frame outside that
        //     kernel's grant. This is the structural form of the §6
        //     containment claim — whatever the interleaving of loads,
        //     grants, crashes and recoveries did, a kernel's hardware
        //     reach never exceeds its memory access array. (The
        //     per-CPU reverse-TLB side needs the machine; see
        //     [`check_visibility`](CacheKernel::check_visibility).)
        if self.config.caps_enforce {
            let first = self.first_kernel;
            for (sid, s) in self.spaces.iter() {
                if Some(s.owner) == first {
                    continue;
                }
                let Some(k) = self.kernels.get(s.owner) else {
                    continue; // unreachable: invariant 2 checked it
                };
                for (vpn, pte) in s.pt.iter() {
                    let needed = if pte.has(hw::Pte::WRITABLE) {
                        hw::Access::Write
                    } else {
                        hw::Access::Read
                    };
                    if !k
                        .desc
                        .memory_access
                        .rights_for_frame(pte.pfn())
                        .allows(needed)
                    {
                        return Err(format!(
                            "visibility: space {sid:?} of kernel {:?} maps va {:#x} to \
                             out-of-grant frame {:#x}",
                            s.owner,
                            vpn.base().0,
                            pte.pfn().base().0
                        ));
                    }
                }
            }
            // Signal registrations: the receiving thread's kernel must
            // hold rights on the page it registered for.
            let mut frame_of_handle: BTreeMap<u32, u32> = BTreeMap::new();
            self.physmap.visit_records(|h, r| {
                if r.context < CTX_COW {
                    frame_of_handle.insert(h, r.key);
                }
            });
            let mut sig_err: Option<String> = None;
            self.physmap.visit_records(|_, r| {
                if sig_err.is_some() || r.context != CTX_SIGNAL {
                    return;
                }
                let Some(&ppage) = frame_of_handle.get(&r.key) else {
                    return; // dead-handle attach already failed invariant 4
                };
                let Some(t) = self.threads.get_slot(r.dependent as u16) else {
                    return;
                };
                if Some(t.owner) == first {
                    return;
                }
                let Some(k) = self.kernels.get(t.owner) else {
                    return;
                };
                if !k
                    .desc
                    .memory_access
                    .rights_for(hw::Paddr(ppage))
                    .allows(hw::Access::Read)
                {
                    sig_err = Some(format!(
                        "visibility: signal registration for thread slot {} of kernel \
                         {:?} on out-of-grant page {ppage:#x}",
                        r.dependent, t.owner
                    ));
                }
            });
            if let Some(e) = sig_err {
                return Err(e);
            }
        }
        Ok(())
    }

    /// The hardware-cache side of the capability visibility invariant:
    /// no reverse-TLB entry on any CPU resolves a frame for a thread
    /// whose kernel's grant does not cover it. Separate from
    /// [`check_invariants`](CacheKernel::check_invariants) because the
    /// rTLBs live per-CPU in the machine, which the Cache Kernel does
    /// not own. A no-op unless `caps_enforce` is armed; the first
    /// kernel is exempt.
    pub fn check_visibility(&self, mpm: &Mpm) -> Result<(), String> {
        if !self.config.caps_enforce {
            return Ok(());
        }
        for (i, cpu) in mpm.cpus.iter().enumerate() {
            for (pfn, entry) in cpu.rtlb.iter() {
                let Some(t) = self.threads.get_slot(entry.thread as u16) else {
                    continue; // stale entry awaiting invalidation
                };
                if Some(t.owner) == self.first_kernel {
                    continue;
                }
                let Some(k) = self.kernels.get(t.owner) else {
                    continue;
                };
                if !k
                    .desc
                    .memory_access
                    .rights_for_frame(pfn)
                    .allows(hw::Access::Read)
                {
                    return Err(format!(
                        "visibility: cpu {i} rTLB resolves out-of-grant frame {:#x} \
                         for kernel {:?}",
                        pfn.0, t.owner
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::ck::{CacheKernel, CkConfig};
    use crate::objects::*;
    use hw::{MachineConfig, Mpm, Paddr, Pte, Vaddr};

    #[test]
    fn fresh_kernel_is_consistent() {
        let mut ck = CacheKernel::new(CkConfig::default());
        ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        ck.check_invariants().unwrap();
    }

    #[test]
    fn consistent_through_basic_ops() {
        let mut ck = CacheKernel::new(CkConfig {
            kernel_slots: 4,
            space_slots: 4,
            thread_slots: 8,
            mapping_capacity: 16,
            ..CkConfig::default()
        });
        let mut mpm = Mpm::new(MachineConfig {
            phys_frames: 1024,
            l2_bytes: 32 * 1024,
            ..MachineConfig::default()
        });
        let srm = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
        let t = ck
            .load_thread(srm, ThreadDesc::new(sp, 1, 5), false, &mut mpm)
            .unwrap();
        ck.load_mapping(
            srm,
            sp,
            Vaddr(0x1000),
            Paddr(0x2000),
            Pte::MESSAGE,
            Some(t),
            None,
            &mut mpm,
        )
        .unwrap();
        ck.check_invariants().unwrap();
        ck.unload_thread(srm, t, &mut mpm).unwrap();
        ck.check_invariants().unwrap();
        ck.unload_space(srm, sp, &mut mpm).unwrap();
        ck.check_invariants().unwrap();
    }
}
