//! The application-kernel interface.
//!
//! An application kernel is "any program that is written to interface
//! directly to the Cache Kernel, handling its own memory management,
//! processing management and communication" (§3). In the simulation an
//! application kernel is a Rust object implementing [`AppKernel`]; the
//! executive invokes its handlers exactly where the hardware prototype
//! would start the forwarded thread in the kernel's handler code (Fig. 2),
//! charging the same boundary-crossing costs.

use crate::ck::{CacheKernel, Writeback};
use crate::fault::{FaultDisposition, TrapDisposition};
use crate::ids::ObjId;
use crate::program::CodeStore;
use hw::{Fault, Mpm, Packet};

/// The controlled view of the machine an application kernel handler gets:
/// the Cache Kernel interface plus the hardware it is entitled to drive.
pub struct Env<'a> {
    /// The Cache Kernel instance of this MPM.
    pub ck: &'a mut CacheKernel,
    /// The MPM hardware.
    pub mpm: &'a mut Mpm,
    /// The code store (for creating thread programs).
    pub code: &'a mut CodeStore,
    /// CPU on which the handler is (logically) executing.
    pub cpu: usize,
    /// Node index of this MPM in the cluster.
    pub node: usize,
    /// Outgoing packets toward the fabric (drained by the cluster loop).
    pub outbox: &'a mut Vec<Packet>,
}

/// An application kernel: the UNIX emulator, the SRM, a simulation or
/// database kernel, or any application that is its own kernel.
pub trait AppKernel: Send + 'static {
    /// Downcast hook so embedders (tests, examples, the report harness)
    /// can reach the concrete kernel behind the trait object.
    fn as_any(&mut self) -> &mut dyn std::any::Any;

    /// Called once when the kernel is registered with the executive,
    /// with its own kernel-object identifier.
    fn on_start(&mut self, _env: &mut Env, _self_id: ObjId) {}

    /// A thread of this kernel took a mapping fault (Fig. 2 step 2-3).
    /// The handler typically locates a frame and calls
    /// [`CacheKernel::load_mapping_and_resume`].
    fn on_page_fault(&mut self, env: &mut Env, thread: ObjId, fault: Fault) -> FaultDisposition;

    /// A thread of this kernel trapped (its "system call", §2.3).
    fn on_trap(&mut self, env: &mut Env, thread: ObjId, no: u32, args: [u32; 4])
        -> TrapDisposition;

    /// A non-mapping exception (protection, COW, privilege, consistency)
    /// was forwarded. Defaults to the page-fault handler, which receives
    /// the full fault record either way.
    fn on_exception(&mut self, env: &mut Env, thread: ObjId, fault: Fault) -> FaultDisposition {
        self.on_page_fault(env, thread, fault)
    }

    /// An object owned by this kernel was written back (displaced).
    fn on_writeback(&mut self, _env: &mut Env, _wb: Writeback) {}

    /// The interval clock fired (application-kernel scheduling threads
    /// hang their rescheduling work here, §2.3).
    fn on_tick(&mut self, _env: &mut Env) {}

    /// A network packet arrived on a channel registered to this kernel.
    fn on_packet(&mut self, _env: &mut Env, _src: usize, _channel: u32, _data: &[u8]) {}

    /// A thread of this kernel exited.
    fn on_thread_exit(&mut self, _env: &mut Env, _thread: ObjId, _code: i32) {}

    /// Cluster membership changed (node down/rejoined, epoch advance).
    /// Fanned out to every registered kernel so DSM directories can
    /// re-home lines and schedulers can drop dead peers.
    fn on_cluster_event(&mut self, _env: &mut Env, _ev: crate::events::ClusterEvent) {}

    /// Diagnostic name.
    fn name(&self) -> &str {
        "app-kernel"
    }
}

/// A trivial kernel that kills faulting threads and echoes traps: useful
/// as a default and in tests.
pub struct NullKernel;

impl AppKernel for NullKernel {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn on_page_fault(&mut self, _env: &mut Env, _thread: ObjId, _fault: Fault) -> FaultDisposition {
        FaultDisposition::Kill
    }
    fn on_trap(
        &mut self,
        _env: &mut Env,
        _thread: ObjId,
        no: u32,
        _args: [u32; 4],
    ) -> TrapDisposition {
        TrapDisposition::Return(no)
    }
    fn name(&self) -> &str {
        "null"
    }
}
