//! Unit tests for the core Cache Kernel object-cache operations.
//!
//! Kept as a child module of `ck` (via `#[path]`) so the tests see the
//! same scope the original inline module did.

use super::*;
use hw::{MachineConfig, Paddr, Pte, Vaddr};

pub(crate) fn setup() -> (CacheKernel, Mpm, ObjId) {
    let mut ck = CacheKernel::new(CkConfig {
        kernel_slots: 4,
        space_slots: 4,
        thread_slots: 8,
        mapping_capacity: 32,
        ..CkConfig::default()
    });
    let mpm = Mpm::new(MachineConfig {
        phys_frames: 1024,
        l2_bytes: 64 * 1024,
        ..MachineConfig::default()
    });
    let srm = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    (ck, mpm, srm)
}

/// Blanket full-access grant — kept for the explicit privilege test
/// below; everything else uses minimal scoped grants
/// ([`crate::test_support::grant_groups`]) so capability checking is
/// actually exercised.
fn grant_all() -> KernelDesc {
    KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    }
}

use crate::test_support::grant_groups;

#[test]
fn boot_loads_locked_first_kernel() {
    let (ck, _mpm, srm) = setup();
    assert_eq!(ck.first_kernel(), srm);
    assert!(ck.kernel(srm).unwrap().locked);
    assert_eq!(ck.kernel(srm).unwrap().owner, srm);
}

#[test]
fn only_first_kernel_loads_kernels() {
    let (mut ck, mut mpm, srm) = setup();
    // The one test that keeps a blanket grant: even full memory access
    // confers no kernel-management privilege — that is the first-kernel
    // convention, not a rights bit.
    let k2 = ck.load_kernel(srm, grant_all(), &mut mpm).unwrap();
    assert_eq!(
        ck.load_kernel(k2, KernelDesc::default(), &mut mpm),
        Err(CkError::FirstKernelOnly)
    );
}

#[test]
fn space_and_thread_lifecycle() {
    let (mut ck, mut mpm, srm) = setup();
    let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    let t = ck
        .load_thread(srm, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
        .unwrap();
    assert_eq!(ck.sched.ready_count(), 1);
    let desc = ck.unload_thread(srm, t, &mut mpm).unwrap();
    assert_eq!(desc.regs.pc, 1);
    assert_eq!(ck.sched.ready_count(), 0);
    assert_eq!(ck.thread(t).err(), Some(CkError::StaleId(t)));
    ck.unload_space(srm, sp, &mut mpm).unwrap();
    assert_eq!(ck.space(sp).err(), Some(CkError::StaleId(sp)));
}

#[test]
fn thread_load_with_stale_space_fails() {
    let (mut ck, mut mpm, srm) = setup();
    let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    ck.unload_space(srm, sp, &mut mpm).unwrap();
    let err = ck
        .load_thread(srm, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
        .unwrap_err();
    assert_eq!(err, CkError::StaleId(sp));
    // Retry after reloading the space, per the §2 protocol.
    let sp2 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    assert!(ck
        .load_thread(srm, ThreadDesc::new(sp2, 1, 10), false, &mut mpm)
        .is_ok());
}

#[test]
fn mapping_rights_enforced() {
    let (mut ck, mut mpm, srm) = setup();
    let mut desc = KernelDesc::default(); // no access at all
    desc.memory_access.set(0, Rights::Read);
    let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
    let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
    // Read-only mapping into group 0: allowed.
    ck.load_mapping(
        k,
        sp,
        Vaddr(0x1000),
        Paddr(0x3000),
        Pte::CACHEABLE,
        None,
        None,
        &mut mpm,
    )
    .unwrap();
    // Writable mapping into group 0: denied (only Read rights).
    assert_eq!(
        ck.load_mapping(
            k,
            sp,
            Vaddr(0x2000),
            Paddr(0x4000),
            Pte::WRITABLE,
            None,
            None,
            &mut mpm
        ),
        Err(CkError::NoAccess(Paddr(0x4000)))
    );
    // Any mapping outside group 0: denied.
    assert_eq!(
        ck.load_mapping(
            k,
            sp,
            Vaddr(0x2000),
            Paddr(hw::PAGE_GROUP_SIZE),
            0,
            None,
            None,
            &mut mpm
        ),
        Err(CkError::NoAccess(Paddr(hw::PAGE_GROUP_SIZE)))
    );
}

#[test]
fn mapping_query_and_unload() {
    let (mut ck, mut mpm, srm) = setup();
    let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    ck.load_mapping(
        srm,
        sp,
        Vaddr(0x5000),
        Paddr(0x9000),
        Pte::WRITABLE | Pte::CACHEABLE,
        None,
        None,
        &mut mpm,
    )
    .unwrap();
    let q = ck.query_mapping(srm, sp, Vaddr(0x5123)).unwrap();
    assert_eq!(q.paddr, Paddr(0x9000));
    let states = ck
        .unload_mapping_range(srm, sp, Vaddr(0x5000), 0x1000, &mut mpm)
        .unwrap();
    assert_eq!(states.len(), 1);
    assert_eq!(states[0].paddr, Paddr(0x9000));
    assert_eq!(
        ck.query_mapping(srm, sp, Vaddr(0x5000)),
        Err(CkError::NoMapping)
    );
    assert!(ck.physmap.is_empty());
}

#[test]
fn priority_cap_enforced() {
    let (mut ck, mut mpm, srm) = setup();
    let mut desc = grant_groups(&[]); // maps nothing; no grant needed
    desc.max_priority = 10;
    let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
    let sp = ck.load_space(k, SpaceDesc::default(), &mut mpm).unwrap();
    assert_eq!(
        ck.load_thread(k, ThreadDesc::new(sp, 1, 11), false, &mut mpm),
        Err(CkError::PriorityTooHigh(11))
    );
    let t = ck
        .load_thread(k, ThreadDesc::new(sp, 1, 10), false, &mut mpm)
        .unwrap();
    assert_eq!(ck.set_priority(k, t, 11), Err(CkError::PriorityTooHigh(11)));
    ck.set_priority(k, t, 3).unwrap();
    assert_eq!(ck.thread(t).unwrap().desc.priority, 3);
}

#[test]
fn lock_quota_enforced() {
    let (mut ck, mut mpm, srm) = setup();
    let mut desc = grant_groups(&[0]); // all test mappings sit in group 0
    desc.locked_quota = LockedQuota {
        spaces: 1,
        threads: 1,
        mappings: 1,
    };
    let k = ck.load_kernel(srm, desc, &mut mpm).unwrap();
    let s1 = ck
        .load_space(k, SpaceDesc { locked: true }, &mut mpm)
        .unwrap();
    assert_eq!(
        ck.load_space(k, SpaceDesc { locked: true }, &mut mpm),
        Err(CkError::LockQuota)
    );
    ck.unlock(k, s1).unwrap();
    assert!(ck
        .load_space(k, SpaceDesc { locked: true }, &mut mpm)
        .is_ok());
    // Locked-mapping quota.
    ck.load_mapping(
        k,
        s1,
        Vaddr(0x1000),
        Paddr(0x2000),
        Pte::LOCKED,
        None,
        None,
        &mut mpm,
    )
    .unwrap();
    assert_eq!(
        ck.load_mapping(
            k,
            s1,
            Vaddr(0x3000),
            Paddr(0x4000),
            Pte::LOCKED,
            None,
            None,
            &mut mpm
        ),
        Err(CkError::LockQuota)
    );
}

#[test]
fn ownership_checks() {
    let (mut ck, mut mpm, srm) = setup();
    let k = ck.load_kernel(srm, grant_groups(&[0]), &mut mpm).unwrap();
    let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    // k cannot load a thread into srm's space.
    assert_eq!(
        ck.load_thread(k, ThreadDesc::new(sp, 1, 5), false, &mut mpm),
        Err(CkError::NotOwner(sp))
    );
    // k cannot unload srm's space or map into it.
    assert_eq!(ck.unload_space(k, sp, &mut mpm), Err(CkError::NotOwner(sp)));
    assert_eq!(
        ck.load_mapping(k, sp, Vaddr(0), Paddr(0), 0, None, None, &mut mpm),
        Err(CkError::NotOwner(sp))
    );
}

#[test]
fn replacing_mapping_at_same_page() {
    let (mut ck, mut mpm, srm) = setup();
    let sp = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    ck.load_mapping(
        srm,
        sp,
        Vaddr(0x1000),
        Paddr(0x2000),
        0,
        None,
        None,
        &mut mpm,
    )
    .unwrap();
    ck.load_mapping(
        srm,
        sp,
        Vaddr(0x1000),
        Paddr(0x7000),
        0,
        None,
        None,
        &mut mpm,
    )
    .unwrap();
    let q = ck.query_mapping(srm, sp, Vaddr(0x1000)).unwrap();
    assert_eq!(q.paddr, Paddr(0x7000));
    // The old mapping was written back, not leaked.
    assert_eq!(ck.physmap.len(), 1);
    let wbs = ck.take_writebacks();
    assert_eq!(wbs.len(), 1);
    match &wbs[0] {
        Writeback::Mapping { paddr, .. } => assert_eq!(*paddr, Paddr(0x2000)),
        other => panic!("unexpected writeback {other:?}"),
    }
}
