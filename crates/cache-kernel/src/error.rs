//! Cache Kernel error codes.

use crate::ids::ObjId;
use hw::Paddr;

/// Errors returned across the Cache Kernel interface.
///
/// Note what is *not* here: there is no "out of descriptors" hard error for
/// ordinary loads. "The Cache Kernel always allows more objects to be
/// loaded, writing back other objects to make space if necessary" (§7).
/// [`CkError::CacheFull`] arises only when every slot is pinned by a fully
/// locked object, which the locked-object quotas are sized to prevent.
/// Under overload protection a load can also be *shed* with the retryable
/// [`CkError::Again`]: the cache could make space, but only by evicting a
/// bystander below its reservation (or the caller is being backpressured
/// for slow writeback draining), so the caller should back off and retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkError {
    /// The identifier does not name a currently loaded object — either it
    /// was never valid or the object was written back (possibly
    /// concurrently). The application kernel reloads the parent object and
    /// retries, per §2.
    StaleId(ObjId),
    /// The calling kernel does not own the object it tried to operate on.
    NotOwner(ObjId),
    /// The calling kernel lacks rights on the physical page it tried to
    /// map, per its memory access array (§2.1, §4.3).
    NoAccess(Paddr),
    /// Requested priority exceeds the kernel's authorized maximum (§4.3).
    PriorityTooHigh(u8),
    /// The kernel's locked-object quota for this object type is exhausted.
    LockQuota,
    /// Every slot in the relevant cache is pinned by locked objects; the
    /// load cannot displace anything.
    CacheFull,
    /// No mapping exists at the given address.
    NoMapping,
    /// Malformed request (bad range, misaligned address, …).
    Invalid,
    /// Operation restricted to the first kernel (the SRM).
    FirstKernelOnly,
    /// The kernel has been declared dead; only recovery may touch its
    /// objects.
    KernelDead(ObjId),
    /// A kernel's accounting record is missing (internal inconsistency
    /// surfaced instead of aborting the simulation).
    NoAccount(u16),
    /// The load was shed by overload protection — every displaceable
    /// victim sits below its owner's reservation, the caller exceeded its
    /// cache-share watermark, or the caller is backpressured for slow
    /// writeback draining. Retry after roughly `backoff` cycles (the
    /// Cache Kernel's suggested wait, which grows with contention).
    Again {
        /// Suggested wait before retrying, in simulated cycles.
        backoff: u32,
    },
    /// Capability scoping (`CkConfig::caps_enforce`) denied the operation:
    /// the caller tried to reach a physical page, writeback target or
    /// grant outside its authorized scope. Each denial is counted in
    /// [`Counters::cap_denied`](crate::Counters) and traced as a
    /// `CapViolation` event — never a panic. A *retryable* denial means
    /// the caller holds some rights on the page group but not enough for
    /// the requested access (it may retry after renegotiating its grant
    /// with the SRM); a non-retryable one means the target is wholly
    /// outside the grant — a forged or adversarial request.
    CapDenied {
        /// The physical page the denial anchors to.
        paddr: Paddr,
        /// Whether renegotiating the grant could make the call succeed.
        retryable: bool,
    },
}

/// Convenience result alias.
pub type CkResult<T> = Result<T, CkError>;

impl core::fmt::Display for CkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CkError::StaleId(id) => write!(f, "stale object identifier {id:?}"),
            CkError::NotOwner(id) => write!(f, "caller does not own {id:?}"),
            CkError::NoAccess(p) => write!(f, "no rights on physical page {p:?}"),
            CkError::PriorityTooHigh(p) => write!(f, "priority {p} above kernel maximum"),
            CkError::LockQuota => write!(f, "locked-object quota exhausted"),
            CkError::CacheFull => write!(f, "all descriptors locked; cannot displace"),
            CkError::NoMapping => write!(f, "no mapping at address"),
            CkError::Invalid => write!(f, "invalid request"),
            CkError::FirstKernelOnly => write!(f, "operation restricted to the first kernel"),
            CkError::KernelDead(id) => write!(f, "kernel {id:?} is dead pending recovery"),
            CkError::NoAccount(slot) => write!(f, "no accounting record for kernel slot {slot}"),
            CkError::Again { backoff } => {
                write!(
                    f,
                    "load shed by overload protection; retry in ~{backoff} cycles"
                )
            }
            CkError::CapDenied { paddr, retryable } => {
                write!(
                    f,
                    "capability denied on physical page {paddr:?} ({})",
                    if *retryable {
                        "retryable after grant renegotiation"
                    } else {
                        "outside the kernel's grant"
                    }
                )
            }
        }
    }
}

impl std::error::Error for CkError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjKind;

    #[test]
    fn display_is_informative() {
        let e = CkError::StaleId(ObjId::new(ObjKind::Thread, 1, 2));
        assert!(format!("{e}").contains("stale"));
        assert!(format!("{}", CkError::CacheFull).contains("locked"));
        assert!(format!("{}", CkError::Again { backoff: 500 }).contains("500"));
        assert!(format!(
            "{}",
            CkError::CapDenied {
                paddr: Paddr(0x4000),
                retryable: false
            }
        )
        .contains("capability"));
        assert!(format!(
            "{}",
            CkError::CapDenied {
                paddr: Paddr(0x4000),
                retryable: true
            }
        )
        .contains("retryable"));
    }

    #[test]
    fn again_is_copy_and_comparable() {
        let a = CkError::Again { backoff: 100 };
        let b = a; // Copy
        assert_eq!(a, b);
        assert_ne!(a, CkError::Again { backoff: 200 });
    }
}
