//! Batched-vs-eager shootdown equivalence.
//!
//! The deferred-shootdown layer must be a pure performance transform:
//! for any mapping population (shared frames, signal registrations) and
//! any unload range, doing the range in **one batched call** must leave
//! exactly the same kernel state as unloading it **page by page down the
//! eager path** — identical physical-memory-map record sets, identical
//! returned `MappingState` sequences, identical surviving mappings, and
//! no stale TLB entry for any unloaded page on any CPU.

use cache_kernel::{
    CacheKernel, CkConfig, KernelDesc, MappingState, MemoryAccessArray, ObjId, SpaceDesc,
    ThreadDesc,
};
use hw::{MachineConfig, Mpm, Paddr, Pte, Vaddr};
use proptest::prelude::*;

const PAGE: u32 = 0x1000;

/// One mapping to install before the unload: a page in space 0, over a
/// (possibly shared) frame, optionally message-mode with a signal thread
/// and optionally aliased writable into space 1 so consistency flushes
/// cascade across spaces.
#[derive(Clone, Debug)]
struct Map {
    vpn: u32,
    frame: u32,
    signal: bool,
    alias: bool,
}

fn maps() -> impl Strategy<Value = Vec<Map>> {
    proptest::collection::vec(
        (0u32..200, 0u32..64, any::<bool>(), any::<bool>()).prop_map(|(vpn, frame, s, a)| Map {
            vpn,
            frame,
            signal: s,
            alias: a,
        }),
        1..60,
    )
}

struct World {
    ck: CacheKernel,
    mpm: Mpm,
    srm: ObjId,
    sp0: ObjId,
    sp1: ObjId,
}

/// Build a kernel with two spaces, a signal thread in space 1, and the
/// given mapping population; returns the vpns actually mapped in space 0.
fn build(maps: &[Map]) -> (World, Vec<u32>) {
    let mut ck = CacheKernel::new(CkConfig {
        kernel_slots: 4,
        space_slots: 8,
        thread_slots: 16,
        mapping_capacity: 1024,
        ..CkConfig::default()
    });
    let mut mpm = Mpm::new(MachineConfig {
        phys_frames: 4096,
        l2_bytes: 8 * 1024 * 1024,
        ..MachineConfig::default()
    });
    let srm = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    let sp0 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    let sp1 = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    let t = ck
        .load_thread(srm, ThreadDesc::new(sp1, 1, 5), false, &mut mpm)
        .unwrap();
    let mut used0 = Vec::new();
    let mut used1 = Vec::new();
    for m in maps {
        if used0.contains(&m.vpn) {
            continue;
        }
        let pa = Paddr(0x100_0000 + m.frame * PAGE);
        let (flags, sig) = if m.signal {
            (Pte::MESSAGE, Some(t))
        } else {
            (Pte::WRITABLE, None)
        };
        ck.load_mapping(
            srm,
            sp0,
            Vaddr(m.vpn * PAGE),
            pa,
            flags,
            sig,
            None,
            &mut mpm,
        )
        .unwrap();
        used0.push(m.vpn);
        if m.alias && !used1.contains(&m.vpn) {
            ck.load_mapping(
                srm,
                sp1,
                Vaddr(m.vpn * PAGE),
                pa,
                Pte::WRITABLE,
                None,
                None,
                &mut mpm,
            )
            .unwrap();
            used1.push(m.vpn);
        }
    }
    used0.sort_unstable();
    (
        World {
            ck,
            mpm,
            srm,
            sp0,
            sp1,
        },
        used0,
    )
}

type Snapshot = (Vec<(u32, u32, u32)>, Vec<Option<MappingState>>);

/// A comparable snapshot of everything the shootdown path touches.
fn snapshot(w: &mut World, vpns: &[u32]) -> Snapshot {
    let mut recs: Vec<(u32, u32, u32)> = Vec::new();
    w.ck.physmap
        .visit_records(|_, r| recs.push((r.key, r.dependent, r.context)));
    recs.sort_unstable();
    let mut states = Vec::new();
    for sp in [w.sp0, w.sp1] {
        for &v in vpns {
            states.push(w.ck.query_mapping(w.srm, sp, Vaddr(v * PAGE)).ok());
        }
    }
    (recs, states)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn batched_range_unload_equals_eager(maps in maps(), lo in 0u32..200, len in 1u32..120) {
        let (mut a, vpns) = build(&maps);
        let (mut b, vpns_b) = build(&maps);
        prop_assert_eq!(&vpns, &vpns_b);
        let hi = (lo + len - 1).min(255);

        // A: one batched call over the whole range.
        let out_a = a
            .ck
            .unload_mapping_range(a.srm, a.sp0, Vaddr(lo * PAGE), len * PAGE, &mut a.mpm)
            .unwrap();
        // B: the eager path, one page at a time.
        let mut out_b = Vec::new();
        for v in lo..=hi {
            out_b.extend(
                b.ck.unload_mapping_range(b.srm, b.sp0, Vaddr(v * PAGE), PAGE, &mut b.mpm)
                    .unwrap(),
            );
        }

        prop_assert_eq!(out_a, out_b, "returned mapping states diverge");
        let (recs_a, states_a) = snapshot(&mut a, &vpns);
        let (recs_b, states_b) = snapshot(&mut b, &vpns);
        prop_assert_eq!(recs_a, recs_b, "dependency records diverge");
        prop_assert_eq!(states_a, states_b, "surviving mappings diverge");

        // No CPU keeps a translation for an unloaded page in either world
        // (batched coalescing may over-flush — that is always legal — but
        // under-flushing never is).
        for w in [&mut a, &mut b] {
            let asid = CacheKernel::asid_of(w.sp0);
            for v in lo..=hi {
                if w.ck.query_mapping(w.srm, w.sp0, Vaddr(v * PAGE)).is_ok() {
                    continue;
                }
                for cpu in w.mpm.cpus.iter_mut() {
                    prop_assert!(
                        cpu.tlb.lookup(asid, Vaddr(v * PAGE).vpn()).is_none(),
                        "stale TLB entry survived an unload"
                    );
                }
            }
        }
        a.ck.check_invariants().unwrap();
        b.ck.check_invariants().unwrap();
    }
}
