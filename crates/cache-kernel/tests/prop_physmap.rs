//! Model-based property tests for the physical memory map: the 16-byte
//! dependency-record store must behave exactly like a reference map of
//! (frame → set of mappings) with attached signal/COW records, under any
//! operation sequence, including handle reuse.

use cache_kernel::{PhysMap, RecHandle};
use hw::{Paddr, Vaddr};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert { frame: u8, vpage: u8, asid: u8 },
    Remove { pick: u8 },
    AttachSignal { pick: u8, thread: u8 },
    AttachCow { pick: u8, src: u8 },
    LookupFrame { frame: u8 },
    Signals { frame: u8 },
    RemoveThreadSignals { thread: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), 0u8..8).prop_map(|(frame, vpage, asid)| Op::Insert {
            frame: frame % 16,
            vpage,
            asid
        }),
        any::<u8>().prop_map(|pick| Op::Remove { pick }),
        (any::<u8>(), 0u8..8).prop_map(|(pick, thread)| Op::AttachSignal { pick, thread }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, src)| Op::AttachCow { pick, src }),
        (0u8..16).prop_map(|frame| Op::LookupFrame { frame }),
        (0u8..16).prop_map(|frame| Op::Signals { frame }),
        (0u8..8).prop_map(|thread| Op::RemoveThreadSignals { thread }),
    ]
}

#[derive(Clone, Debug, Default)]
struct ModelRec {
    frame: u8,
    vpage: u8,
    asid: u8,
    signal: Option<u8>,
    cow: Option<u8>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn physmap_matches_model(ops in proptest::collection::vec(op(), 1..250)) {
        let m = PhysMap::new(512);
        let mut model: HashMap<RecHandle, ModelRec> = HashMap::new();
        let mut handles: Vec<RecHandle> = Vec::new();

        let pa = |frame: u8| Paddr((frame as u32 + 1) << 12);
        let va = |vpage: u8| Vaddr((vpage as u32 + 1) << 12);

        for o in ops {
            match o {
                Op::Insert { frame, vpage, asid } => {
                    // The Cache Kernel never inserts duplicate (asid, va):
                    // skip if the model already has it.
                    if model.values().any(|r| r.asid == asid && r.vpage == vpage) {
                        continue;
                    }
                    let h = m.insert_p2v(pa(frame), va(vpage), asid as u32).unwrap();
                    prop_assert!(!model.contains_key(&h), "live handle reused");
                    model.insert(h, ModelRec { frame, vpage, asid, signal: None, cow: None });
                    handles.push(h);
                }
                Op::Remove { pick } => {
                    if handles.is_empty() { continue; }
                    let h = handles.remove(pick as usize % handles.len());
                    let rec = model.remove(&h).unwrap();
                    let got = m.remove_p2v(h).unwrap();
                    prop_assert_eq!(got, (pa(rec.frame), va(rec.vpage), rec.asid as u32));
                    // Removing again with the (stale) handle must fail.
                    prop_assert!(m.remove_p2v(h).is_none() || !model.is_empty());
                }
                Op::AttachSignal { pick, thread } => {
                    if handles.is_empty() { continue; }
                    let h = handles[pick as usize % handles.len()];
                    let rec = model.get_mut(&h).unwrap();
                    if rec.signal.is_none() {
                        m.attach_signal(h, thread as u32).unwrap();
                        rec.signal = Some(thread);
                    }
                }
                Op::AttachCow { pick, src } => {
                    if handles.is_empty() { continue; }
                    let h = handles[pick as usize % handles.len()];
                    let rec = model.get_mut(&h).unwrap();
                    if rec.cow.is_none() {
                        m.attach_cow(h, pa(src % 16)).unwrap();
                        rec.cow = Some(src % 16);
                    }
                }
                Op::LookupFrame { frame } => {
                    let mut got: Vec<(u32, u32)> =
                        m.find_p2v(pa(frame)).into_iter().map(|x| (x.asid, x.vaddr.0)).collect();
                    let mut want: Vec<(u32, u32)> = model
                        .values()
                        .filter(|r| r.frame == frame)
                        .map(|r| (r.asid as u32, va(r.vpage).0))
                        .collect();
                    got.sort();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
                Op::Signals { frame } => {
                    let mut got: Vec<u32> =
                        m.signals_for(pa(frame)).into_iter().map(|(t, _, _)| t).collect();
                    let mut want: Vec<u32> = model
                        .values()
                        .filter(|r| r.frame == frame)
                        .filter_map(|r| r.signal.map(|t| t as u32))
                        .collect();
                    got.sort();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
                Op::RemoveThreadSignals { thread } => {
                    let affected = m.remove_signals_of_thread(thread as u32);
                    let expect = model
                        .values_mut()
                        .filter(|r| r.signal == Some(thread))
                        .count();
                    prop_assert_eq!(affected.len(), expect);
                    for r in model.values_mut() {
                        if r.signal == Some(thread) {
                            r.signal = None;
                        }
                    }
                }
            }
            // Global accounting: records = p2v + signals + cows.
            let want_count = model.len()
                + model.values().filter(|r| r.signal.is_some()).count()
                + model.values().filter(|r| r.cow.is_some()).count();
            prop_assert_eq!(m.len(), want_count);
            prop_assert_eq!(m.bytes(), want_count * 16);
        }

        // Attached records agree handle by handle.
        for (h, rec) in &model {
            prop_assert_eq!(m.signal_of(*h), rec.signal.map(|t| t as u32));
            prop_assert_eq!(m.cow_source_of(*h), rec.cow.map(&pa));
        }
    }
}
