//! V++: the assembled Cache Kernel system.
//!
//! Umbrella crate re-exporting every subsystem of the reproduction and
//! providing the boot harness the examples and integration tests share:
//! build an MPM, boot its Cache Kernel, install the SRM as the first
//! kernel, and optionally start application kernels under SRM grants —
//! the full Fig. 1/Fig. 5 configuration.

pub use cache_kernel;
pub use db_kernel;
pub use hw;
pub use libkern;
pub use sim_kernel;
pub use srm;
pub use unix_emu;
pub use workloads;

use cache_kernel::{
    CacheKernel, CkConfig, Cluster, Executive, KernelDesc, LockedQuota, MemoryAccessArray, ObjId,
    MAX_CPUS,
};
use hw::{MachineConfig, Mpm, PAGE_GROUP_PAGES};
use srm::Srm;
use unix_emu::{UnixConfig, UnixEmulator};

/// Boot parameters for one node.
#[derive(Clone, Debug)]
pub struct BootConfig {
    /// Node index.
    pub node: usize,
    /// Physical memory in frames.
    pub phys_frames: usize,
    /// CPUs per MPM.
    pub cpus: usize,
    /// Cache Kernel geometry.
    pub ck: CkConfig,
    /// Clock interval in cycles.
    pub clock_interval: u64,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig {
            node: 0,
            phys_frames: 8192, // 32 MiB
            cpus: 4,
            ck: CkConfig::default(),
            clock_interval: 25_000,
        }
    }
}

/// Boot one MPM: Cache Kernel plus the SRM as the locked first kernel.
/// Returns the executive and the SRM's kernel id.
pub fn boot_node(cfg: BootConfig) -> (Executive, ObjId) {
    let mut ck = CacheKernel::new(cfg.ck.clone());
    let mpm = Mpm::new(MachineConfig {
        node: cfg.node,
        cpus: cfg.cpus,
        phys_frames: cfg.phys_frames,
        l2_bytes: 8 * 1024 * 1024,
        clock_interval: cfg.clock_interval,
        ..MachineConfig::default()
    });
    let srm_id = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    // SRM manages page groups from 1 up to (but excluding) the device
    // region at the top of physical memory.
    let device_base_group = mpm.device_frame_base() / PAGE_GROUP_PAGES;
    let mut ex = Executive::new(ck, mpm);
    ex.register_kernel(
        srm_id,
        Box::new(Srm::new(srm_id, 1, device_base_group.max(2))),
    );
    ex.register_channel(srm::dist::SRM_CHANNEL, srm_id);
    (ex, srm_id)
}

/// Boot a node and start a UNIX emulator under an SRM grant of `groups`
/// page groups. Returns `(executive, srm id, unix kernel id)`.
pub fn boot_unix_node(
    cfg: BootConfig,
    groups: u32,
    unix_cfg_base: UnixConfig,
) -> (Executive, ObjId, ObjId) {
    let (mut ex, srm_id) = boot_node(cfg);
    let unix = ex
        .with_kernel::<Srm, _>(srm_id, |s, env| {
            s.start_kernel(
                env,
                "unix",
                groups,
                [90; MAX_CPUS],
                unix_emu::sched::USER_PRIO_MAX + 2,
                LockedQuota::default(),
            )
        })
        .unwrap()
        .expect("grant available");
    let grant = ex
        .with_kernel::<Srm, _>(srm_id, |s, _| s.grant_of(unix).cloned())
        .unwrap()
        .unwrap();
    let ucfg = UnixConfig {
        frames: grant.frame_first()..grant.frame_end(),
        ..unix_cfg_base
    };
    ex.register_kernel(unix, Box::new(UnixEmulator::new(unix, ucfg.clone())));
    // If the emulator crashes and the SRM restarts it, rebuild a fresh
    // instance under the (re-granted) frame range. Pids and file contents
    // reload from written-back state held by the new instance's callers;
    // here the factory supplies a clean emulator, demonstrating the
    // paper's claim that recovery is just reloading.
    ex.on_restart("unix", move |id| {
        Box::new(UnixEmulator::new(id, ucfg.clone()))
    });
    (ex, srm_id, unix)
}

/// Boot an `n`-node cluster, each with its own Cache Kernel and SRM,
/// connected by the fabric (Fig. 4/5). SRM peers advertise load.
pub fn boot_cluster(n: usize, base: BootConfig) -> (Cluster, Vec<ObjId>) {
    let mut nodes = Vec::new();
    let mut srms = Vec::new();
    for node in 0..n {
        let (mut ex, srm_id) = boot_node(BootConfig {
            node,
            ..base.clone()
        });
        ex.with_kernel::<Srm, _>(srm_id, |s, _| {
            s.peers.cluster_nodes = n;
            s.membership.join(node, n);
        });
        nodes.push(ex);
        srms.push(srm_id);
    }
    (Cluster::new(nodes), srms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_node_has_locked_first_kernel() {
        let (ex, srm_id) = boot_node(BootConfig::default());
        assert_eq!(ex.ck.first_kernel(), srm_id);
        assert!(ex.ck.kernel(srm_id).unwrap().locked);
    }

    #[test]
    fn boot_unix_node_constrains_frames() {
        let (ex, _srm, unix) = boot_unix_node(BootConfig::default(), 4, UnixConfig::default());
        let k = ex.ck.kernel(unix).unwrap();
        // Group 0 was not granted.
        assert_eq!(k.desc.memory_access.get(0), hw::Rights::None);
        assert_eq!(k.desc.memory_access.get(1), hw::Rights::ReadWrite);
    }

    #[test]
    fn boot_cluster_nodes_are_distinct() {
        let (cluster, srms) = boot_cluster(3, BootConfig::default());
        assert_eq!(cluster.nodes.len(), 3);
        assert_eq!(srms.len(), 3);
        for (i, n) in cluster.nodes.iter().enumerate() {
            assert_eq!(n.node(), i);
        }
    }
}
