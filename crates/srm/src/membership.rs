//! Epoch-based cluster membership (§3).
//!
//! Each SRM instance runs a copy of this detector. Liveness evidence is
//! the peer load advertisements that already flow every few ticks over
//! the reliable link; a peer silent for `suspicion_ticks` delivered
//! ticks is suspected dead (the same delivered-tick discipline the PR 3
//! single-node failure detector uses — a slow node that still answers
//! ticks is never reaped).
//!
//! Transitions are fenced with a monotonically increasing **epoch**:
//!
//! * When the side of a cut that retains a **majority** of the
//!   configured cluster suspects peers, it bumps the epoch once and
//!   declares each suspect down under the new epoch. DSM directories
//!   re-home the dead owners' lines under that epoch; any later reply
//!   stamped with an older epoch is fenced off.
//! * The **minority** side cannot know whether it is the failed part,
//!   so it *degrades*: the peer table freezes, placement falls back to
//!   local, and crucially the epoch is **not** bumped — a stale minority
//!   must never outrank the majority's view.
//! * On heal, each side hears the other's advertisements again. The
//!   majority side bumps the epoch and announces the rejoin; the
//!   minority side adopts the higher epoch it hears (max-epoch-wins)
//!   and re-syncs its DSM directory from the peer it adopted from.
//!
//! The module is pure bookkeeping — no I/O. The owning SRM feeds it
//! `heard(peer, epoch)` from advertisements and `on_tick()` from the
//! clock, and drains [`ClusterEvent`]s to emit through the Cache
//! Kernel's pipeline choke point.

use cache_kernel::ClusterEvent;

/// Per-node membership state machine.
#[derive(Debug, Default)]
pub struct Membership {
    /// This node's index.
    pub node: usize,
    /// Configured cluster size (0 or 1 = standalone; detector inert).
    pub cluster_nodes: usize,
    /// Current membership epoch. Starts at 1 on join; only a majority
    /// side ever bumps it, minority sides adopt higher epochs heard.
    pub epoch: u64,
    /// Delivered ticks of silence before a peer is suspected dead.
    /// Advertisements go out every 4 ticks; the default of 12 tolerates
    /// two lost ads and one retransmission round.
    pub suspicion_ticks: u64,
    /// Whether this node degraded to standalone scheduling (minority
    /// side of a partition): peer table frozen, placement local.
    pub degraded: bool,
    alive: Vec<bool>,
    last_heard: Vec<u64>,
    ticks: u64,
    events: Vec<ClusterEvent>,
}

impl Membership {
    /// An inert (standalone) membership instance; call [`join`] to arm.
    ///
    /// [`join`]: Membership::join
    pub fn new() -> Self {
        Membership {
            epoch: 1,
            suspicion_ticks: 12,
            ..Membership::default()
        }
    }

    /// Arm the detector for a cluster of `cluster_nodes`, as node `node`.
    /// All peers start presumed alive, heard "now".
    pub fn join(&mut self, node: usize, cluster_nodes: usize) {
        self.node = node;
        self.cluster_nodes = cluster_nodes;
        self.alive = vec![true; cluster_nodes];
        self.last_heard = vec![self.ticks; cluster_nodes];
        self.degraded = false;
    }

    /// Whether the detector is armed (a real cluster, not standalone).
    pub fn active(&self) -> bool {
        self.cluster_nodes > 1
    }

    /// Whether `node` is currently believed alive.
    pub fn alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// Nodes currently believed alive (self included).
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// The lowest-indexed live node — the deterministic re-home target
    /// for a dead owner's DSM lines.
    pub fn lowest_alive(&self) -> usize {
        self.alive.iter().position(|a| *a).unwrap_or(self.node)
    }

    /// Whether this node's live set is a strict majority of the
    /// configured cluster.
    pub fn majority(&self) -> bool {
        self.alive_count() * 2 > self.cluster_nodes
    }

    /// Drain the transitions recorded since the last drain, in order.
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Record a peer advertisement carrying the peer's epoch.
    ///
    /// A higher epoch is adopted immediately (max-epoch-wins): the peer
    /// was on a majority side that moved on while we were cut off. A
    /// previously-dead peer turning up again is a rejoin — the majority
    /// side bumps the epoch for it (fencing out anything the returnee
    /// still believes), while a degraded side only marks it alive and
    /// waits to adopt the majority's epoch.
    pub fn heard(&mut self, peer: usize, peer_epoch: u64) {
        if !self.active() || peer >= self.cluster_nodes || peer == self.node {
            return;
        }
        self.last_heard[peer] = self.ticks;
        if peer_epoch > self.epoch {
            self.epoch = peer_epoch;
            self.events.push(ClusterEvent::EpochChanged {
                epoch: self.epoch,
                adopted_from: Some(peer),
            });
        }
        if !self.alive[peer] {
            self.alive[peer] = true;
            if !self.degraded && peer_epoch < self.epoch {
                // Majority side hearing a *stale* returnee: fence its
                // state behind a fresh epoch before anyone trusts its
                // replies. A returnee already at our epoch (or the one
                // we just adopted from) carries nothing stale to fence.
                self.epoch += 1;
                self.events.push(ClusterEvent::EpochChanged {
                    epoch: self.epoch,
                    adopted_from: None,
                });
            }
            self.events.push(ClusterEvent::NodeRejoined {
                node: peer,
                epoch: self.epoch,
            });
        }
        // Hearing peers again may restore quorum for a degraded node.
        if self.degraded && self.majority() {
            self.degraded = false;
        }
    }

    /// One delivered clock tick: advance time, suspect silent peers.
    /// Majority sides bump the epoch (once per batch of suspicions) and
    /// declare the suspects down under it; minority sides degrade
    /// without touching the epoch.
    pub fn on_tick(&mut self) {
        if !self.active() {
            return;
        }
        self.ticks += 1;
        let mut suspects = Vec::new();
        for peer in 0..self.cluster_nodes {
            if peer == self.node || !self.alive[peer] {
                continue;
            }
            if self.ticks.saturating_sub(self.last_heard[peer]) > self.suspicion_ticks {
                suspects.push(peer);
            }
        }
        if suspects.is_empty() {
            return;
        }
        for &peer in &suspects {
            self.alive[peer] = false;
        }
        if self.majority() {
            self.epoch += 1;
            self.events.push(ClusterEvent::EpochChanged {
                epoch: self.epoch,
                adopted_from: None,
            });
            for &peer in &suspects {
                self.events.push(ClusterEvent::NodeDown {
                    node: peer,
                    epoch: self.epoch,
                    quorum: true,
                });
            }
        } else {
            // Minority: we might be the failed part. Degrade to local
            // scheduling and record the losses under the *old* epoch —
            // a stale side must never mint epochs the majority could
            // mistake for progress.
            self.degraded = true;
            for &peer in &suspects {
                self.events.push(ClusterEvent::NodeDown {
                    node: peer,
                    epoch: self.epoch,
                    quorum: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(m: &mut Membership, n: u64) {
        for _ in 0..n {
            m.on_tick();
        }
    }

    #[test]
    fn standalone_detector_is_inert() {
        let mut m = Membership::new();
        ticks(&mut m, 100);
        assert!(m.take_events().is_empty());
        assert_eq!(m.epoch, 1);
    }

    #[test]
    fn majority_side_bumps_epoch_and_declares_suspects() {
        let mut m = Membership::new();
        m.join(0, 3);
        m.heard(1, 1);
        m.heard(2, 1);
        // Peer 2 goes silent; peer 1 keeps advertising.
        for _ in 0..20 {
            m.on_tick();
            m.heard(1, 1);
        }
        assert!(!m.alive(2));
        assert!(m.alive(1));
        assert!(m.majority());
        assert!(!m.degraded);
        assert_eq!(m.epoch, 2);
        let evs = m.take_events();
        assert_eq!(
            evs,
            vec![
                ClusterEvent::EpochChanged {
                    epoch: 2,
                    adopted_from: None
                },
                ClusterEvent::NodeDown {
                    node: 2,
                    epoch: 2,
                    quorum: true
                },
            ]
        );
        assert_eq!(m.lowest_alive(), 0);
    }

    #[test]
    fn minority_side_degrades_without_minting_epochs() {
        let mut m = Membership::new();
        m.join(2, 3); // cut off alone: both peers go silent
        ticks(&mut m, 20);
        assert!(m.degraded);
        assert_eq!(m.epoch, 1, "minority never bumps");
        let evs = m.take_events();
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| matches!(
            e,
            ClusterEvent::NodeDown {
                epoch: 1,
                quorum: false,
                ..
            }
        )));
    }

    #[test]
    fn heal_rejoins_and_minority_adopts_majority_epoch() {
        // Majority side (node 0 of 3) lost node 2, epoch now 2.
        let mut maj = Membership::new();
        maj.join(0, 3);
        for _ in 0..20 {
            maj.on_tick();
            maj.heard(1, 1);
        }
        assert_eq!(maj.epoch, 2);
        maj.take_events();
        // Minority side (node 2) degraded on epoch 1.
        let mut min = Membership::new();
        min.join(2, 3);
        ticks(&mut min, 20);
        assert!(min.degraded);
        min.take_events();

        // Heal: majority hears the returnee → bump to 3 + rejoin event.
        maj.heard(2, min.epoch);
        assert_eq!(maj.epoch, 3);
        assert_eq!(
            maj.take_events(),
            vec![
                ClusterEvent::EpochChanged {
                    epoch: 3,
                    adopted_from: None
                },
                ClusterEvent::NodeRejoined { node: 2, epoch: 3 },
            ]
        );
        // Minority hears the majority's epoch 3 ad → adopts, rejoins
        // both peers, quorum restored, degradation lifts.
        min.heard(0, maj.epoch);
        min.heard(1, maj.epoch);
        assert_eq!(min.epoch, 3);
        assert!(!min.degraded);
        let evs = min.take_events();
        assert_eq!(
            evs[0],
            ClusterEvent::EpochChanged {
                epoch: 3,
                adopted_from: Some(0)
            }
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, ClusterEvent::NodeRejoined { node: 0, .. })));
        // No fresh epoch was minted by the (formerly) degraded side for
        // the rejoins it observed.
        assert!(!evs.iter().any(|e| matches!(
            e,
            ClusterEvent::EpochChanged {
                adopted_from: None,
                ..
            }
        )));
    }

    #[test]
    fn two_node_cut_degrades_both_sides() {
        // With n=2 neither half of a cut holds a strict majority: both
        // degrade, neither mints an epoch, and the heal resolves by
        // rejoin without fencing (there is no majority directory to
        // protect).
        let mut a = Membership::new();
        a.join(0, 2);
        let mut b = Membership::new();
        b.join(1, 2);
        ticks(&mut a, 20);
        ticks(&mut b, 20);
        assert!(a.degraded && b.degraded);
        assert_eq!((a.epoch, b.epoch), (1, 1));
        a.take_events();
        b.take_events();
        a.heard(1, 1);
        b.heard(0, 1);
        assert!(!a.degraded && !b.degraded);
        assert!(a
            .take_events()
            .iter()
            .any(|e| matches!(e, ClusterEvent::NodeRejoined { node: 1, .. })));
    }

    #[test]
    fn suspicion_uses_delivered_ticks_not_wall_time() {
        let mut m = Membership::new();
        m.join(0, 2);
        m.suspicion_ticks = 5;
        // Exactly at the threshold: not yet suspected.
        ticks(&mut m, 5);
        assert!(m.alive(1));
        m.on_tick();
        assert!(!m.alive(1));
    }
}
