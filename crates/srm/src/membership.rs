//! Epoch-based cluster membership (§3).
//!
//! Each SRM instance runs a copy of this detector. Liveness evidence is
//! the peer load advertisements that already flow every few ticks over
//! the reliable link; a peer silent for `suspicion_ticks` delivered
//! ticks is suspected dead (the same delivered-tick discipline the PR 3
//! single-node failure detector uses — a slow node that still answers
//! ticks is never reaped).
//!
//! Transitions are fenced with a monotonically increasing **epoch**:
//!
//! * When the side of a cut that retains a **majority** of the
//!   configured cluster suspects peers, it bumps the epoch once and
//!   declares each suspect down under the new epoch. DSM directories
//!   re-home the dead owners' lines under that epoch; any later reply
//!   stamped with an older epoch is fenced off.
//! * The **minority** side cannot know whether it is the failed part,
//!   so it *degrades*: the peer table freezes, placement falls back to
//!   local, and crucially the epoch is **not** bumped — a stale minority
//!   must never outrank the majority's view.
//! * On heal, each side hears the other's advertisements again. The
//!   majority side bumps the epoch and announces the rejoin; the
//!   minority side adopts the higher epoch it hears (max-epoch-wins)
//!   and re-syncs its DSM directory from the peer it adopted from.
//!
//! The module is pure bookkeeping — no I/O. The owning SRM feeds it
//! `heard(peer, epoch)` from advertisements and `on_tick()` from the
//! clock, and drains [`ClusterEvent`]s to emit through the Cache
//! Kernel's pipeline choke point.

use cache_kernel::ClusterEvent;

/// Per-node membership state machine.
#[derive(Debug, Default)]
pub struct Membership {
    /// This node's index.
    pub node: usize,
    /// Configured cluster size (0 or 1 = standalone; detector inert).
    pub cluster_nodes: usize,
    /// Current membership epoch. Starts at 1 on join; only a majority
    /// side ever bumps it, minority sides adopt higher epochs heard.
    pub epoch: u64,
    /// Delivered ticks of silence before a peer is suspected dead.
    /// Advertisements go out every 4 ticks; the default of 12 tolerates
    /// two lost ads and one retransmission round.
    pub suspicion_ticks: u64,
    /// Delivered ticks of silence before a peer is suspected *slow* —
    /// the reversible advisory level below suspect-dead: load steers
    /// away, no epoch is minted, and the next advertisement clears it.
    /// The default of 8 sits safely above the 4-tick ad cadence so a
    /// healthy cluster never trips it.
    pub slow_ticks: u64,
    /// Adapt both suspicion thresholds to each peer's observed inter-ad
    /// gap EWMA: slow fires at `max(slow_ticks, 2×gap)`, dead at
    /// `max(suspicion_ticks, 3×gap)`. The fixed knobs are floors, so a
    /// healthy peer (gap ≈ ad cadence) is detected in exactly the same
    /// tick budget as before — only *observed* slowness raises the bar.
    pub adaptive: bool,
    /// Whether this node degraded to standalone scheduling (minority
    /// side of a partition): peer table frozen, placement local.
    pub degraded: bool,
    alive: Vec<bool>,
    /// Peers currently in the suspect-slow state.
    slow: Vec<bool>,
    last_heard: Vec<u64>,
    /// Fixed-point (×[`EWMA_SCALE`]) EWMA of each peer's inter-ad gap in
    /// delivered ticks; 0 = no estimate yet.
    gap_ewma: Vec<u64>,
    ticks: u64,
    events: Vec<ClusterEvent>,
}

/// Fixed-point scale of the per-peer gap EWMA.
const EWMA_SCALE: u64 = 8;

impl Membership {
    /// An inert (standalone) membership instance; call [`join`] to arm.
    ///
    /// [`join`]: Membership::join
    pub fn new() -> Self {
        Membership {
            epoch: 1,
            suspicion_ticks: 12,
            slow_ticks: 8,
            adaptive: true,
            ..Membership::default()
        }
    }

    /// Arm the detector for a cluster of `cluster_nodes`, as node `node`.
    /// All peers start presumed alive, heard "now".
    pub fn join(&mut self, node: usize, cluster_nodes: usize) {
        self.node = node;
        self.cluster_nodes = cluster_nodes;
        self.alive = vec![true; cluster_nodes];
        self.slow = vec![false; cluster_nodes];
        self.last_heard = vec![self.ticks; cluster_nodes];
        self.gap_ewma = vec![0; cluster_nodes];
        self.degraded = false;
    }

    /// Whether the detector is armed (a real cluster, not standalone).
    pub fn active(&self) -> bool {
        self.cluster_nodes > 1
    }

    /// Whether `node` is currently believed alive.
    pub fn alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// Whether `node` is currently suspected slow (alive, but late).
    pub fn slow(&self, node: usize) -> bool {
        self.slow.get(node).copied().unwrap_or(false)
    }

    /// This peer's observed inter-ad gap EWMA in delivered ticks
    /// (rounded down; 0 = no estimate yet).
    pub fn gap_estimate(&self, node: usize) -> u64 {
        self.gap_ewma.get(node).copied().unwrap_or(0) / EWMA_SCALE
    }

    /// Nodes currently believed alive (self included).
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// The lowest-indexed live node — the deterministic re-home target
    /// for a dead owner's DSM lines.
    pub fn lowest_alive(&self) -> usize {
        self.alive.iter().position(|a| *a).unwrap_or(self.node)
    }

    /// Whether this node's live set is a strict majority of the
    /// configured cluster.
    pub fn majority(&self) -> bool {
        self.alive_count() * 2 > self.cluster_nodes
    }

    /// Drain the transitions recorded since the last drain, in order.
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Record a peer advertisement carrying the peer's epoch.
    ///
    /// A higher epoch is adopted immediately (max-epoch-wins): the peer
    /// was on a majority side that moved on while we were cut off. A
    /// previously-dead peer turning up again is a rejoin — the majority
    /// side bumps the epoch for it (fencing out anything the returnee
    /// still believes), while a degraded side only marks it alive and
    /// waits to adopt the majority's epoch.
    pub fn heard(&mut self, peer: usize, peer_epoch: u64) {
        if !self.active() || peer >= self.cluster_nodes || peer == self.node {
            return;
        }
        // Sample the inter-ad gap while the peer is believed alive (a
        // rejoin gap says nothing about its serving cadence) — this is
        // the RTT-EWMA the adaptive suspicion thresholds scale from.
        let gap = self.ticks.saturating_sub(self.last_heard[peer]);
        if self.alive[peer] && gap > 0 {
            let e = &mut self.gap_ewma[peer];
            *e = if *e == 0 {
                gap * EWMA_SCALE
            } else {
                (*e * 7 + gap * EWMA_SCALE) / 8
            };
        }
        self.last_heard[peer] = self.ticks;
        if self.slow[peer] {
            // The straggler answered: clear suspect-slow on the spot so
            // consumers reintegrate it. No epoch was ever minted for it.
            self.slow[peer] = false;
            self.events.push(ClusterEvent::NodeSlow {
                node: peer,
                slow: false,
            });
        }
        if peer_epoch > self.epoch {
            self.epoch = peer_epoch;
            self.events.push(ClusterEvent::EpochChanged {
                epoch: self.epoch,
                adopted_from: Some(peer),
            });
        }
        if !self.alive[peer] {
            self.alive[peer] = true;
            if !self.degraded && peer_epoch < self.epoch {
                // Majority side hearing a *stale* returnee: fence its
                // state behind a fresh epoch before anyone trusts its
                // replies. A returnee already at our epoch (or the one
                // we just adopted from) carries nothing stale to fence.
                self.epoch += 1;
                self.events.push(ClusterEvent::EpochChanged {
                    epoch: self.epoch,
                    adopted_from: None,
                });
            }
            self.events.push(ClusterEvent::NodeRejoined {
                node: peer,
                epoch: self.epoch,
            });
        }
        // Hearing peers again may restore quorum for a degraded node.
        if self.degraded && self.majority() {
            self.degraded = false;
        }
    }

    /// One delivered clock tick: advance time, suspect silent peers.
    /// Majority sides bump the epoch (once per batch of suspicions) and
    /// declare the suspects down under it; minority sides degrade
    /// without touching the epoch.
    pub fn on_tick(&mut self) {
        if !self.active() {
            return;
        }
        self.ticks += 1;
        let mut suspects = Vec::new();
        for peer in 0..self.cluster_nodes {
            if peer == self.node || !self.alive[peer] {
                continue;
            }
            let silence = self.ticks.saturating_sub(self.last_heard[peer]);
            // Adaptive thresholds scale with the peer's observed inter-ad
            // gap, floored at the fixed knobs: a healthy peer keeps the
            // legacy dead budget exactly, while a peer *observed* slow
            // earns headroom before either level fires.
            let gap = self.gap_ewma[peer] / EWMA_SCALE;
            let (slow_at, dead_at) = if self.adaptive {
                (
                    self.slow_ticks.max(2 * gap),
                    self.suspicion_ticks.max(3 * gap),
                )
            } else {
                (self.slow_ticks, self.suspicion_ticks)
            };
            if silence > dead_at {
                suspects.push(peer);
            } else if silence > slow_at && !self.slow[peer] {
                // Level one: answering-but-late. Advisory only — load
                // steers away, nothing is re-homed, no epoch is minted,
                // and the next advertisement clears it.
                self.slow[peer] = true;
                self.events.push(ClusterEvent::NodeSlow {
                    node: peer,
                    slow: true,
                });
            }
        }
        if suspects.is_empty() {
            return;
        }
        for &peer in &suspects {
            self.alive[peer] = false;
            // Dead supersedes slow; the NodeDown below carries the news.
            self.slow[peer] = false;
        }
        if self.majority() {
            self.epoch += 1;
            self.events.push(ClusterEvent::EpochChanged {
                epoch: self.epoch,
                adopted_from: None,
            });
            for &peer in &suspects {
                self.events.push(ClusterEvent::NodeDown {
                    node: peer,
                    epoch: self.epoch,
                    quorum: true,
                });
            }
        } else {
            // Minority: we might be the failed part. Degrade to local
            // scheduling and record the losses under the *old* epoch —
            // a stale side must never mint epochs the majority could
            // mistake for progress.
            self.degraded = true;
            for &peer in &suspects {
                self.events.push(ClusterEvent::NodeDown {
                    node: peer,
                    epoch: self.epoch,
                    quorum: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(m: &mut Membership, n: u64) {
        for _ in 0..n {
            m.on_tick();
        }
    }

    #[test]
    fn standalone_detector_is_inert() {
        let mut m = Membership::new();
        ticks(&mut m, 100);
        assert!(m.take_events().is_empty());
        assert_eq!(m.epoch, 1);
    }

    #[test]
    fn majority_side_bumps_epoch_and_declares_suspects() {
        let mut m = Membership::new();
        m.join(0, 3);
        m.heard(1, 1);
        m.heard(2, 1);
        // Peer 2 goes silent; peer 1 keeps advertising.
        for _ in 0..20 {
            m.on_tick();
            m.heard(1, 1);
        }
        assert!(!m.alive(2));
        assert!(m.alive(1));
        assert!(m.majority());
        assert!(!m.degraded);
        assert_eq!(m.epoch, 2);
        let evs = m.take_events();
        assert_eq!(
            evs,
            vec![
                // Level one fired first: the silent peer crossed the
                // suspect-slow line before the dead line.
                ClusterEvent::NodeSlow {
                    node: 2,
                    slow: true
                },
                ClusterEvent::EpochChanged {
                    epoch: 2,
                    adopted_from: None
                },
                ClusterEvent::NodeDown {
                    node: 2,
                    epoch: 2,
                    quorum: true
                },
            ]
        );
        assert_eq!(m.lowest_alive(), 0);
    }

    #[test]
    fn minority_side_degrades_without_minting_epochs() {
        let mut m = Membership::new();
        m.join(2, 3); // cut off alone: both peers go silent
        ticks(&mut m, 20);
        assert!(m.degraded);
        assert_eq!(m.epoch, 1, "minority never bumps");
        let evs = m.take_events();
        let downs: Vec<_> = evs
            .iter()
            .filter(|e| matches!(e, ClusterEvent::NodeDown { .. }))
            .collect();
        assert_eq!(downs.len(), 2);
        assert!(downs.iter().all(|e| matches!(
            e,
            ClusterEvent::NodeDown {
                epoch: 1,
                quorum: false,
                ..
            }
        )));
        // Both peers passed through suspect-slow on the way down.
        let slows = evs
            .iter()
            .filter(|e| matches!(e, ClusterEvent::NodeSlow { slow: true, .. }))
            .count();
        assert_eq!(slows, 2);
    }

    #[test]
    fn heal_rejoins_and_minority_adopts_majority_epoch() {
        // Majority side (node 0 of 3) lost node 2, epoch now 2.
        let mut maj = Membership::new();
        maj.join(0, 3);
        for _ in 0..20 {
            maj.on_tick();
            maj.heard(1, 1);
        }
        assert_eq!(maj.epoch, 2);
        maj.take_events();
        // Minority side (node 2) degraded on epoch 1.
        let mut min = Membership::new();
        min.join(2, 3);
        ticks(&mut min, 20);
        assert!(min.degraded);
        min.take_events();

        // Heal: majority hears the returnee → bump to 3 + rejoin event.
        maj.heard(2, min.epoch);
        assert_eq!(maj.epoch, 3);
        assert_eq!(
            maj.take_events(),
            vec![
                ClusterEvent::EpochChanged {
                    epoch: 3,
                    adopted_from: None
                },
                ClusterEvent::NodeRejoined { node: 2, epoch: 3 },
            ]
        );
        // Minority hears the majority's epoch 3 ad → adopts, rejoins
        // both peers, quorum restored, degradation lifts.
        min.heard(0, maj.epoch);
        min.heard(1, maj.epoch);
        assert_eq!(min.epoch, 3);
        assert!(!min.degraded);
        let evs = min.take_events();
        assert_eq!(
            evs[0],
            ClusterEvent::EpochChanged {
                epoch: 3,
                adopted_from: Some(0)
            }
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, ClusterEvent::NodeRejoined { node: 0, .. })));
        // No fresh epoch was minted by the (formerly) degraded side for
        // the rejoins it observed.
        assert!(!evs.iter().any(|e| matches!(
            e,
            ClusterEvent::EpochChanged {
                adopted_from: None,
                ..
            }
        )));
    }

    #[test]
    fn two_node_cut_degrades_both_sides() {
        // With n=2 neither half of a cut holds a strict majority: both
        // degrade, neither mints an epoch, and the heal resolves by
        // rejoin without fencing (there is no majority directory to
        // protect).
        let mut a = Membership::new();
        a.join(0, 2);
        let mut b = Membership::new();
        b.join(1, 2);
        ticks(&mut a, 20);
        ticks(&mut b, 20);
        assert!(a.degraded && b.degraded);
        assert_eq!((a.epoch, b.epoch), (1, 1));
        a.take_events();
        b.take_events();
        a.heard(1, 1);
        b.heard(0, 1);
        assert!(!a.degraded && !b.degraded);
        assert!(a
            .take_events()
            .iter()
            .any(|e| matches!(e, ClusterEvent::NodeRejoined { node: 1, .. })));
    }

    #[test]
    fn slow_fires_then_clears_without_minting_an_epoch() {
        let mut m = Membership::new();
        m.join(0, 3);
        // Peer 1 keeps advertising; peer 2 goes quiet for 9 ticks —
        // past the slow line (8), short of the dead line (12).
        for _ in 0..9 {
            m.on_tick();
            m.heard(1, 1);
        }
        assert!(m.alive(2) && m.slow(2));
        assert_eq!(m.epoch, 1, "suspect-slow never mints");
        assert_eq!(
            m.take_events(),
            vec![ClusterEvent::NodeSlow {
                node: 2,
                slow: true
            }]
        );
        // The straggler answers: the state clears on the spot, still
        // with no epoch traffic and no rejoin (it was never dead).
        m.heard(2, 1);
        assert!(!m.slow(2));
        assert_eq!(
            m.take_events(),
            vec![ClusterEvent::NodeSlow {
                node: 2,
                slow: false
            }]
        );
        assert_eq!(m.epoch, 1);
    }

    #[test]
    fn adaptive_threshold_tolerates_observed_slow_cadence() {
        // A steady 10-tick cadence teaches the EWMA; afterwards 15
        // silent ticks stay under 2× the observed gap — neither level
        // fires where the fixed detector would have declared death.
        let mut m = Membership::new();
        m.join(0, 2);
        for _ in 0..5 {
            ticks(&mut m, 10);
            m.heard(1, 1);
        }
        m.take_events();
        assert!(m.gap_estimate(1) >= 9, "ewma {}", m.gap_estimate(1));
        ticks(&mut m, 15);
        assert!(m.alive(1) && !m.slow(1));
        assert!(m.take_events().is_empty());

        // The same schedule with adaptivity off false-kills the peer.
        let mut f = Membership::new();
        f.join(0, 2);
        f.adaptive = false;
        for _ in 0..5 {
            ticks(&mut f, 10);
            f.heard(1, 1);
        }
        f.take_events();
        ticks(&mut f, 15);
        assert!(
            !f.alive(1),
            "fixed thresholds false-kill a steady straggler"
        );
    }

    #[test]
    fn dead_detection_budget_unchanged_for_healthy_peers() {
        // A peer advertising at the healthy 4-tick cadence keeps the
        // EWMA at the cadence, so 3×gap equals the fixed 12-tick floor:
        // a genuinely dead peer is detected on exactly the same tick as
        // the pre-adaptive detector.
        let mut m = Membership::new();
        m.join(0, 3);
        for _ in 0..5 {
            ticks(&mut m, 4);
            m.heard(1, 1);
            m.heard(2, 1);
        }
        m.take_events();
        let mut died_at = None;
        for t in 1..=20u64 {
            m.on_tick();
            if t % 4 == 0 {
                m.heard(1, 1);
            }
            if !m.alive(2) && died_at.is_none() {
                died_at = Some(t);
            }
        }
        assert_eq!(died_at, Some(13), "same tick budget as the fixed detector");
    }

    #[test]
    fn suspicion_uses_delivered_ticks_not_wall_time() {
        let mut m = Membership::new();
        m.join(0, 2);
        m.suspicion_ticks = 5;
        // Exactly at the threshold: not yet suspected.
        ticks(&mut m, 5);
        assert!(m.alive(1));
        m.on_tick();
        assert!(!m.alive(1));
    }
}
