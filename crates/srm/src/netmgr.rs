//! The SRM's network channel manager (§4.3).
//!
//! "These interfaces provide packet transmission and reception counts
//! which can be used to calculate network transfer rates. The channel
//! manager for this networking facility in the SRM calculates these I/O
//! rates, and temporarily disconnects application kernels that exceed
//! their quota, exploiting the connection-oriented nature of this
//! networking facility."

use hw::Mpm;
use std::collections::HashMap;

/// Per-channel quota and rate state.
#[derive(Clone, Debug)]
struct ChannelState {
    /// Maximum bytes per tick interval.
    quota_bytes_per_tick: u64,
    /// Bytes seen at the last tick.
    last_bytes: u64,
    /// Ticks a disconnect lasts.
    penalty_ticks: u32,
    /// Remaining penalty (0 = connected).
    penalty_left: u32,
}

/// Tracks channel rates against quotas and drives interface disconnects.
#[derive(Default)]
pub struct ChannelManager {
    channels: HashMap<u32, ChannelState>,
    /// Aggregate fiber bytes observed at the last tick (tx + rx).
    last_total: u64,
}

impl ChannelManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a channel with a byte-rate quota per tick interval.
    pub fn set_quota(&mut self, channel: u32, quota_bytes_per_tick: u64, penalty_ticks: u32) {
        self.channels.insert(
            channel,
            ChannelState {
                quota_bytes_per_tick,
                last_bytes: 0,
                penalty_ticks,
                penalty_left: 0,
            },
        );
    }

    /// Whether a channel is currently serving a disconnect penalty.
    pub fn is_disconnected(&self, channel: u32) -> bool {
        self.channels
            .get(&channel)
            .map(|c| c.penalty_left > 0)
            .unwrap_or(false)
    }

    /// Record traffic attributed to a channel (the interface counts
    /// aggregate traffic; the manager attributes per-channel bytes as the
    /// executive reports sends).
    pub fn account(&mut self, channel: u32, bytes: u64) {
        // Saturate rather than overflow: a hostile or buggy kernel
        // reporting absurd byte counts must at worst pin the channel at
        // its quota ceiling, never panic the executive.
        if let Some(c) = self.channels.get_mut(&channel) {
            c.last_bytes = c.last_bytes.saturating_add(bytes);
        }
    }

    /// One rescheduling interval: compute rates, apply and expire
    /// penalties. Returns the number of fresh disconnects.
    pub fn tick(&mut self, mpm: &mut Mpm) -> u64 {
        // Refresh the aggregate counters (kept for rate reports).
        let s = mpm.fiber.stats;
        self.last_total = s.tx + s.rx;

        let mut fresh = 0;
        for (ch, st) in self.channels.iter_mut() {
            if st.penalty_left > 0 {
                st.penalty_left -= 1;
                if st.penalty_left == 0 {
                    mpm.fiber.reconnect(*ch);
                }
            } else if st.last_bytes > st.quota_bytes_per_tick {
                st.penalty_left = st.penalty_ticks;
                mpm.fiber.disconnect(*ch);
                fresh += 1;
            }
            st.last_bytes = 0;
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw::MachineConfig;

    fn mpm() -> Mpm {
        Mpm::new(MachineConfig {
            phys_frames: 256,
            l2_bytes: 32 * 1024,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn over_quota_disconnects_then_reconnects() {
        let mut m = mpm();
        let mut cm = ChannelManager::new();
        cm.set_quota(7, 1000, 2);
        cm.account(7, 5000); // way over
        assert_eq!(cm.tick(&mut m), 1);
        assert!(cm.is_disconnected(7));
        assert!(m.fiber.is_disconnected(7));
        // Penalty expires after two ticks.
        cm.tick(&mut m);
        assert!(cm.is_disconnected(7));
        cm.tick(&mut m);
        assert!(!cm.is_disconnected(7));
        assert!(!m.fiber.is_disconnected(7));
    }

    #[test]
    fn under_quota_stays_connected() {
        let mut m = mpm();
        let mut cm = ChannelManager::new();
        cm.set_quota(3, 1000, 2);
        for _ in 0..10 {
            cm.account(3, 500);
            assert_eq!(cm.tick(&mut m), 0);
        }
        assert!(!cm.is_disconnected(3));
    }

    #[test]
    fn absurd_byte_counts_saturate_instead_of_overflowing() {
        let mut m = mpm();
        let mut cm = ChannelManager::new();
        cm.set_quota(7, 1000, 2);
        cm.account(7, u64::MAX);
        cm.account(7, u64::MAX); // would overflow without saturation
        assert_eq!(cm.tick(&mut m), 1, "pinned over quota, no panic");
    }

    #[test]
    fn unregistered_channels_ignored() {
        let mut m = mpm();
        let mut cm = ChannelManager::new();
        cm.account(99, 1_000_000);
        assert_eq!(cm.tick(&mut m), 0);
        assert!(!cm.is_disconnected(99));
    }
}
