//! The System Resource Manager (§3).
//!
//! The SRM is the first application kernel, instantiated when the Cache
//! Kernel boots with full permissions on all physical resources. It acts
//! as the owning kernel for the other application kernels, handling their
//! kernel-object writebacks, and allocates resources in large units:
//! page groups of physical memory, percentages of each processor, maximum
//! priorities and locked-object quotas. Its channel manager computes
//! network transfer rates from the interface counters and temporarily
//! disconnects application kernels that exceed their quota (§4.3).
//! One SRM instance runs per MPM; instances coordinate over the fabric
//! with the RPC facility ([`dist`]).

pub mod dist;
pub mod membership;
pub mod netmgr;

use cache_kernel::{
    AppKernel, CkError, CkResult, ClusterEvent, Env, FaultDisposition, KernelDesc, KernelEvent,
    LockedQuota, MemoryAccessArray, ObjId, ReservedSlots, TrapDisposition, Writeback, MAX_CPUS,
};
use hw::{Fault, Rights, PAGE_GROUP_PAGES};
use std::collections::HashMap;

/// A resource grant given to an application kernel.
#[derive(Clone, Debug)]
pub struct Grant {
    /// First page group granted.
    pub group_first: u32,
    /// Number of page groups.
    pub group_count: u32,
    /// Processor percentage per CPU.
    pub cpu_pct: [u8; MAX_CPUS],
    /// Maximum thread priority.
    pub max_priority: u8,
}

impl Grant {
    /// First frame of the grant.
    pub fn frame_first(&self) -> u32 {
        self.group_first * PAGE_GROUP_PAGES
    }
    /// One-past-last frame of the grant.
    pub fn frame_end(&self) -> u32 {
        (self.group_first + self.group_count) * PAGE_GROUP_PAGES
    }
}

/// A kernel the SRM swapped out: its saved descriptor, ready for reload.
pub struct SavedKernel {
    /// The descriptor as written back or unloaded.
    pub desc: Box<KernelDesc>,
    /// The grant it held (still reserved for it).
    pub grant: Grant,
}

/// SRM statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SrmStats {
    /// Application kernels started.
    pub kernels_started: u64,
    /// Kernel writebacks absorbed.
    pub kernel_writebacks: u64,
    /// Kernels swapped out.
    pub kernels_swapped: u64,
    /// Channels disconnected for exceeding network quota.
    pub net_disconnects: u64,
    /// Dead kernels whose objects the SRM had reclaimed.
    pub kernels_recovered: u64,
    /// Crashed kernels restarted from written-back state.
    pub kernels_restarted: u64,
    /// Crashed kernels left down after exhausting their restart budget
    /// (their grants returned to the free pool).
    pub kernels_abandoned: u64,
}

/// The system resource manager.
pub struct Srm {
    /// Our kernel id (the first kernel).
    pub me: ObjId,
    /// Page-group allocation cursor (groups below are reserved for the
    /// Cache Kernel and device regions by construction of the caller).
    next_group: u32,
    last_group: u32,
    grants: HashMap<ObjId, Grant>,
    saved: HashMap<String, SavedKernel>,
    names: HashMap<ObjId, String>,
    /// Network channel manager.
    pub net: netmgr::ChannelManager,
    /// Distributed coordination state.
    pub peers: dist::Peers,
    /// Epoch-based cluster membership (partition tolerance, §3).
    pub membership: membership::Membership,
    /// Counters.
    pub stats: SrmStats,
    /// Cycles of clock-tick silence after which a granted kernel is
    /// declared dead (writeback-channel heartbeat timeout). Eight default
    /// clock intervals. Internally converted to a budget of *delivered*
    /// ticks (`timeout / clock_interval`) the kernel may leave
    /// unanswered, so bursty event delivery never reads as silence.
    pub heartbeat_timeout: u64,
    /// Restarts allowed per kernel name before it stays down.
    pub restart_budget: u32,
    /// Descriptor-slot reservation applied to every kernel this SRM
    /// starts (overload policy, §4.3 flavor): while a kernel holds at
    /// most this many objects of a class, other kernels cannot displace
    /// them. Zero (the default) reserves nothing.
    pub default_reservation: ReservedSlots,
    /// Restarts consumed, by kernel name.
    restart_counts: HashMap<String, u32>,
    /// Delivered clock ticks each granted kernel has left unanswered.
    missed_ticks: HashMap<ObjId, u64>,
    /// The cycle stamp of the previous failure-detection pass.
    prev_tick: u64,
    /// Kernel names recovered and awaiting restart (their kernel-object
    /// writeback may still be in flight).
    pending_restart: Vec<String>,
    /// Grants returned to the pool by abandoned kernels, reusable by
    /// `start_kernel` before the bump allocator.
    free_grants: Vec<Grant>,
}

impl Srm {
    /// An SRM managing page groups `first_group..last_group`.
    pub fn new(me: ObjId, first_group: u32, last_group: u32) -> Self {
        assert!(first_group < last_group);
        Srm {
            me,
            next_group: first_group,
            last_group,
            grants: HashMap::new(),
            saved: HashMap::new(),
            names: HashMap::new(),
            net: netmgr::ChannelManager::new(),
            peers: dist::Peers::new(),
            membership: membership::Membership::new(),
            stats: SrmStats::default(),
            heartbeat_timeout: 200_000,
            restart_budget: 3,
            default_reservation: ReservedSlots::default(),
            restart_counts: HashMap::new(),
            missed_ticks: HashMap::new(),
            prev_tick: 0,
            pending_restart: Vec::new(),
            free_grants: Vec::new(),
        }
    }

    /// Page groups still unallocated.
    pub fn free_groups(&self) -> u32 {
        self.last_group - self.next_group
    }

    /// The grant held by a kernel.
    pub fn grant_of(&self, kernel: ObjId) -> Option<&Grant> {
        self.grants.get(&kernel)
    }

    /// Build the memory access array for a grant.
    fn access_array(grant: &Grant) -> MemoryAccessArray {
        let mut a = MemoryAccessArray::none();
        for g in grant.group_first..grant.group_first + grant.group_count {
            a.set(g, Rights::ReadWrite);
        }
        a
    }

    /// Start a new application kernel: create its kernel object with the
    /// requested resources and record the grant. "Resources are allocated
    /// in large units that the application kernel can then suballocate
    /// internally" (§3). Returns the kernel id to register an
    /// [`AppKernel`] under.
    pub fn start_kernel(
        &mut self,
        env: &mut Env,
        name: &str,
        groups: u32,
        cpu_pct: [u8; MAX_CPUS],
        max_priority: u8,
        locked_quota: LockedQuota,
    ) -> CkResult<ObjId> {
        if groups == 0 {
            return Err(CkError::Invalid);
        }
        // Prefer a returned grant of the right size (an abandoned
        // kernel's page groups) over fresh bump allocation.
        let reusable = self
            .free_grants
            .iter()
            .position(|g| g.group_count == groups);
        let grant = if let Some(i) = reusable {
            let mut g = self.free_grants.remove(i);
            g.cpu_pct = cpu_pct;
            g.max_priority = max_priority;
            g
        } else {
            if self.next_group + groups > self.last_group {
                return Err(CkError::Invalid);
            }
            let g = Grant {
                group_first: self.next_group,
                group_count: groups,
                cpu_pct,
                max_priority,
            };
            self.next_group += groups;
            g
        };
        let desc = KernelDesc {
            memory_access: Self::access_array(&grant),
            cpu_quota_pct: cpu_pct,
            max_priority,
            locked_quota,
            ..KernelDesc::default()
        };
        let id = env.ck.load_kernel(self.me, desc, env.mpm)?;
        if self.default_reservation != ReservedSlots::default() {
            // Best effort: an over-subscribed reservation (sum across
            // kernels exceeding a cache capacity) leaves the kernel
            // running without one rather than failing the start.
            let _ = env
                .ck
                .set_kernel_reservation(self.me, id, self.default_reservation);
        }
        self.grants.insert(id, grant);
        self.names.insert(id, name.to_string());
        self.missed_ticks.insert(id, 0);
        self.stats.kernels_started += 1;
        Ok(id)
    }

    /// Set (or clear, with zeros) a kernel's descriptor-slot reservation
    /// (overload policy passthrough; first-kernel only in the Cache
    /// Kernel, so this is the supported path for harnesses).
    pub fn set_reservation(
        &mut self,
        env: &mut Env,
        kernel: ObjId,
        reserved: ReservedSlots,
    ) -> CkResult<()> {
        env.ck.set_kernel_reservation(self.me, kernel, reserved)
    }

    /// The kernel id currently registered under `name`, if any.
    pub fn kernel_named(&self, name: &str) -> Option<ObjId> {
        self.names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(id, _)| *id)
    }

    /// Grants returned to the free pool by abandoned kernels.
    pub fn free_grant_count(&self) -> usize {
        self.free_grants.len()
    }

    /// Grow a kernel's memory grant with the special modify operation
    /// (§2.4), avoiding an unload/reload cycle.
    pub fn extend_grant(&mut self, env: &mut Env, kernel: ObjId, groups: u32) -> CkResult<()> {
        if self.next_group + groups > self.last_group {
            return Err(CkError::Invalid);
        }
        let first = self.next_group;
        self.next_group += groups;
        env.ck
            .modify_kernel_grant(self.me, kernel, first, groups, Rights::ReadWrite, env.mpm)?;
        if let Some(g) = self.grants.get_mut(&kernel) {
            g.group_count += groups;
        }
        Ok(())
    }

    /// Narrow a kernel's memory grant to its first `keep_groups` page
    /// groups, revoking rights on the rest. With capability enforcement
    /// on, the Cache Kernel tears down the kernel's mappings beyond the
    /// narrowed grant in one batched shootdown round — the
    /// restart-under-reduced-grant discipline: a kernel brought back
    /// after a crash need not get its full original footprint, and
    /// whatever stale mappings exceed the new grant cannot survive.
    pub fn shrink_grant(&mut self, env: &mut Env, kernel: ObjId, keep_groups: u32) -> CkResult<()> {
        let g = self.grants.get(&kernel).cloned().ok_or(CkError::Invalid)?;
        if keep_groups >= g.group_count {
            return Ok(());
        }
        let revoke_first = g.group_first + keep_groups;
        let revoke_count = g.group_count - keep_groups;
        env.ck.modify_kernel_grant(
            self.me,
            kernel,
            revoke_first,
            revoke_count,
            Rights::None,
            env.mpm,
        )?;
        if let Some(g) = self.grants.get_mut(&kernel) {
            g.group_count = keep_groups;
        }
        Ok(())
    }

    /// Swap an application kernel out: unload its kernel object (which
    /// cascades to all its spaces, threads and mappings) and keep the
    /// state for a later restart.
    pub fn swap_out_kernel(&mut self, env: &mut Env, kernel: ObjId) -> CkResult<()> {
        let name = self
            .names
            .remove(&kernel)
            .unwrap_or_else(|| format!("kernel-{}", kernel.slot));
        let grant = self.grants.remove(&kernel).ok_or(CkError::Invalid)?;
        let desc = env.ck.unload_kernel(self.me, kernel, env.mpm)?;
        self.saved.insert(name, SavedKernel { desc, grant });
        self.stats.kernels_swapped += 1;
        Ok(())
    }

    /// Restart a previously swapped kernel under its saved grant.
    pub fn swap_in_kernel(&mut self, env: &mut Env, name: &str) -> CkResult<ObjId> {
        let saved = self.saved.remove(name).ok_or(CkError::Invalid)?;
        let id = env
            .ck
            .load_kernel(self.me, (*saved.desc).clone(), env.mpm)?;
        // Reservations live in the Cache Kernel's overload table, not
        // on the descriptor, and were cleared at swap-out; re-apply the
        // policy default with the same best-effort rule as a start.
        if self.default_reservation != ReservedSlots::default() {
            let _ = env
                .ck
                .set_kernel_reservation(self.me, id, self.default_reservation);
        }
        self.grants.insert(id, saved.grant);
        self.names.insert(id, name.to_string());
        self.missed_ticks.insert(id, 0);
        Ok(id)
    }

    /// A saved kernel by name (swapped or displaced).
    pub fn saved_kernel(&self, name: &str) -> Option<&SavedKernel> {
        self.saved.get(name)
    }

    // ------------------------------------------------------------------
    // Failure detection and restart (the recovery protocol)
    // ------------------------------------------------------------------

    /// Writeback-channel heartbeat check: a granted kernel that has been
    /// silent (no clock-tick deliveries stamped by the executive) past
    /// the timeout — or that the Cache Kernel already marked dead — gets
    /// its cached objects reclaimed. The reclamation queues the
    /// kernel-object writeback the restart feeds on; `names`/`grants`
    /// stay in place until that writeback lands so the saved state keeps
    /// its real grant.
    fn detect_failures(&mut self, env: &mut Env) {
        let now = env.mpm.clock.cycles();
        // Silence is measured in delivered ticks the kernel failed to
        // answer, never in wall cycles: event delivery can lag the clock
        // arbitrarily (a long quantum, a thrashing physmap, a burst of
        // queued interrupts), and a kernel cannot be stamped before the
        // fan-out reaches it. A heartbeat at or after the previous pass
        // means the kernel answered the last tick it was offered.
        let interval = env.mpm.config.clock_interval.max(1);
        let allowed = (self.heartbeat_timeout / interval).max(1);
        let mut ids: Vec<ObjId> = self.grants.keys().copied().collect();
        ids.sort_by_key(|id| (id.slot, id.gen));
        for id in ids {
            if id == self.me {
                continue;
            }
            let marked_dead = env.ck.kernel_failed(id);
            if !marked_dead {
                let fresh = env
                    .ck
                    .heartbeat(id.slot)
                    .is_some_and(|hb| hb >= self.prev_tick);
                let missed = self.missed_ticks.entry(id).or_insert(0);
                if fresh {
                    *missed = 0;
                } else {
                    *missed += 1;
                }
                if *missed <= allowed {
                    continue;
                }
            }
            // Dead (marked or silent past the timeout): reclaim its
            // objects. A silent-but-unmarked kernel is marked first so
            // in-flight writebacks redirect here.
            let name = self
                .names
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("kernel-{}", id.slot));
            if !marked_dead && env.ck.mark_kernel_failed(id).is_err() {
                // Stale id: already gone; just drop our tracking.
                self.missed_ticks.remove(&id);
                continue;
            }
            match env.ck.recover_kernel(self.me, id, env.mpm) {
                Ok(_report) => {
                    self.stats.kernels_recovered += 1;
                    self.missed_ticks.remove(&id);
                    self.pending_restart.push(name);
                }
                Err(_) => {
                    self.missed_ticks.remove(&id);
                }
            }
        }
        self.prev_tick = now;
    }

    /// Restart protocol: once a recovered kernel's writeback has landed
    /// in `saved`, reload it under its original grant — unless its
    /// restart budget is exhausted, in which case it stays down and its
    /// page groups return to the free pool (graceful degradation).
    fn process_pending_restarts(&mut self, env: &mut Env) {
        if self.pending_restart.is_empty() {
            return;
        }
        let mut still_pending = Vec::new();
        for name in std::mem::take(&mut self.pending_restart) {
            if !self.saved.contains_key(&name) {
                // The kernel-object writeback is still in the pipeline;
                // try again next tick.
                still_pending.push(name);
                continue;
            }
            let count = self.restart_counts.entry(name.clone()).or_insert(0);
            if *count >= self.restart_budget {
                if let Some(s) = self.saved.remove(&name) {
                    if s.grant.group_count > 0 {
                        self.free_grants.push(s.grant);
                    }
                }
                self.stats.kernels_abandoned += 1;
                continue;
            }
            *count += 1;
            match self.swap_in_kernel(env, &name) {
                Ok(id) => {
                    self.stats.kernels_restarted += 1;
                    env.ck.push_restart_notice(&name, id);
                }
                Err(_) => still_pending.push(name),
            }
        }
        self.pending_restart = still_pending;
    }

    /// Place a unit of work: the least-loaded node by the gathered peer
    /// table — unless this side of a partition is degraded, in which
    /// case placement falls back local rather than acting on stale load
    /// data from across the cut.
    pub fn place(&self, env: &Env, my_ready: u32) -> usize {
        if self.membership.degraded {
            return env.node;
        }
        let chosen = self.peers.least_loaded(env.node, my_ready);
        // Suspect-slow steering: a peer that is answering late keeps its
        // membership but gets no new work until it clears.
        if chosen != env.node && self.membership.slow(chosen) {
            return env.node;
        }
        chosen
    }

    /// Drain membership transitions: emit each through the pipeline
    /// choke point (fanned out to every kernel next pump) and apply the
    /// SRM-local reactions — dead peers are dropped from the peer table
    /// and their queued retransmissions abandoned; a returning peer gets
    /// its outage-saturated link backoff reset.
    fn pump_membership_events(&mut self, env: &mut Env) {
        for ev in self.membership.take_events() {
            match ev {
                ClusterEvent::NodeDown { node, .. } => self.peers.forget_peer(node),
                ClusterEvent::NodeRejoined { node, .. } => self.peers.revive_peer(node),
                _ => {}
            }
            env.ck.emit(KernelEvent::Cluster(ev));
        }
        self.peers.frozen = self.membership.degraded;
        self.peers.my_epoch = self.membership.epoch;
    }
}

impl AppKernel for Srm {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, _env: &mut Env, id: ObjId) {
        self.me = id;
    }

    fn on_page_fault(&mut self, _env: &mut Env, _thread: ObjId, _fault: Fault) -> FaultDisposition {
        // The SRM's own threads run out of wired memory; a fault is a bug.
        FaultDisposition::Kill
    }

    fn on_trap(
        &mut self,
        _env: &mut Env,
        _thread: ObjId,
        no: u32,
        _args: [u32; 4],
    ) -> TrapDisposition {
        TrapDisposition::Return(no)
    }

    fn on_writeback(&mut self, _env: &mut Env, wb: Writeback) {
        if let Writeback::Kernel { id, desc, .. } = wb {
            // A displaced application kernel: the SRM is the backing
            // store for kernel objects (§2.4).
            self.stats.kernel_writebacks += 1;
            let name = self
                .names
                .remove(&id)
                .unwrap_or_else(|| format!("kernel-{}", id.slot));
            let grant = self.grants.remove(&id).unwrap_or(Grant {
                group_first: 0,
                group_count: 0,
                cpu_pct: [0; MAX_CPUS],
                max_priority: 0,
            });
            self.saved.insert(name, SavedKernel { desc, grant });
        }
    }

    fn on_tick(&mut self, env: &mut Env) {
        // Channel manager: compute I/O rates and enforce quotas (§4.3).
        let disconnects = self.net.tick(env.mpm);
        self.stats.net_disconnects += disconnects;
        self.peers.tick(env);
        self.membership.on_tick();
        self.pump_membership_events(env);
        self.detect_failures(env);
        self.process_pending_restarts(env);
    }

    fn on_packet(&mut self, env: &mut Env, src: usize, channel: u32, data: &[u8]) {
        if let Some((peer, epoch)) = self.peers.on_packet(env, src, channel, data) {
            self.membership.heard(peer, epoch);
            self.pump_membership_events(env);
        }
    }

    fn name(&self) -> &str {
        "srm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_kernel::{CkConfig, Executive, SpaceDesc};
    use hw::{MachineConfig, Paddr, Vaddr};

    pub(crate) fn boot() -> (Executive, ObjId) {
        let mut ck = cache_kernel::CacheKernel::new(CkConfig::default());
        let mpm = hw::Mpm::new(MachineConfig {
            phys_frames: 4096, // 16 MiB = 32 groups
            l2_bytes: 256 * 1024,
            ..MachineConfig::default()
        });
        let srm_id = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let mut ex = Executive::new(ck, mpm);
        // Manage groups 1..30 (group 0 reserved, top groups hold devices).
        ex.register_kernel(srm_id, Box::new(Srm::new(srm_id, 1, 30)));
        (ex, srm_id)
    }

    #[test]
    fn start_kernel_grants_exact_groups() {
        let (mut ex, srm_id) = boot();
        let k = ex
            .with_kernel::<Srm, _>(srm_id, |s, env| {
                s.start_kernel(env, "emu", 2, [50; MAX_CPUS], 20, LockedQuota::default())
            })
            .unwrap()
            .unwrap();
        // The kernel can map inside its grant but not outside.
        let sp = ex
            .ck
            .load_space(k, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        let inside = Paddr(hw::PAGE_GROUP_SIZE);
        let outside = Paddr(3 * hw::PAGE_GROUP_SIZE);
        assert!(ex
            .ck
            .load_mapping(
                k,
                sp,
                Vaddr(0x1000),
                inside,
                hw::Pte::WRITABLE,
                None,
                None,
                &mut ex.mpm
            )
            .is_ok());
        assert_eq!(
            ex.ck
                .load_mapping(k, sp, Vaddr(0x2000), outside, 0, None, None, &mut ex.mpm),
            Err(CkError::NoAccess(outside))
        );
        // Priority cap came from the grant.
        assert_eq!(ex.ck.kernel(k).unwrap().desc.max_priority, 20);
        let free = ex
            .with_kernel::<Srm, _>(srm_id, |s, _| s.free_groups())
            .unwrap();
        assert_eq!(free, 29 - 2);
    }

    #[test]
    fn grants_do_not_overlap() {
        let (mut ex, srm_id) = boot();
        let (g1, g2) = ex
            .with_kernel::<Srm, _>(srm_id, |s, env| {
                let a = s
                    .start_kernel(env, "a", 3, [50; MAX_CPUS], 20, LockedQuota::default())
                    .unwrap();
                let b = s
                    .start_kernel(env, "b", 3, [50; MAX_CPUS], 20, LockedQuota::default())
                    .unwrap();
                (
                    s.grant_of(a).unwrap().clone(),
                    s.grant_of(b).unwrap().clone(),
                )
            })
            .unwrap();
        assert!(g1.frame_end() <= g2.frame_first() || g2.frame_end() <= g1.frame_first());
    }

    #[test]
    fn grant_exhaustion_rejected() {
        let (mut ex, srm_id) = boot();
        let err = ex
            .with_kernel::<Srm, _>(srm_id, |s, env| {
                s.start_kernel(env, "big", 1000, [50; MAX_CPUS], 20, LockedQuota::default())
            })
            .unwrap();
        assert_eq!(err.err(), Some(CkError::Invalid));
    }

    #[test]
    fn extend_grant_via_modify_op() {
        let (mut ex, srm_id) = boot();
        let k = ex
            .with_kernel::<Srm, _>(srm_id, |s, env| {
                s.start_kernel(env, "emu", 1, [50; MAX_CPUS], 20, LockedQuota::default())
                    .unwrap()
            })
            .unwrap();
        let sp = ex
            .ck
            .load_space(k, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        let extra = Paddr(2 * hw::PAGE_GROUP_SIZE);
        assert!(ex
            .ck
            .load_mapping(k, sp, Vaddr(0x1000), extra, 0, None, None, &mut ex.mpm)
            .is_err());
        ex.with_kernel::<Srm, _>(srm_id, |s, env| s.extend_grant(env, k, 1))
            .unwrap()
            .unwrap();
        assert!(ex
            .ck
            .load_mapping(k, sp, Vaddr(0x1000), extra, 0, None, None, &mut ex.mpm)
            .is_ok());
    }

    #[test]
    fn swap_out_and_in_kernel() {
        let (mut ex, srm_id) = boot();
        let k = ex
            .with_kernel::<Srm, _>(srm_id, |s, env| {
                s.start_kernel(env, "emu", 2, [50; MAX_CPUS], 20, LockedQuota::default())
                    .unwrap()
            })
            .unwrap();
        // Give it some live state to cascade.
        let sp = ex
            .ck
            .load_space(k, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        ex.ck
            .load_mapping(
                k,
                sp,
                Vaddr(0x1000),
                Paddr(hw::PAGE_GROUP_SIZE),
                hw::Pte::WRITABLE,
                None,
                None,
                &mut ex.mpm,
            )
            .unwrap();
        ex.with_kernel::<Srm, _>(srm_id, |s, env| s.swap_out_kernel(env, k))
            .unwrap()
            .unwrap();
        assert!(ex.ck.kernel(k).is_err());
        assert!(ex.ck.space(sp).is_err());
        let saved = ex
            .with_kernel::<Srm, _>(srm_id, |s, _| s.saved_kernel("emu").is_some())
            .unwrap();
        assert!(saved);
        // Restart under the same grant.
        let k2 = ex
            .with_kernel::<Srm, _>(srm_id, |s, env| s.swap_in_kernel(env, "emu"))
            .unwrap()
            .unwrap();
        assert_ne!(k2, k, "fresh identifier after reload");
        let sp2 = ex
            .ck
            .load_space(k2, SpaceDesc::default(), &mut ex.mpm)
            .unwrap();
        assert!(ex
            .ck
            .load_mapping(
                k2,
                sp2,
                Vaddr(0x1000),
                Paddr(hw::PAGE_GROUP_SIZE),
                hw::Pte::WRITABLE,
                None,
                None,
                &mut ex.mpm
            )
            .is_ok());
    }

    #[test]
    fn displaced_kernel_writeback_lands_in_saved() {
        // Fill the kernel cache so a load displaces an SRM-owned kernel.
        let mut ck = cache_kernel::CacheKernel::new(CkConfig {
            kernel_slots: 3,
            ..CkConfig::default()
        });
        let mpm = hw::Mpm::new(MachineConfig {
            phys_frames: 4096,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let srm_id = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let mut ex = Executive::new(ck, mpm);
        ex.register_kernel(srm_id, Box::new(Srm::new(srm_id, 1, 30)));
        for name in ["a", "b", "c"] {
            ex.with_kernel::<Srm, _>(srm_id, |s, env| {
                s.start_kernel(env, name, 1, [50; MAX_CPUS], 20, LockedQuota::default())
                    .unwrap()
            })
            .unwrap();
        }
        ex.dispatch_writebacks();
        let (wbs, saved_a) = ex
            .with_kernel::<Srm, _>(srm_id, |s, _| {
                (s.stats.kernel_writebacks, s.saved_kernel("a").is_some())
            })
            .unwrap();
        assert_eq!(wbs, 1, "one kernel displaced");
        assert!(saved_a, "the displaced kernel's state is with the SRM");
    }
}
