//! Distributed SRM coordination (§3).
//!
//! "The SRM communicates with other instances of itself on other MPMs
//! using the RPC facility, coordinating to provide distributed scheduling
//! using techniques developed for distributed operating systems." Each
//! instance periodically advertises its load (free page groups, ready
//! threads) to its peers and answers load queries; a simple
//! least-loaded-node placement helper rides on the gathered table. The
//! SRM is replicated per MPM for failure autonomy: a dead peer's entry
//! goes stale and is expired rather than blocking anything.

use cache_kernel::Env;
use hw::Packet;
use libkern::reliable::{LinkCounters, ReliableLink};
use libkern::rpc::{Demarshal, Marshal, RpcMessage};

/// Fabric channel reserved for SRM-to-SRM traffic.
pub const SRM_CHANNEL: u32 = 0xffff_0001;

/// Method: unsolicited load advertisement.
pub const M_ADVERTISE: u32 = 1;
/// Method: load query (expects an advertisement in response).
pub const M_QUERY: u32 = 2;

/// A peer's advertised load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerLoad {
    /// Node index.
    pub node: usize,
    /// Free page groups.
    pub free_groups: u32,
    /// Ready threads on that node.
    pub ready_threads: u32,
    /// Advertisement age in ticks (expired when large).
    pub age: u32,
}

/// Peer table and advertisement logic.
#[derive(Default)]
pub struct Peers {
    table: Vec<PeerLoad>,
    /// Known cluster size (0 = standalone, no advertisements sent).
    pub cluster_nodes: usize,
    /// Ticks of silence after which a peer entry is expired from the
    /// table (and counted in `peers_expired`). Ads go out every 4 ticks,
    /// so the default of 8 tolerates one lost advertisement.
    pub peer_expiry_ticks: u32,
    /// Membership epoch advertised with each load report; peers use it
    /// to adopt the highest epoch in their partition (set by the owning
    /// SRM from its membership state each tick).
    pub my_epoch: u64,
    /// Frozen while this side of a partition lacks a majority: load
    /// reports are still *sent* and heard (the membership layer needs
    /// them to detect the heal), but the placement table is not updated,
    /// so stale minority data never steers placement.
    pub frozen: bool,
    seq: u32,
    ticks_between_ads: u32,
    since_ad: u32,
    /// Free-group figure advertised (set by the owning SRM each tick).
    pub my_free_groups: u32,
    /// Advertisements sent.
    pub ads_sent: u64,
    /// Advertisements received.
    pub ads_received: u64,
    /// Reliable datagram layer: sequence numbers, acks, retransmission
    /// with capped backoff, duplicate suppression. Inter-SRM RPC rides
    /// on it so injected frame loss cannot starve the peer tables.
    pub link: ReliableLink,
    /// Link counters already folded into the global stats.
    reported: LinkCounters,
}

impl Peers {
    /// A standalone peer table; set `cluster_nodes` to join a cluster.
    pub fn new() -> Self {
        Peers {
            ticks_between_ads: 4,
            peer_expiry_ticks: 8,
            my_epoch: 1,
            ..Peers::default()
        }
    }

    /// Current view of a peer, if fresh.
    pub fn peer(&self, node: usize) -> Option<&PeerLoad> {
        self.table.iter().find(|p| p.node == node)
    }

    /// The least-loaded node for placing new work (by ready threads, then
    /// free memory), considering this node too.
    pub fn least_loaded(&self, my_node: usize, my_ready: u32) -> usize {
        let mut best = (my_node, my_ready, self.my_free_groups);
        for p in &self.table {
            if p.age > self.peer_expiry_ticks {
                continue; // stale: possibly a failed MPM
            }
            if (p.ready_threads, u32::MAX - p.free_groups) < (best.1, u32::MAX - best.2) {
                best = (p.node, p.ready_threads, p.free_groups);
            }
        }
        best.0
    }

    fn advertise(&mut self, env: &mut Env) {
        self.seq += 1;
        let payload = Marshal::new()
            .u32(env.node as u32)
            .u32(self.my_free_groups)
            .u32(env.ck.sched.ready_count() as u32)
            .u64(self.my_epoch)
            .done();
        let msg = RpcMessage::request(self.seq, M_ADVERTISE, payload);
        let wire = msg.encode();
        for dst in 0..self.cluster_nodes {
            if dst == env.node {
                continue;
            }
            let data = self.link.send(dst, &wire);
            env.outbox.push(Packet {
                src: env.node,
                dst,
                channel: SRM_CHANNEL,
                data,
            });
        }
        self.ads_sent += 1;
    }

    /// Periodic work: age the table, send advertisements, retransmit
    /// unacknowledged frames, and fold link counters into the global
    /// stats.
    pub fn tick(&mut self, env: &mut Env) {
        for p in self.table.iter_mut() {
            p.age = p.age.saturating_add(1);
        }
        // Expire silent peers entirely (a failed MPM, or the far side of
        // a partition) so placement never consults them; each expiry is
        // counted through the registry.
        let expiry = self.peer_expiry_ticks;
        let before = self.table.len();
        self.table.retain(|p| p.age <= expiry);
        env.ck.stats.peers_expired += (before - self.table.len()) as u64;
        if self.cluster_nodes > 1 {
            self.since_ad += 1;
            if self.since_ad >= self.ticks_between_ads {
                self.since_ad = 0;
                self.advertise(env);
            }
        }
        for (dst, data) in self.link.tick() {
            env.outbox.push(Packet {
                src: env.node,
                dst,
                channel: SRM_CHANNEL,
                data,
            });
        }
        let c = self.link.counters;
        env.ck.stats.rpc_retries += c.retries - self.reported.retries;
        env.ck.stats.rpc_duplicates_dropped += c.dup_dropped - self.reported.dup_dropped;
        env.ck.stats.frames_reordered += c.frames_reordered - self.reported.frames_reordered;
        self.reported = c;
    }

    /// Handle an SRM-channel packet: unwrap the reliable layer (sending
    /// any ack it owes, dropping duplicates), then dispatch the RPC.
    /// Malformed or misaddressed frames are counted in `frames_rejected`
    /// and dropped — never panicked on.
    ///
    /// Returns the `(node, epoch)` a load advertisement carried, so the
    /// owning SRM can feed its membership detector.
    pub fn on_packet(
        &mut self,
        env: &mut Env,
        src: usize,
        channel: u32,
        data: &[u8],
    ) -> Option<(usize, u64)> {
        if channel != SRM_CHANNEL {
            env.ck.stats.frames_rejected += 1;
            return None;
        }
        let inbound = self.link.on_frame(src, data);
        if let Some(ack) = inbound.ack {
            env.outbox.push(Packet {
                src: env.node,
                dst: src,
                channel: SRM_CHANNEL,
                data: ack,
            });
        }
        let payload = inbound.payload?; // duplicate suppressed, or a bare ack
        let Some(msg) = RpcMessage::decode(&payload) else {
            env.ck.stats.frames_rejected += 1;
            return None;
        };
        match msg.selector() {
            M_ADVERTISE => {
                let mut d = Demarshal::new(&msg.payload);
                let (Some(node), Some(free), Some(ready), Some(epoch)) =
                    (d.u32(), d.u32(), d.u32(), d.u64())
                else {
                    env.ck.stats.frames_rejected += 1;
                    return None;
                };
                if node as usize >= self.cluster_nodes.max(1) || node as usize == env.node {
                    env.ck.stats.frames_rejected += 1; // misaddressed
                    return None;
                }
                // A frozen (minority-side) table keeps hearing peers —
                // the membership layer needs that to detect the heal —
                // but placement data is not updated from stale sources.
                if !self.frozen {
                    let load = PeerLoad {
                        node: node as usize,
                        free_groups: free,
                        ready_threads: ready,
                        age: 0,
                    };
                    match self.table.iter_mut().find(|p| p.node == node as usize) {
                        Some(p) => *p = load,
                        None => self.table.push(load),
                    }
                }
                self.ads_received += 1;
                Some((node as usize, epoch))
            }
            M_QUERY => {
                // Answer with an advertisement directly to the querier.
                self.seq += 1;
                let payload = Marshal::new()
                    .u32(env.node as u32)
                    .u32(self.my_free_groups)
                    .u32(env.ck.sched.ready_count() as u32)
                    .u64(self.my_epoch)
                    .done();
                let resp = RpcMessage::response(&msg, payload);
                let wire = RpcMessage::request(self.seq, M_ADVERTISE, resp.payload).encode();
                let data = self.link.send(src, &wire);
                env.outbox.push(Packet {
                    src: env.node,
                    dst: src,
                    channel: SRM_CHANNEL,
                    data,
                });
                None
            }
            _ => {
                env.ck.stats.frames_rejected += 1;
                None
            }
        }
    }

    /// Drop every queued retransmission and peer entry for dead `node`
    /// (membership declared it down): a frame to a dead node would retry
    /// to the backoff ceiling for nothing.
    pub fn forget_peer(&mut self, node: usize) {
        self.table.retain(|p| p.node != node);
        self.link.forget_dst(node);
    }

    /// A dead or partitioned peer came back (membership emitted
    /// `NodeRejoined`): drop the backoff level and RTT estimate the link
    /// accumulated retransmitting into the outage, so post-heal losses
    /// retry at the base timeout instead of the ceiling. Ads keep
    /// flowing to every configured node through an outage, so this
    /// cannot happen at `forget_peer` time — the level would simply
    /// re-saturate before the heal.
    pub fn revive_peer(&mut self, node: usize) {
        self.link.reset_dst_timing(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_prefers_fresh_light_peers() {
        let mut p = Peers::new();
        p.my_free_groups = 2;
        p.table = vec![
            PeerLoad {
                node: 1,
                free_groups: 10,
                ready_threads: 0,
                age: 0,
            },
            PeerLoad {
                node: 2,
                free_groups: 50,
                ready_threads: 9,
                age: 0,
            },
            PeerLoad {
                node: 3,
                free_groups: 99,
                ready_threads: 0,
                age: 99,
            }, // stale
        ];
        // My node has 5 ready threads; node 1 is idle and fresh.
        assert_eq!(p.least_loaded(0, 5), 1);
        // Even idle, node 1 wins on free memory (2 vs 10 groups).
        assert_eq!(p.least_loaded(0, 0), 1);
        // With no fresh peers better than me, I keep the work.
        p.table.clear();
        assert_eq!(p.least_loaded(0, 0), 0);
    }

    #[test]
    fn peer_entries_expire_after_knob_ticks() {
        let (mut ex, srm_id) = crate::tests::boot();
        ex.with_kernel::<crate::Srm, _>(srm_id, |s, env| {
            s.peers.cluster_nodes = 2;
            s.peers.peer_expiry_ticks = 3;
            let payload = Marshal::new().u32(1).u32(9).u32(0).u64(1).done();
            let wire = RpcMessage::request(1, M_ADVERTISE, payload).encode();
            assert_eq!(s.peers.on_packet(env, 1, SRM_CHANNEL, &wire), Some((1, 1)));
            assert!(s.peers.peer(1).is_some());
            for _ in 0..3 {
                s.peers.tick(env);
            }
            assert!(s.peers.peer(1).is_some(), "age == knob: still considered");
            s.peers.tick(env);
            assert!(s.peers.peer(1).is_none(), "silent past the knob: expired");
            assert_eq!(env.ck.stats.peers_expired, 1);
        })
        .unwrap();
    }

    #[test]
    fn malformed_frames_rejected_not_panicked() {
        let (mut ex, srm_id) = crate::tests::boot();
        ex.with_kernel::<crate::Srm, _>(srm_id, |s, env| {
            s.peers.cluster_nodes = 2;
            // Misaddressed: not the SRM channel.
            assert_eq!(s.peers.on_packet(env, 1, 42, b"junk"), None);
            // Garbage bytes that decode as no RPC message.
            assert_eq!(s.peers.on_packet(env, 1, SRM_CHANNEL, b"\x01\x02"), None);
            // Truncated advertisement payload.
            let wire = RpcMessage::request(1, M_ADVERTISE, vec![1, 2, 3]).encode();
            assert_eq!(s.peers.on_packet(env, 1, SRM_CHANNEL, &wire), None);
            // Unknown selector.
            let wire = RpcMessage::request(2, 999, Vec::new()).encode();
            assert_eq!(s.peers.on_packet(env, 1, SRM_CHANNEL, &wire), None);
            // Advertisement claiming to be from ourselves (spoof/loop).
            let payload = Marshal::new().u32(0).u32(1).u32(1).u64(1).done();
            let wire = RpcMessage::request(3, M_ADVERTISE, payload).encode();
            assert_eq!(s.peers.on_packet(env, 0, SRM_CHANNEL, &wire), None);
            assert_eq!(env.ck.stats.frames_rejected, 5);
        })
        .unwrap();
    }

    #[test]
    fn advertisement_roundtrip_encoding() {
        let payload = Marshal::new().u32(2).u32(7).u32(3).done();
        let msg = RpcMessage::request(1, M_ADVERTISE, payload);
        let decoded = RpcMessage::decode(&msg.encode()).unwrap();
        let mut d = Demarshal::new(&decoded.payload);
        assert_eq!(d.u32(), Some(2));
        assert_eq!(d.u32(), Some(7));
        assert_eq!(d.u32(), Some(3));
    }
}
