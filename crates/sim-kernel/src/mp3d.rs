//! MP3D-style particle-in-cell wind-tunnel workload (§3, §5.2).
//!
//! "We have experimented with a hypersonic wind tunnel simulator, MP3D,
//! implemented using the particle-in-cell technique. … we measured up to
//! a 25 percent degradation in performance in the MP3D program from
//! processors accessing particles scattered across too many pages. The
//! solution … was to enforce page locality as well as cache line locality
//! by copying particles in some cases as they moved between processors."
//!
//! The workload processes particles cell by cell. In *locality* mode the
//! particle storage order matches the processing order (per-cell
//! contiguous arrays — the paper's "copy particles" fix); in *scattered*
//! mode particles live at a fixed random permutation of slots, so cell
//! processing touches many pages and cache lines with poor reuse. Each
//! particle record occupies exactly one 32-byte second-level cache line.

use crate::SimulationKernel;
use cache_kernel::{
    CacheKernel, CkConfig, Executive, FnProgram, KernelDesc, MemoryAccessArray, SpaceDesc, Step,
    ThreadCtx,
};
use hw::{MachineConfig, Mpm, Vaddr, CACHE_LINE_SIZE, PAGE_SIZE};

/// Bytes per particle record (one cache line).
pub const PARTICLE_BYTES: u32 = CACHE_LINE_SIZE;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Mp3dConfig {
    /// Number of grid cells.
    pub cells: u32,
    /// Particles per cell.
    pub particles_per_cell: u32,
    /// Whether particle storage follows cell processing order.
    pub locality: bool,
    /// Full sweeps over all particles.
    pub sweeps: u32,
    /// Worker threads (one per simulated CPU is natural).
    pub workers: usize,
    /// L2 capacity for the run (small enough that the particle set
    /// exceeds it, as in the real experiment).
    pub l2_bytes: usize,
    /// Random seed for the scattered permutation.
    pub seed: u64,
    /// Sparsity of the scattered layout: particles spread over a region
    /// `spread`× larger than the dense one, so each page holds only a few
    /// live particles (the paper's "less than four percent usage of
    /// pages" regime).
    pub spread: u32,
    /// Physics cycles per particle (dilutes the memory-system penalty to
    /// whole-program scale, as in the real MP3D).
    pub compute_per_particle: u64,
}

impl Default for Mp3dConfig {
    fn default() -> Self {
        Mp3dConfig {
            cells: 64,
            particles_per_cell: 16,
            locality: true,
            sweeps: 3,
            workers: 2,
            l2_bytes: 16 * 1024,
            seed: 42,
            spread: 16,
            compute_per_particle: 60,
        }
    }
}

impl Mp3dConfig {
    /// Total particles.
    pub fn particles(&self) -> u32 {
        self.cells * self.particles_per_cell
    }
    /// Slots in the storage region (power of two; sparse when scattered).
    pub fn region_slots(&self) -> u32 {
        if self.locality {
            self.particles()
        } else {
            (self.particles() * self.spread.max(1)).next_power_of_two()
        }
    }
    /// Bytes of particle storage region.
    pub fn bytes(&self) -> u32 {
        self.region_slots() * PARTICLE_BYTES
    }
}

/// Measured outcome of a run.
#[derive(Clone, Copy, Debug)]
pub struct Mp3dResult {
    /// Simulated cycles consumed by the whole run.
    pub cycles: u64,
    /// Second-level cache hit rate.
    pub l2_hit_rate: f64,
    /// TLB miss rate across all CPUs.
    pub tlb_miss_rate: f64,
    /// Page faults taken (should be ~0: memory is pre-mapped).
    pub faults: u64,
    /// Particles processed.
    pub particles_processed: u64,
}

/// Deterministic xorshift for the scattered permutation.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Build the per-worker particle visit orders (addresses).
fn visit_orders(cfg: &Mp3dConfig, base: Vaddr) -> Vec<Vec<Vaddr>> {
    let n = cfg.particles();
    // Storage slot of each particle in cell-processing order. Dense when
    // local; a sparse bijective scatter over a power-of-two region when
    // not (odd multiplier mod 2^k is a permutation, so no collisions).
    let slots: Vec<u32> = if cfg.locality {
        (0..n).collect()
    } else {
        let region = cfg.region_slots();
        let mut s = cfg.seed | 1;
        let mult = (xorshift(&mut s) as u32) | 1;
        (0..n)
            .map(|i| i.wrapping_mul(mult) & (region - 1))
            .collect()
    };
    // Cells are divided among workers ("virtual space decomposition").
    let mut orders = vec![Vec::new(); cfg.workers];
    for cell in 0..cfg.cells {
        let w = (cell as usize) % cfg.workers;
        for p in 0..cfg.particles_per_cell {
            let idx = cell * cfg.particles_per_cell + p;
            let addr = Vaddr(base.0 + slots[idx as usize] * PARTICLE_BYTES);
            orders[w].push(addr);
        }
    }
    orders
}

/// Run the MP3D workload on a dedicated machine, returning the
/// measurements. The simulation kernel manages its physical memory
/// explicitly: the whole particle region is mapped up front "to avoid
/// random page faults" (§3).
pub fn run(cfg: &Mp3dConfig) -> Mp3dResult {
    let frames_needed = cfg.bytes().div_ceil(PAGE_SIZE) + 4;
    let mut ck = CacheKernel::new(CkConfig {
        mapping_capacity: (frames_needed as usize + 64).next_power_of_two(),
        slice: 200,
        ..CkConfig::default()
    });
    let mut mpm = Mpm::new(MachineConfig {
        cpus: cfg.workers.max(1),
        phys_frames: (frames_needed as usize + 128).max(512),
        l2_bytes: cfg.l2_bytes,
        clock_interval: 10_000_000, // keep ticks out of the measurement
        ..MachineConfig::default()
    });
    let srm = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });

    let base = Vaddr(0x1000_0000);
    let sim = SimulationKernel::new(srm);
    let space = ck.load_space(srm, SpaceDesc::default(), &mut mpm).unwrap();
    // Pre-map the particle region: frame i backs page i of the region.
    let first_frame = 16u32;
    for page in 0..cfg.bytes().div_ceil(PAGE_SIZE) {
        // The pre-map may be shed under overload (`Again`); back off on
        // the simulated clock and retry rather than abort the setup.
        libkern::retry(libkern::Backoff::default(), |wait| {
            mpm.clock.charge(u64::from(wait));
            ck.load_mapping(
                srm,
                space,
                Vaddr(base.0 + page * PAGE_SIZE),
                hw::Paddr((first_frame + page) * PAGE_SIZE),
                hw::Pte::WRITABLE | hw::Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
        })
        .unwrap();
    }

    let mut ex = Executive::new(ck, mpm);
    ex.register_kernel(srm, Box::new(sim));

    // Worker programs: sweep their particles, load-update-store each.
    for order in visit_orders(cfg, base) {
        if order.is_empty() {
            continue;
        }
        let sweeps = cfg.sweeps;
        let compute = cfg.compute_per_particle;
        let prog = FnProgram({
            let mut sweep = 0u32;
            let mut i = 0usize;
            let mut pending_store: Option<Vaddr> = None;
            let mut pending_compute = false;
            move |ctx: &mut ThreadCtx| {
                if let Some(addr) = pending_store.take() {
                    // Update the particle: advance position by velocity
                    // (words 0 and 1 of the record).
                    let mut rec = ctx.data.clone();
                    if rec.len() >= 8 {
                        let pos = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                        let vel = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                        let npos = pos.wrapping_add(vel | 1);
                        rec[0..4].copy_from_slice(&npos.to_le_bytes());
                    }
                    return Step::StoreBytes(addr, rec);
                }
                if i >= order.len() {
                    i = 0;
                    sweep += 1;
                }
                if sweep >= sweeps {
                    return Step::Exit(0);
                }
                if compute > 0 && pending_compute {
                    pending_compute = false;
                    return Step::Compute(compute);
                }
                let addr = order[i];
                i += 1;
                pending_store = Some(addr);
                pending_compute = true;
                Step::LoadBytes(addr, PARTICLE_BYTES)
            }
        });
        ex.spawn_thread(srm, space, Box::new(prog), 20).unwrap();
    }

    let cycles0 = ex.mpm.clock.cycles();
    ex.run_until_idle(5_000_000);
    let cycles = ex.mpm.clock.cycles() - cycles0;

    let l2 = ex.mpm.l2.stats;
    let (mut hits, mut misses) = (0u64, 0u64);
    for c in &ex.mpm.cpus {
        hits += c.tlb.stats.hits;
        misses += c.tlb.stats.misses;
    }
    Mp3dResult {
        cycles,
        l2_hit_rate: l2.hits as f64 / (l2.hits + l2.misses).max(1) as f64,
        tlb_miss_rate: misses as f64 / (hits + misses).max(1) as f64,
        faults: ex.ck.stats.faults_forwarded,
        particles_processed: (cfg.particles() as u64) * cfg.sweeps as u64,
    }
}

/// Convenience: run both modes and report the scattered-over-local
/// slowdown (the §5.2 "up to 25 %" shape).
pub fn locality_comparison(mut cfg: Mp3dConfig) -> (Mp3dResult, Mp3dResult, f64) {
    cfg.locality = true;
    let local = run(&cfg);
    cfg.locality = false;
    let scattered = run(&cfg);
    let slowdown = scattered.cycles as f64 / local.cycles.max(1) as f64;
    (local, scattered, slowdown)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_orders_cover_all_particles_once() {
        let cfg = Mp3dConfig {
            workers: 3,
            ..Mp3dConfig::default()
        };
        let base = Vaddr(0x1000_0000);
        // Dense mode covers the region exactly.
        let dense = Mp3dConfig {
            locality: true,
            ..cfg.clone()
        };
        let orders = visit_orders(&dense, base);
        let mut all: Vec<u32> = orders.iter().flatten().map(|v| v.0).collect();
        all.sort();
        let expect: Vec<u32> = (0..dense.particles())
            .map(|i| base.0 + i * PARTICLE_BYTES)
            .collect();
        assert_eq!(all, expect, "every particle visited exactly once");
        // Sparse mode visits n distinct slots inside the larger region.
        let sparse = Mp3dConfig {
            locality: false,
            ..cfg.clone()
        };
        let orders = visit_orders(&sparse, base);
        let mut all: Vec<u32> = orders.iter().flatten().map(|v| v.0).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len() as u32, sparse.particles(), "no slot collisions");
        assert!(all
            .iter()
            .all(|a| (*a - base.0) / PARTICLE_BYTES < sparse.region_slots()));
    }

    #[test]
    fn locality_order_is_sequential_scattered_is_not() {
        let cfg = Mp3dConfig {
            workers: 1,
            ..Mp3dConfig::default()
        };
        let base = Vaddr(0);
        let seq = visit_orders(
            &Mp3dConfig {
                locality: true,
                ..cfg.clone()
            },
            base,
        );
        assert!(seq[0].windows(2).all(|w| w[1].0 > w[0].0));
        let scat = visit_orders(
            &Mp3dConfig {
                locality: false,
                ..cfg.clone()
            },
            base,
        );
        assert!(!scat[0].windows(2).all(|w| w[1].0 > w[0].0));
    }

    #[test]
    fn run_completes_and_counts() {
        let cfg = Mp3dConfig {
            cells: 8,
            particles_per_cell: 4,
            sweeps: 2,
            workers: 2,
            ..Mp3dConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.particles_processed, 64);
        assert_eq!(r.faults, 0, "pre-mapped region never faults");
        assert!(r.cycles > 0);
    }

    #[test]
    fn scattered_degrades_performance() {
        // The §5.2 effect: with a particle set larger than the L2 and
        // small pages relative to the sweep, scattering particles costs
        // real cycles. We only assert the direction and a nontrivial
        // magnitude; the paper saw up to 25 %.
        let (local, scattered, slowdown) = locality_comparison(Mp3dConfig {
            cells: 128,
            particles_per_cell: 16,
            sweeps: 2,
            workers: 2,
            l2_bytes: 8 * 1024,
            ..Mp3dConfig::default()
        });
        assert!(
            slowdown > 1.02,
            "scattered ({}) should be slower than local ({}), got {slowdown:.3}",
            scattered.cycles,
            local.cycles
        );
        assert!(
            scattered.l2_hit_rate <= local.l2_hit_rate,
            "scattered must not have a better L2 hit rate"
        );
    }
}
