//! Discrete-event simulation library (§3).
//!
//! "We are also working to integrate a discrete-event simulation library
//! we developed previously with these computational framework libraries.
//! This simulation library provides temporal synchronization, virtual
//! space decomposition of processing, load balancing and
//! cache-architecture-sensitive memory management." This module provides
//! the core of such a library: a virtual-time event queue with
//! conservative (barrier) temporal synchronization across space
//! partitions, plus a proportional load balancer over partition costs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual simulation time.
pub type VTime = u64;

/// A scheduled event: fires at `time` in `partition`, carrying an opaque
/// payload the application interprets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual firing time.
    pub time: VTime,
    /// Space partition the event belongs to.
    pub partition: u32,
    /// Application payload.
    pub payload: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.partition, self.payload).cmp(&(other.time, other.partition, other.payload))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A conservative discrete-event engine with per-partition queues and a
/// global lookahead barrier.
pub struct DesEngine {
    queues: Vec<BinaryHeap<Reverse<Event>>>,
    now: VTime,
    /// Conservative lookahead window: partitions may process events up to
    /// `barrier + lookahead` before everyone re-synchronizes.
    pub lookahead: VTime,
    /// Events processed.
    pub processed: u64,
    /// Per-partition processed-event counts (load balancing input).
    pub partition_cost: Vec<u64>,
}

impl DesEngine {
    /// An engine over `partitions` space partitions.
    pub fn new(partitions: usize, lookahead: VTime) -> Self {
        assert!(partitions > 0 && lookahead > 0);
        DesEngine {
            queues: (0..partitions).map(|_| BinaryHeap::new()).collect(),
            now: 0,
            lookahead,
            processed: 0,
            partition_cost: vec![0; partitions],
        }
    }

    /// Current barrier time.
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Schedule an event. Panics if it would fire in the past.
    pub fn schedule(&mut self, ev: Event) {
        assert!(ev.time >= self.now, "event in the past");
        let p = ev.partition as usize % self.queues.len();
        self.queues[p].push(Reverse(ev));
    }

    /// Total pending events.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Advance one synchronization window: process every event with
    /// `time < now + lookahead` in all partitions (calling `handler`,
    /// which may schedule follow-ups inside the window or later), then
    /// move the barrier. Returns the number processed.
    pub fn step_window<F: FnMut(&mut DesEngine, Event)>(&mut self, mut handler: F) -> u64 {
        let horizon = self.now + self.lookahead;
        let mut n = 0;
        loop {
            // Earliest event below the horizon across partitions.
            let mut best: Option<(usize, VTime)> = None;
            for (i, q) in self.queues.iter().enumerate() {
                if let Some(Reverse(ev)) = q.peek() {
                    if ev.time < horizon && best.map(|(_, t)| ev.time < t).unwrap_or(true) {
                        best = Some((i, ev.time));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let Reverse(ev) = self.queues[i].pop().unwrap();
            self.processed += 1;
            let pidx = ev.partition as usize % self.partition_cost.len();
            self.partition_cost[pidx] += 1;
            n += 1;
            handler(self, ev);
        }
        self.now = horizon;
        n
    }

    /// Suggest a partition → worker assignment that balances accumulated
    /// cost over `workers` (greedy longest-processing-time heuristic).
    pub fn balance(&self, workers: usize) -> Vec<usize> {
        assert!(workers > 0);
        let costs = self.partition_cost.clone();
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|i| Reverse(costs[*i]));
        let mut load = vec![0u64; workers];
        let mut assign = vec![0usize; self.partition_cost.len()];
        for p in order {
            let w = (0..workers).min_by_key(|w| load[*w]).unwrap();
            assign[p] = w;
            load[w] += self.partition_cost[p];
        }
        assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e = DesEngine::new(2, 100);
        for t in [30u64, 10, 20] {
            e.schedule(Event {
                time: t,
                partition: (t % 2) as u32,
                payload: t,
            });
        }
        let mut seen = Vec::new();
        e.step_window(|_, ev| seen.push(ev.time));
        assert_eq!(seen, vec![10, 20, 30]);
        assert_eq!(e.now(), 100);
        assert_eq!(e.processed, 3);
    }

    #[test]
    fn window_barrier_defers_future_events() {
        let mut e = DesEngine::new(1, 50);
        e.schedule(Event {
            time: 10,
            partition: 0,
            payload: 0,
        });
        e.schedule(Event {
            time: 60,
            partition: 0,
            payload: 0,
        });
        assert_eq!(e.step_window(|_, _| {}), 1);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.step_window(|_, _| {}), 1);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut e = DesEngine::new(1, 100);
        e.schedule(Event {
            time: 1,
            partition: 0,
            payload: 3,
        });
        // Each event with payload n > 0 schedules a follow-up at +10.
        let n = e.step_window(|e, ev| {
            if ev.payload > 0 {
                e.schedule(Event {
                    time: ev.time + 10,
                    partition: 0,
                    payload: ev.payload - 1,
                });
            }
        });
        assert_eq!(n, 4, "cascade within the window all processed");
    }

    #[test]
    #[should_panic(expected = "event in the past")]
    fn past_events_rejected() {
        let mut e = DesEngine::new(1, 10);
        e.step_window(|_, _| {});
        e.schedule(Event {
            time: 5,
            partition: 0,
            payload: 0,
        });
    }

    #[test]
    fn balance_spreads_cost() {
        let mut e = DesEngine::new(4, 10);
        e.partition_cost = vec![100, 10, 10, 80];
        let assign = e.balance(2);
        let mut load = [0u64; 2];
        for (p, w) in assign.iter().enumerate() {
            load[*w] += e.partition_cost[p];
        }
        assert_eq!(load[0] + load[1], 200);
        assert!(
            load[0].abs_diff(load[1]) <= 20,
            "loads near-balanced: {load:?}"
        );
    }
}
