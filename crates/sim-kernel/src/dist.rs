//! Distributed MP3D: the wind tunnel across multiple MPMs (§3).
//!
//! "This program can use hundreds of megabytes of memory, parallel
//! processing and significant communication bandwidth to move particles
//! when executed across multiple nodes." Each node owns a band of cells
//! and the particles currently inside it; when a particle's position
//! crosses a band boundary, the owning simulation kernel serializes the
//! 32-byte record into a fabric packet and the neighbor installs it —
//! the "copy particles as they moved between processors" pattern that
//! also fixes page locality, here at cluster scale.

use crate::mp3d::PARTICLE_BYTES;
use cache_kernel::{
    AppKernel, CacheKernel, CkConfig, Cluster, Env, Executive, FaultDisposition, FnProgram,
    KernelDesc, MemoryAccessArray, ObjId, SpaceDesc, Step, ThreadCtx, ThreadDesc, TrapDisposition,
};
use hw::{Fault, MachineConfig, Mpm, Packet, Paddr, Pte, Vaddr, PAGE_SIZE};

/// Fabric channel for particle migration.
pub const MP3D_CHANNEL: u32 = 0xffff_0003;

/// Trap numbers of the worker ↔ kernel protocol.
const T_NEXT_SLOT: u32 = 1;
const T_MIGRATE: u32 = 2;
const T_SWEEP_DONE: u32 = 3;
/// Sentinel for "no more occupied slots this sweep".
const END: u32 = u32::MAX;

/// Configuration of a distributed run.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Number of MPMs.
    pub nodes: usize,
    /// Width of each node's spatial band (position units).
    pub band_width: u32,
    /// Particles initially seeded per node.
    pub particles_per_node: u32,
    /// Slots of particle storage per node (must exceed peak occupancy).
    pub slots_per_node: u32,
    /// Sweeps each node performs.
    pub sweeps: u32,
    /// Seed for initial positions/velocities.
    pub seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            nodes: 2,
            band_width: 1 << 16,
            particles_per_node: 64,
            slots_per_node: 256,
            sweeps: 4,
            seed: 7,
        }
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// Final particle count per node.
    pub per_node: Vec<u32>,
    /// Particles sent away per node.
    pub migrations_out: Vec<u64>,
    /// Particles received per node.
    pub migrations_in: Vec<u64>,
    /// Whether every worker finished its sweeps.
    pub completed: bool,
}

impl DistResult {
    /// Total particles across the cluster.
    pub fn total(&self) -> u32 {
        self.per_node.iter().sum()
    }
    /// Total migrations.
    pub fn migrations(&self) -> u64 {
        self.migrations_out.iter().sum()
    }
}

/// Virtual base of the particle region in each node's space.
const REGION_BASE: Vaddr = Vaddr(0x1000_0000);
/// First backing frame of the region.
const REGION_FRAME: u32 = 32;

/// The per-node simulation kernel owning a band of space.
struct Mp3dNode {
    me: ObjId,
    node: usize,
    cfg: DistConfig,
    occupied: Vec<bool>,
    migrations_out: u64,
    migrations_in: u64,
    done: bool,
}

impl Mp3dNode {
    fn band_of(&self, pos: u32) -> usize {
        ((pos / self.cfg.band_width) as usize) % self.cfg.nodes
    }
    fn slot_paddr(&self, slot: u32) -> Paddr {
        Paddr(REGION_FRAME * PAGE_SIZE + slot * PARTICLE_BYTES)
    }
    fn read_particle(&self, mpm: &Mpm, slot: u32) -> Vec<u8> {
        let mut b = vec![0u8; PARTICLE_BYTES as usize];
        mpm.mem.read(self.slot_paddr(slot), &mut b).unwrap();
        b
    }
    fn write_particle(&self, mpm: &mut Mpm, slot: u32, bytes: &[u8]) {
        mpm.mem.write(self.slot_paddr(slot), bytes).unwrap();
    }
    fn free_slot(&self) -> Option<u32> {
        self.occupied.iter().position(|o| !o).map(|i| i as u32)
    }
}

impl AppKernel for Mp3dNode {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn on_start(&mut self, _env: &mut Env, id: ObjId) {
        self.me = id;
    }
    fn on_page_fault(&mut self, _env: &mut Env, _t: ObjId, _f: Fault) -> FaultDisposition {
        FaultDisposition::Kill // region is pre-mapped; faults are bugs
    }
    fn on_trap(&mut self, env: &mut Env, _t: ObjId, no: u32, args: [u32; 4]) -> TrapDisposition {
        match no {
            T_NEXT_SLOT => {
                let from = args[0] as usize;
                let next = self.occupied[from.min(self.occupied.len())..]
                    .iter()
                    .position(|o| *o)
                    .map(|i| (from + i) as u32)
                    .unwrap_or(END);
                TrapDisposition::Return(next)
            }
            T_MIGRATE => {
                let slot = args[0];
                let bytes = self.read_particle(env.mpm, slot);
                let pos = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
                let dst = self.band_of(pos);
                self.occupied[slot as usize] = false;
                if dst == self.node {
                    // Wrapped back into our own band: reinstall locally.
                    if let Some(s) = self.free_slot() {
                        self.write_particle(env.mpm, s, &bytes);
                        self.occupied[s as usize] = true;
                    }
                } else {
                    env.outbox.push(Packet {
                        src: self.node,
                        dst,
                        channel: MP3D_CHANNEL,
                        data: bytes,
                    });
                    self.migrations_out += 1;
                }
                TrapDisposition::Return(0)
            }
            T_SWEEP_DONE => TrapDisposition::Return(0),
            _ => TrapDisposition::Return(0),
        }
    }
    fn on_packet(&mut self, env: &mut Env, _src: usize, channel: u32, data: &[u8]) {
        if channel != MP3D_CHANNEL || data.len() != PARTICLE_BYTES as usize {
            return;
        }
        if let Some(slot) = self.free_slot() {
            self.write_particle(env.mpm, slot, data);
            self.occupied[slot as usize] = true;
            self.migrations_in += 1;
        }
    }
    fn on_thread_exit(&mut self, _env: &mut Env, _t: ObjId, _code: i32) {
        self.done = true;
    }
    fn name(&self) -> &str {
        "mp3d-node"
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn boot_node(cfg: &DistConfig, node: usize) -> Executive {
    let mut ck = CacheKernel::new(CkConfig {
        slice: 100,
        ..CkConfig::default()
    });
    let mut mpm = Mpm::new(MachineConfig {
        node,
        cpus: 1,
        phys_frames: 1024,
        l2_bytes: 64 * 1024,
        clock_interval: 10_000_000,
        ..MachineConfig::default()
    });
    let id = ck.boot(KernelDesc {
        memory_access: MemoryAccessArray::all(),
        ..KernelDesc::default()
    });
    // Pre-map the particle region.
    let space = ck.load_space(id, SpaceDesc::default(), &mut mpm).unwrap();
    let pages = (cfg.slots_per_node * PARTICLE_BYTES).div_ceil(PAGE_SIZE);
    for p in 0..pages {
        libkern::retry(libkern::Backoff::default(), |wait| {
            mpm.clock.charge(u64::from(wait));
            ck.load_mapping(
                id,
                space,
                Vaddr(REGION_BASE.0 + p * PAGE_SIZE),
                Paddr((REGION_FRAME + p) * PAGE_SIZE),
                Pte::WRITABLE | Pte::CACHEABLE,
                None,
                None,
                &mut mpm,
            )
        })
        .unwrap();
    }

    // Seed particles: positions inside this node's band, velocities that
    // sometimes cross bands.
    let mut kernel = Mp3dNode {
        me: id,
        node,
        cfg: cfg.clone(),
        occupied: vec![false; cfg.slots_per_node as usize],
        migrations_out: 0,
        migrations_in: 0,
        done: false,
    };
    let mut s = cfg
        .seed
        .wrapping_add(node as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        | 1;
    for i in 0..cfg.particles_per_node {
        let pos = (node as u32) * cfg.band_width + (xorshift(&mut s) as u32) % cfg.band_width;
        let vel =
            ((xorshift(&mut s) as u32) % (cfg.band_width / 2)) as i32 - (cfg.band_width / 4) as i32;
        let mut rec = vec![0u8; PARTICLE_BYTES as usize];
        rec[0..4].copy_from_slice(&pos.to_le_bytes());
        rec[4..8].copy_from_slice(&(vel as u32).to_le_bytes());
        kernel.write_particle(&mut mpm, i, &rec);
        kernel.occupied[i as usize] = true;
    }

    let mut ex = Executive::new(ck, mpm);
    ex.register_kernel(id, Box::new(kernel));
    ex.register_channel(MP3D_CHANNEL, id);

    // Worker program: per sweep, walk the occupied slots via T_NEXT_SLOT,
    // load-update-store each particle, report boundary crossings via
    // T_MIGRATE.
    let nodes = cfg.nodes as u32;
    let band = cfg.band_width;
    let sweeps = cfg.sweeps;
    let prog = FnProgram({
        let mut sweep = 0u32;
        let mut cursor = 0u32;
        #[derive(Clone, Copy)]
        enum Phase {
            Ask,
            Loaded(u32),
            Stored(u32),
        }
        let mut phase = Phase::Ask;
        move |ctx: &mut ThreadCtx| {
            loop {
                match phase {
                    Phase::Ask => {
                        // Result handled in Loaded transition below via
                        // trap_ret; issue the query.
                        phase = Phase::Loaded(END);
                        return Step::Trap {
                            no: T_NEXT_SLOT,
                            args: [cursor, 0, 0, 0],
                        };
                    }
                    Phase::Loaded(END) => {
                        let slot = ctx.trap_ret;
                        if slot == END {
                            sweep += 1;
                            cursor = 0;
                            if sweep >= sweeps {
                                return Step::Exit(0);
                            }
                            phase = Phase::Ask;
                            continue;
                        }
                        cursor = slot + 1;
                        phase = Phase::Loaded(slot);
                        return Step::LoadBytes(
                            Vaddr(REGION_BASE.0 + slot * PARTICLE_BYTES),
                            PARTICLE_BYTES,
                        );
                    }
                    Phase::Loaded(slot) => {
                        // Advance position by velocity (wrapping over the
                        // whole tunnel).
                        let mut rec = ctx.data.clone();
                        let pos = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                        let vel = u32::from_le_bytes(rec[4..8].try_into().unwrap()) as i32;
                        let total = band * nodes;
                        let npos = (pos as i64 + vel as i64).rem_euclid(total as i64) as u32;
                        rec[0..4].copy_from_slice(&npos.to_le_bytes());
                        phase = Phase::Stored(slot);
                        return Step::StoreBytes(Vaddr(REGION_BASE.0 + slot * PARTICLE_BYTES), rec);
                    }
                    Phase::Stored(slot) => {
                        // Ask the kernel to check the (just stored)
                        // record and migrate it if it left the band; the
                        // kernel re-reads the particle from memory.
                        phase = Phase::Ask;
                        return Step::Trap {
                            no: T_MIGRATE_CHECK,
                            args: [slot, 0, 0, 0],
                        };
                    }
                }
            }
        }
    });
    // Placeholder replaced below: the worker always asks the kernel to
    // check/migrate; the kernel re-reads the record from memory.
    let kid = id;
    let pc = ex.code.register(Box::new(prog));
    ex.ck
        .load_thread(kid, ThreadDesc::new(space, pc, 20), false, &mut ex.mpm)
        .unwrap();
    ex
}

/// Migrate-check trap: the kernel reads the particle and migrates it if
/// it left the band (no-op otherwise).
const T_MIGRATE_CHECK: u32 = T_MIGRATE;

/// Run the distributed wind tunnel; particles migrate between nodes and
/// the total count is conserved.
pub fn run_distributed(cfg: &DistConfig) -> DistResult {
    let nodes: Vec<Executive> = (0..cfg.nodes).map(|n| boot_node(cfg, n)).collect();
    let mut cluster = Cluster::new(nodes);
    for _ in 0..4000 {
        cluster.step(10);
        let all_done = cluster.nodes.iter_mut().all(|ex| ex.code.is_empty());
        if all_done {
            break;
        }
    }
    let mut per_node = Vec::new();
    let mut migrations_out = Vec::new();
    let mut migrations_in = Vec::new();
    let mut completed = true;
    for ex in cluster.nodes.iter_mut() {
        let kid = ex.ck.first_kernel();
        let (count, out, inn, done) = ex
            .with_kernel::<Mp3dNode, _>(kid, |k, _| {
                (
                    k.occupied.iter().filter(|o| **o).count() as u32,
                    k.migrations_out,
                    k.migrations_in,
                    k.done,
                )
            })
            .unwrap();
        per_node.push(count);
        migrations_out.push(out);
        migrations_in.push(inn);
        completed &= done;
    }
    DistResult {
        per_node,
        migrations_out,
        migrations_in,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particles_conserved_across_migration() {
        let cfg = DistConfig {
            nodes: 2,
            particles_per_node: 48,
            sweeps: 3,
            ..DistConfig::default()
        };
        let r = run_distributed(&cfg);
        assert!(r.completed, "all workers finished: {r:?}");
        assert_eq!(r.total(), 96, "no particle lost or duplicated: {r:?}");
        assert!(r.migrations() > 0, "some particles crossed bands: {r:?}");
        // Everything sent was received (no free-slot exhaustion).
        assert_eq!(
            r.migrations_out.iter().sum::<u64>(),
            r.migrations_in.iter().sum::<u64>()
        );
    }

    #[test]
    fn three_node_ring() {
        let cfg = DistConfig {
            nodes: 3,
            particles_per_node: 30,
            sweeps: 2,
            ..DistConfig::default()
        };
        let r = run_distributed(&cfg);
        assert!(r.completed);
        assert_eq!(r.total(), 90);
        assert_eq!(r.per_node.len(), 3);
    }
}
