//! Simulation application kernel (§3).
//!
//! "A large-scale parallel scientific simulation can run directly on top
//! of the Cache Kernel to allow application-specific management of
//! physical memory (to avoid random page faults), direct access to the
//! memory-based messaging, and application-specific processor scheduling."
//!
//! This crate provides:
//! * [`SimulationKernel`] — an application kernel that wires its memory up
//!   front and treats faults as errors (the application manages physical
//!   memory itself);
//! * [`mp3d`] — the particle-in-cell wind-tunnel workload with the page
//!   locality switch measured in §5.2;
//! * [`des`] — the discrete-event simulation library core (temporal
//!   synchronization, space decomposition, load balancing).

pub mod des;
pub mod dist;
pub mod mp3d;

use cache_kernel::{AppKernel, Env, FaultDisposition, ObjId, TrapDisposition, Writeback};
use hw::Fault;

/// A minimal simulation kernel: all memory is mapped explicitly before
/// the computation starts, so a page fault indicates a bug in the setup —
/// the application kernel's prerogative is to treat it as fatal rather
/// than page on demand.
pub struct SimulationKernel {
    /// Our kernel id.
    pub me: ObjId,
    /// Faults observed (should stay zero in a correct run).
    pub unexpected_faults: u64,
    /// Mapping writebacks observed (replacement interference on the
    /// pre-mapped working set; §5.2's "minimal replacement interference"
    /// claim is checked against this).
    pub mapping_writebacks: u64,
}

impl SimulationKernel {
    /// A simulation kernel for the given kernel object.
    pub fn new(me: ObjId) -> Self {
        SimulationKernel {
            me,
            unexpected_faults: 0,
            mapping_writebacks: 0,
        }
    }
}

impl AppKernel for SimulationKernel {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, _env: &mut Env, id: ObjId) {
        self.me = id;
    }

    fn on_page_fault(&mut self, _env: &mut Env, _thread: ObjId, _fault: Fault) -> FaultDisposition {
        self.unexpected_faults += 1;
        FaultDisposition::Kill
    }

    fn on_trap(
        &mut self,
        _env: &mut Env,
        _thread: ObjId,
        no: u32,
        _args: [u32; 4],
    ) -> TrapDisposition {
        TrapDisposition::Return(no)
    }

    fn on_writeback(&mut self, _env: &mut Env, wb: Writeback) {
        if matches!(wb, Writeback::Mapping { .. }) {
            self.mapping_writebacks += 1;
        }
    }

    fn name(&self) -> &str {
        "simulation-kernel"
    }
}
