//! Property tests for the discrete-event simulation core: causal order,
//! conservation of scheduled events, and window-barrier semantics.

use proptest::prelude::*;
use sim_kernel::des::{DesEngine, Event};

proptest! {
    #[test]
    fn events_process_in_nondecreasing_time(
        times in proptest::collection::vec((0u64..1000, 0u32..4), 1..100),
        lookahead in 1u64..500,
    ) {
        let mut e = DesEngine::new(4, lookahead);
        for (t, p) in &times {
            e.schedule(Event { time: *t, partition: *p, payload: 0 });
        }
        let mut seen = Vec::new();
        // Drain all windows.
        while e.pending() > 0 {
            e.step_window(|_, ev| seen.push(ev.time));
        }
        prop_assert_eq!(seen.len(), times.len(), "every event processed once");
        prop_assert!(seen.windows(2).all(|w| w[1] >= w[0]), "causal order: {seen:?}");
    }

    #[test]
    fn window_never_processes_beyond_horizon(
        times in proptest::collection::vec(0u64..1000, 1..60),
        lookahead in 1u64..200,
    ) {
        let mut e = DesEngine::new(2, lookahead);
        for t in &times {
            e.schedule(Event { time: *t, partition: (*t % 2) as u32, payload: 0 });
        }
        loop {
            let horizon = e.now() + lookahead;
            let mut max_seen = None;
            e.step_window(|_, ev| max_seen = Some(max_seen.unwrap_or(0).max(ev.time)));
            if let Some(m) = max_seen {
                prop_assert!(m < horizon, "event at {m} beyond horizon {horizon}");
            }
            if e.pending() == 0 {
                break;
            }
        }
    }

    #[test]
    fn cascades_conserve_event_count(
        seeds in proptest::collection::vec(0u64..50, 1..20),
        depth in 1u64..5,
    ) {
        // Each seed event spawns a chain of `depth` follow-ups; the total
        // processed must be seeds * (depth + 1).
        let mut e = DesEngine::new(2, 10_000);
        for (i, t) in seeds.iter().enumerate() {
            e.schedule(Event { time: *t, partition: (i % 2) as u32, payload: depth });
        }
        let mut processed = 0u64;
        while e.pending() > 0 {
            processed += e.step_window(|e, ev| {
                if ev.payload > 0 {
                    e.schedule(Event {
                        time: ev.time + 1,
                        partition: ev.partition,
                        payload: ev.payload - 1,
                    });
                }
            });
        }
        prop_assert_eq!(processed, seeds.len() as u64 * (depth + 1));
    }

    #[test]
    fn balance_assigns_every_partition(parts in 1usize..12, workers in 1usize..6) {
        let mut e = DesEngine::new(parts, 10);
        for p in 0..parts {
            e.partition_cost[p] = (p as u64 + 1) * 7;
        }
        let assign = e.balance(workers);
        prop_assert_eq!(assign.len(), parts);
        prop_assert!(assign.iter().all(|w| *w < workers));
        // The max-loaded worker carries at most total (trivially) and the
        // assignment never leaves a worker idle while another has 2+
        // partitions more than necessary (LPT sanity: max load <= total).
        let total: u64 = e.partition_cost.iter().sum();
        let mut loads = vec![0u64; workers];
        for (p, w) in assign.iter().enumerate() {
            loads[*w] += e.partition_cost[p];
        }
        prop_assert_eq!(loads.iter().sum::<u64>(), total);
    }
}
