//! Database server application kernel (§1, §3).
//!
//! "A database server can be implemented directly on top of the Cache
//! Kernel to allow careful management of physical memory for caching,
//! optimizing page replacement to minimize the query processing costs."
//! And the §1 motivation: "the standard page-replacement policies of
//! UNIX-like operating systems perform poorly for applications with
//! random or sequential access" — which is exactly what this kernel
//! demonstrates: the same buffer pool under FIFO/LRU (fixed OS-style
//! policies) versus MRU and a scan-resistant policy only the application
//! could know to use.

use cache_kernel::{
    AppKernel, CacheKernel, CkResult, Env, FaultDisposition, ObjId, SpaceDesc, TrapDisposition,
    Writeback,
};
use hw::{Fault, Mpm, Pte, Vaddr, PAGE_SIZE};
use libkern::{
    BackingStore, Fifo, FrameAllocator, Lru, Mru, Region, ReplacementPolicy, Segment,
    SegmentManager,
};
use std::collections::VecDeque;

/// Virtual base of the table heap in the server's space.
pub const TABLE_BASE: Vaddr = Vaddr(0x2000_0000);
/// Segment id of the table.
const TABLE_SEGMENT: u32 = 1;

/// A buffer-pool replacement policy choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// First-in-first-out (a fixed OS-style default).
    Fifo,
    /// Least recently used (the other fixed default).
    Lru,
    /// Most recently used (optimal for cyclic scans).
    Mru,
    /// Scan-resistant two-queue policy (application knowledge: scans go
    /// through a probationary queue and cannot flush the hot set).
    ScanResistant,
}

impl Policy {
    /// Instantiate the policy object.
    pub fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            Policy::Fifo => Box::<Fifo>::default(),
            Policy::Lru => Box::<Lru>::default(),
            Policy::Mru => Box::<Mru>::default(),
            Policy::ScanResistant => Box::<ScanResistant>::default(),
        }
    }
    /// All policies, for sweeps.
    pub fn all() -> [Policy; 4] {
        [
            Policy::Fifo,
            Policy::Lru,
            Policy::Mru,
            Policy::ScanResistant,
        ]
    }
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Lru => "lru",
            Policy::Mru => "mru",
            Policy::ScanResistant => "scan-resistant (app)",
        }
    }
}

/// A 2Q-style scan-resistant policy: pages enter a probationary FIFO;
/// only a second touch promotes them to the protected LRU. Sequential
/// scans never get promoted and therefore cannot evict the hot set.
#[derive(Default)]
pub struct ScanResistant {
    probation: VecDeque<Vaddr>,
    protected: VecDeque<Vaddr>,
}

impl ReplacementPolicy for ScanResistant {
    fn inserted(&mut self, page: Vaddr) {
        self.probation.push_back(page);
    }
    fn touched(&mut self, page: Vaddr) {
        if let Some(i) = self.probation.iter().position(|p| *p == page) {
            self.probation.remove(i);
            self.protected.push_back(page);
        } else if let Some(i) = self.protected.iter().position(|p| *p == page) {
            self.protected.remove(i);
            self.protected.push_back(page);
        }
    }
    fn victim(&mut self) -> Option<Vaddr> {
        // Prefer evicting probationary (scanned-once) pages.
        self.probation
            .front()
            .copied()
            .or_else(|| self.protected.front().copied())
    }
    fn removed(&mut self, page: Vaddr) {
        self.probation.retain(|p| *p != page);
        self.protected.retain(|p| *p != page);
    }
    fn name(&self) -> &'static str {
        "scan-resistant"
    }
}

/// One query operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbOp {
    /// Sequential scan of the whole table.
    Scan,
    /// Point lookup touching one page.
    Lookup(u32),
}

/// Results of running a workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbRunStats {
    /// Page touches.
    pub touches: u64,
    /// Buffer-pool hits (no disk I/O).
    pub hits: u64,
    /// Pages read from disk.
    pub disk_reads: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
}

impl DbRunStats {
    /// Buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.touches.max(1) as f64
    }
}

/// The database server kernel.
pub struct DbKernel {
    /// Our kernel id.
    pub me: ObjId,
    /// Table size in pages.
    pub db_pages: u32,
    sm: SegmentManager,
    frames: FrameAllocator,
    disk: BackingStore,
    /// The server's address space.
    pub space: ObjId,
    /// Aggregate stats over all queries run.
    pub stats: DbRunStats,
}

impl DbKernel {
    /// Create the server: a space with the table region, a buffer pool of
    /// `cache_pages`, frames drawn from `frames`.
    pub fn create(
        ck: &mut CacheKernel,
        mpm: &mut Mpm,
        me: ObjId,
        db_pages: u32,
        cache_pages: usize,
        frames: core::ops::Range<u32>,
        policy: Policy,
    ) -> CkResult<Self> {
        // Server creation may race other kernels into a full space
        // cache: honor `Again` backpressure with a bounded retry
        // instead of failing the whole server.
        let space = libkern::retry(libkern::Backoff::default(), |wait| {
            mpm.clock.charge(u64::from(wait));
            ck.load_space(me, SpaceDesc::default(), mpm)
        })?;
        let mut sm = SegmentManager::new(space, cache_pages, policy.build());
        sm.add_segment(Segment {
            id: TABLE_SEGMENT,
            pages: db_pages,
        });
        sm.map_region(Region {
            base: TABLE_BASE,
            pages: db_pages,
            segment: TABLE_SEGMENT,
            seg_offset: 0,
            flags: Pte::WRITABLE | Pte::CACHEABLE,
        });
        let mut disk = BackingStore::new();
        // Materialize table pages on disk with a recognizable header.
        let seg = Segment {
            id: TABLE_SEGMENT,
            pages: db_pages,
        };
        for p in 0..db_pages {
            disk.seed(seg.key(p), &p.to_le_bytes());
        }
        Ok(DbKernel {
            me,
            db_pages,
            sm,
            frames: FrameAllocator::from_frames(frames),
            disk,
            space,
            stats: DbRunStats::default(),
        })
    }

    /// Address of table page `p`.
    pub fn page_addr(&self, p: u32) -> Vaddr {
        Vaddr(TABLE_BASE.0 + (p % self.db_pages) * PAGE_SIZE)
    }

    /// Touch one table page through the buffer pool, faulting it in from
    /// disk if absent. Returns whether it was a hit.
    pub fn touch(&mut self, ck: &mut CacheKernel, mpm: &mut Mpm, page: u32) -> CkResult<bool> {
        let va = self.page_addr(page);
        self.stats.touches += 1;
        let before = self.disk.reads;
        if self.sm.frame_of(va).is_some() {
            self.sm.policy.touched(va);
            self.stats.hits += 1;
            // A hot buffer access still costs a few cycles.
            mpm.clock.charge(mpm.config.cost.l2_miss);
            return Ok(true);
        }
        self.sm
            .handle_fault(self.me, ck, mpm, &mut self.frames, &mut self.disk, va, 0)?;
        self.stats.disk_reads += self.disk.reads - before;
        Ok(false)
    }

    /// Run a query stream, returning the stats delta.
    pub fn run(
        &mut self,
        ck: &mut CacheKernel,
        mpm: &mut Mpm,
        ops: &[DbOp],
    ) -> CkResult<DbRunStats> {
        let before = self.stats;
        let c0 = mpm.clock.cycles();
        for op in ops {
            match op {
                DbOp::Scan => {
                    for p in 0..self.db_pages {
                        self.touch(ck, mpm, p)?;
                    }
                }
                DbOp::Lookup(p) => {
                    self.touch(ck, mpm, *p)?;
                }
            }
        }
        Ok(DbRunStats {
            touches: self.stats.touches - before.touches,
            hits: self.stats.hits - before.hits,
            disk_reads: self.stats.disk_reads - before.disk_reads,
            cycles: mpm.clock.cycles() - c0,
        })
    }

    /// Resident buffer pages.
    pub fn resident(&self) -> usize {
        self.sm.resident()
    }
}

/// Stand-alone app-kernel wrapper so the server can live in an executive
/// (queries are driven through `Executive::with_kernel`).
pub struct DbServer {
    /// The server state (populated by `on_start` via `init`).
    pub db: Option<DbKernel>,
    /// Construction parameters.
    pub db_pages: u32,
    /// Buffer pool size.
    pub cache_pages: usize,
    /// Frame grant.
    pub frames: core::ops::Range<u32>,
    /// Replacement policy.
    pub policy: Policy,
}

impl AppKernel for DbServer {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn on_start(&mut self, env: &mut Env, id: ObjId) {
        self.db = DbKernel::create(
            env.ck,
            env.mpm,
            id,
            self.db_pages,
            self.cache_pages,
            self.frames.clone(),
            self.policy,
        )
        .ok();
    }
    fn on_page_fault(&mut self, _env: &mut Env, _t: ObjId, _f: Fault) -> FaultDisposition {
        FaultDisposition::Kill
    }
    fn on_trap(&mut self, _env: &mut Env, _t: ObjId, no: u32, _a: [u32; 4]) -> TrapDisposition {
        TrapDisposition::Return(no)
    }
    fn on_writeback(&mut self, _env: &mut Env, wb: Writeback) {
        if let (Some(db), Writeback::Mapping { vaddr, flags, .. }) = (self.db.as_mut(), &wb) {
            db.sm.on_mapping_writeback(*vaddr, *flags);
        }
    }
    fn name(&self) -> &str {
        "db-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_kernel::{CkConfig, KernelDesc, MemoryAccessArray};
    use hw::MachineConfig;

    fn setup(db_pages: u32, cache_pages: usize, policy: Policy) -> (CacheKernel, Mpm, DbKernel) {
        let mut ck = CacheKernel::new(CkConfig::default());
        let mut mpm = Mpm::new(MachineConfig {
            phys_frames: 2048,
            l2_bytes: 64 * 1024,
            ..MachineConfig::default()
        });
        let me = ck.boot(KernelDesc {
            memory_access: MemoryAccessArray::all(),
            ..KernelDesc::default()
        });
        let db = DbKernel::create(
            &mut ck,
            &mut mpm,
            me,
            db_pages,
            cache_pages,
            64..512,
            policy,
        )
        .unwrap();
        (ck, mpm, db)
    }

    #[test]
    fn repeated_lookups_hit_the_pool() {
        let (mut ck, mut mpm, mut db) = setup(16, 8, Policy::Lru);
        assert!(!db.touch(&mut ck, &mut mpm, 3).unwrap());
        assert!(db.touch(&mut ck, &mut mpm, 3).unwrap());
        assert_eq!(db.stats.disk_reads, 1);
        assert_eq!(db.resident(), 1);
    }

    #[test]
    fn pool_limit_enforced() {
        let (mut ck, mut mpm, mut db) = setup(32, 4, Policy::Lru);
        let r = db.run(&mut ck, &mut mpm, &[DbOp::Scan]).unwrap();
        assert_eq!(r.touches, 32);
        assert_eq!(r.disk_reads, 32);
        assert_eq!(db.resident(), 4);
    }

    #[test]
    fn mru_beats_lru_on_cyclic_scan() {
        // The canonical sequential-access pathology: repeated full scans
        // with a pool smaller than the table.
        let ops = [DbOp::Scan, DbOp::Scan, DbOp::Scan, DbOp::Scan];
        let run_with = |p: Policy| {
            let (mut ck, mut mpm, mut db) = setup(16, 8, p);
            db.run(&mut ck, &mut mpm, &ops).unwrap()
        };
        let lru = run_with(Policy::Lru);
        let mru = run_with(Policy::Mru);
        assert!(
            mru.disk_reads < lru.disk_reads,
            "MRU ({}) must beat LRU ({}) on cyclic scans",
            mru.disk_reads,
            lru.disk_reads
        );
        assert!(mru.cycles < lru.cycles, "fewer disk reads, fewer cycles");
    }

    #[test]
    fn scan_resistant_protects_hot_set_from_scans() {
        // Mixed workload: a hot set of 4 pages repeatedly probed, with
        // occasional full scans of a 64-page table through a 8-page pool.
        let mut ops = Vec::new();
        for round in 0..6 {
            for _ in 0..20 {
                for h in 0..4 {
                    ops.push(DbOp::Lookup(h));
                }
            }
            if round % 2 == 1 {
                ops.push(DbOp::Scan);
            }
        }
        let run_with = |p: Policy| {
            let (mut ck, mut mpm, mut db) = setup(64, 8, p);
            db.run(&mut ck, &mut mpm, &ops).unwrap()
        };
        let lru = run_with(Policy::Lru);
        let sr = run_with(Policy::ScanResistant);
        assert!(
            sr.disk_reads < lru.disk_reads,
            "scan-resistant ({}) must beat LRU ({}) when scans pollute",
            sr.disk_reads,
            lru.disk_reads
        );
        assert!(sr.hit_rate() > lru.hit_rate());
    }

    #[test]
    fn table_pages_round_trip_from_disk() {
        let (mut ck, mut mpm, mut db) = setup(8, 4, Policy::Lru);
        db.touch(&mut ck, &mut mpm, 5).unwrap();
        let frame = db.sm.frame_of(db.page_addr(5)).unwrap();
        assert_eq!(
            mpm.mem.read_u32(frame.base()).unwrap(),
            5,
            "page header intact"
        );
        let _ = ck;
    }
}
