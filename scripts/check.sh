#!/usr/bin/env bash
# Pre-merge gate: formatting, lints and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo bench --no-run (benches must compile) =="
cargo bench --workspace --no-run

echo "== shootdown batched/eager equivalence =="
cargo test -q -p cache-kernel --test prop_shootdown

echo "== chaos pinned seeds (deterministic crash containment) =="
cargo test -q -p vpp --test prop_chaos pinned_seed

echo "== overload pinned seeds (reservations, backpressure, thrash) =="
cargo test -q -p vpp --test prop_overload pinned_seed
cargo test -q -p vpp --test prop_chaos pinned_seed_overload

echo "== crash recovery example builds =="
cargo build -q -p vpp --example crash_recovery

echo "== partition pinned seeds (membership, fencing, replay) =="
cargo test -q -p vpp --test prop_partition pinned_partition
cargo test -q -p vpp --test prop_partition fault_free_run_is_inert

echo "== partition report smoke =="
cargo run -q --release -p bench --bin report -- partition > /dev/null

echo "== partition example end-to-end (cut, heal, node-down, quiesced directories) =="
cargo run -q --release -p vpp --example partition > /dev/null

echo "== threaded/lockstep pinned seeds (sharded executives) =="
cargo test -q -p vpp --test prop_threaded pinned_threaded_seed
cargo test -q -p vpp --test prop_threaded pinned_lockstep_replay

echo "== throughput report smoke =="
cargo run -q --release -p bench --bin report -- throughput > /dev/null

echo "== signal batched/eager equivalence pinned seeds =="
cargo test -q -p vpp --test prop_signal_batch pinned_signal_batch

echo "== fan-out ring drain (lockstep + threaded + panic) =="
cargo test -q -p workloads fanout::
cargo test -q -p cache-kernel shard::tests::panicked_shard_drains_fanout_ring

echo "== adversarial pinned seeds (capability containment) =="
cargo test -q -p vpp --test prop_chaos pinned_seed_adversarial
cargo test -q -p vpp --test prop_chaos adversarial_caps_off_is_inert
cargo test -q -p vpp --test integration_recovery restart_under_reduced_grant

echo "== caps report smoke =="
cargo run -q --release -p bench --bin report -- caps --json > /dev/null

echo "== messaging report smoke =="
cargo run -q --release -p bench --bin report -- msg > /dev/null

echo "== serving-under-chaos pinned gates (cut smoke, replay, inertness, budget drain) =="
cargo test -q -p vpp --test integration_serve serve_smoke_cut_midrun
cargo test -q -p vpp --test integration_serve serve_replay_is_byte_identical
cargo test -q -p vpp --test integration_serve serve_knobs_off_is_inert
cargo test -q -p vpp --test prop_overload pinned_budget_drain_replays

echo "== serve sweep report smoke =="
cargo run -q --release -p bench --bin report -- serve > /dev/null

echo "== gray-failure pinned gates (no false epochs, dead detection, inertness, hedge ledger, replay) =="
cargo test -q -p vpp --test prop_gray pure_delay_schedule_never_mints_an_epoch
cargo test -q -p vpp --test prop_gray dead_node_is_still_detected_within_the_legacy_budget
cargo test -q -p vpp --test prop_gray all_knobs_off_leaves_gray_counters_inert
cargo test -q -p vpp --test prop_gray hedges_fire_win_and_balance_the_budget_ledger
cargo test -q -p vpp --test prop_gray delayed_hedged_run_replays_byte_identically

echo "== gray composition gates (delay × partition, delay × chaos) =="
cargo test -q -p vpp --test prop_partition pinned_partition_composes_with_delay_schedule
cargo test -q -p vpp --test prop_chaos adversarial_chaos_composes_with_delay_schedules

echo "== gray sweep report smoke (asserts the p99 cut and per-node ledgers) =="
cargo run -q --release -p bench --bin report -- gray > /dev/null

echo "== messaging bench smoke (criterion baselines) =="
cargo bench -q -p bench --bench signal_latency -- --save-baseline msg-gate > /dev/null
cargo bench -q -p bench --bench ipc_channel -- --save-baseline msg-gate > /dev/null

if [[ "${TSAN:-0}" == "1" ]]; then
  # Opt-in ThreadSanitizer pass over the cross-thread paths (the SPSC
  # rings and the free-running shard workers). Needs a nightly
  # toolchain with the rust-src component:
  #   rustup toolchain install nightly --component rust-src
  #   TSAN=1 scripts/check.sh
  echo "== ThreadSanitizer (nightly) =="
  host="$(rustc -vV | sed -n 's/^host: //p')"
  tsan() {
    RUSTFLAGS="-Z sanitizer=thread" \
      cargo +nightly test -Z build-std --target "$host" -q "$@"
  }
  tsan -p hw ring::
  tsan -p workloads throughput::
  tsan -p vpp --test prop_threaded pinned_threaded_seed
fi

echo "All checks passed."
