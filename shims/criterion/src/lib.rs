//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the criterion API its benches use. Measurement is plain
//! `std::time::Instant` sampling: per sample the timed closure runs enough
//! iterations to amortize clock overhead, and the reported figure is the
//! median ns/iteration across samples. No plots, no statistics beyond
//! median/min/max — the benches exist to compare kernel-path costs
//! relative to each other and across commits.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; recorded so rates appear in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    iters_hint: u64,
    /// Per-iteration cost of each completed sample, in nanoseconds.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, running it in a batch sized to amortize timer cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_hint.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.record(start.elapsed(), iters);
    }

    /// Time with a caller-controlled loop: `routine` receives the
    /// iteration count and returns the elapsed time for exactly that many.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = self.iters_hint.max(1);
        let elapsed = routine(iters);
        self.record(elapsed, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.samples_ns
            .push(elapsed.as_nanos() as f64 / iters as f64);
    }
}

/// One measured benchmark: runs the body repeatedly and prints a summary.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut body: F,
) {
    // Calibrate: one probe iteration decides the batch size so each
    // sample takes roughly a millisecond.
    let mut probe = Bencher {
        iters_hint: 1,
        samples_ns: Vec::new(),
    };
    body(&mut probe);
    let per_iter_ns = probe.samples_ns.last().copied().unwrap_or(1.0).max(1.0);
    let iters_hint = ((1_000_000.0 / per_iter_ns) as u64).clamp(1, 100_000);

    let mut b = Bencher {
        iters_hint,
        samples_ns: Vec::new(),
    };
    for _ in 0..samples.max(2) {
        body(&mut b);
    }
    b.samples_ns.sort_by(|x, y| x.total_cmp(y));
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let min = b.samples_ns.first().copied().unwrap_or(0.0);
    let max = b.samples_ns.last().copied().unwrap_or(0.0);
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>8.1} MiB/s", n as f64 * 1000.0 / median / 1.048_576)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>8.1} Melem/s", n as f64 * 1000.0 / median)
        }
        None => String::new(),
    };
    println!("{name:<44} median {median:>12.1} ns/iter  [{min:.1} .. {max:.1}]{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate following benchmarks with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; sampling time is derived automatically.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        body: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&self.name, &id.id, self.sample_size, self.throughput, body);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&self.name, &id.id, self.sample_size, self.throughput, |b| {
            body(b, input)
        });
        self
    }

    /// End the group. (Reports are printed as benchmarks complete.)
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        body: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark("", &id.id, 20, None, body);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("spin", |b| b.iter(|| count = count.wrapping_add(1)));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 5))
        });
        g.finish();
        assert!(count > 0);
    }
}
