//! Deterministic case generation and failure reporting.

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; this runner never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case, carrying its assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator (SplitMix64) seeded from the test's full path,
/// so every test draws an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (module path + test name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the identifier gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_test("a::t1");
        let mut b = TestRng::for_test("a::t1");
        let mut c = TestRng::for_test("a::t2");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
