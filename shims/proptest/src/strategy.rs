//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of an associated type.
///
/// Strategies are `Clone` so they can be reused across `prop_oneof!` arms
/// and cases; all combinators here are cheap to clone.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, map }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed generator arms; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<Rc<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    /// Wrap the given arms.
    pub fn new(arms: Vec<Rc<dyn Fn(&mut TestRng) -> V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        (self.arms[pick])(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w;
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = crate::prop_oneof![(0u32..4).prop_map(|x| x * 2), Just(100u32),];
        for _ in 0..200 {
            let v: u32 = s.clone().generate(&mut rng);
            assert!(v == 100u32 || (v % 2u32 == 0 && v < 8u32), "v={v}");
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::for_test("tuples");
        let (a, b, c) = (0u8..4, any::<bool>(), 10usize..12).generate(&mut rng);
        assert!(a < 4);
        let _ = b;
        assert!((10..12).contains(&c));
    }
}
