//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the proptest API its property tests use: the [`Strategy`]
//! trait with `prop_map`, range/tuple/`any` strategies, `prop_oneof!`,
//! `collection::vec`, `option::of`, `Just`, and the `proptest!` /
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed, so failures reproduce exactly; there is no shrinking —
//! a failing case reports its inputs via the assertion message instead.

// A shim mirrors the upstream API shape; don't let style lints force
// signatures to drift from it.
#![allow(clippy::type_complexity, clippy::manual_is_multiple_of)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` roughly a quarter of the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Some` values from `inner`, interleaved with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let s = $strategy;
                ::std::rc::Rc::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::rc::Rc<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Define property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` that runs `body` against `config.cases` generated
/// inputs from a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs [$config] $($rest)*);
    };
    (@funcs [$config:expr]) => {};
    (@funcs [$config:expr]
        #[test]
        fn $name:ident($($bind:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $bind = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "property failed on case {}/{}: {}",
                        case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::proptest!(@funcs [$config] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs [$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}
