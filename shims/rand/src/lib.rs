//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` and `Rng::gen_bool`. The generator is SplitMix64 —
//! deterministic, fast, and statistically sound for workload generation
//! (it is the seeding generator the real crate uses internally).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to yield a `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: u32 = r.gen_range(0..10u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
        for _ in 0..1_000 {
            let v = r.gen_range(5..=6u64);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}/10000");
    }
}
