//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `parking_lot` API it actually uses, implemented
//! over `std::sync`. Semantics match `parking_lot` where they differ from
//! `std`: locks do not poison — a panic while holding a guard leaves the
//! lock usable by other threads.

use std::sync;

/// A reader-writer lock with the `parking_lot` (non-poisoning) interface.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex with the `parking_lot` (non-poisoning) interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
